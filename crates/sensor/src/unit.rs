//! The smart temperature-sensor unit (paper Section 3).
//!
//! A [`SmartSensorUnit`] bundles the sensing ring-oscillator model, the
//! measurement FSM (enable/disable + busy flag), the counting digitizer,
//! and a code-domain two-point calibration into the component a SoC
//! integrator would instantiate: request a measurement, wait for
//! `busy` to drop, read the temperature word.
//!
//! ```
//! use sensor::unit::{SensorConfig, SmartSensorUnit};
//! use tsense_core::gate::{Gate, GateKind};
//! use tsense_core::ring::RingOscillator;
//! use tsense_core::tech::Technology;
//! use tsense_core::units::Celsius;
//!
//! let tech = Technology::um350();
//! let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 5)?;
//! let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech))?;
//! unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))?;
//! let m = unit.measure(Celsius::new(85.0))?;
//! assert!((m.temperature.get() - 85.0).abs() < 2.0);
//! # Ok::<(), sensor::SensorError>(())
//! ```

use tsense_core::ring::RingOscillator;
use tsense_core::sensitivity::DigitizerSpec;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Seconds, Watts};

use crate::digitizer::BehavioralDigitizer;
use crate::error::{Result, SensorError};
use crate::fsm::MeasureFsm;

/// Static configuration of a smart unit.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// The sensing element.
    pub ring: RingOscillator,
    /// The process it is fabricated in.
    pub tech: Technology,
    /// On-chip reference clock for the digitizer.
    pub ref_clock: Hertz,
    /// Measurement window length in ring cycles.
    pub window_cycles: u32,
    /// Settling time before the window opens, in ring cycles.
    pub settle_cycles: u32,
    /// Double-capture retry budget for metastable digitizer reads: a
    /// code is accepted only when two back-to-back captures agree, and
    /// up to this many disagreeing pairs are retried before the unit
    /// reports [`SensorError::CaptureUnstable`].
    pub capture_retries: u32,
    /// Hardware width of the reference counter, bits. The counter wraps
    /// silently past `2^counter_bits − 1`, exactly as a fixed-width
    /// ripple counter does on silicon — the `netcheck` rule `NC0901`
    /// proves statically that the reachable count interval fits.
    pub counter_bits: u32,
    /// Width of the digital temperature word latched out of the unit,
    /// bits. Codes beyond `2^word_bits − 1` truncate (`NC0904`).
    pub word_bits: u32,
}

impl SensorConfig {
    /// Defaults matched to a 0.35 µm SoC: 100 MHz reference, 2¹⁶-cycle
    /// window (≈ 20 µs conversion, ≈ 0.13 °C/LSB), 64-cycle settle.
    pub fn new(ring: RingOscillator, tech: Technology) -> Self {
        SensorConfig {
            ring,
            tech,
            ref_clock: Hertz::from_mega(100.0),
            window_cycles: 1 << 16,
            settle_cycles: 64,
            capture_retries: 3,
            counter_bits: 16,
            word_bits: 16,
        }
    }

    /// Overrides the reference clock.
    #[must_use]
    pub fn with_ref_clock(mut self, f: Hertz) -> Self {
        self.ref_clock = f;
        self
    }

    /// Overrides the window length (ring cycles).
    #[must_use]
    pub fn with_window(mut self, cycles: u32) -> Self {
        self.window_cycles = cycles;
        self
    }

    /// Overrides the double-capture retry budget.
    #[must_use]
    pub fn with_capture_retries(mut self, retries: u32) -> Self {
        self.capture_retries = retries;
        self
    }

    /// Overrides the hardware reference-counter width.
    #[must_use]
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// Overrides the output temperature-word width.
    #[must_use]
    pub fn with_word_bits(mut self, bits: u32) -> Self {
        self.word_bits = bits;
        self
    }

    /// The digitizer specification implied by this configuration — the
    /// quantizer parameters a static analyzer needs to reason about
    /// counts, resolution, and conversion time.
    ///
    /// # Errors
    ///
    /// Propagates [`DigitizerSpec`] validation (non-positive reference
    /// clock, empty window).
    pub fn digitizer_spec(&self) -> Result<DigitizerSpec> {
        DigitizerSpec::new(self.ref_clock, self.window_cycles).map_err(SensorError::Model)
    }

    /// Masks a raw count to the hardware counter width — the silent
    /// wrap a fixed-width counter performs past its capacity.
    #[inline]
    pub fn wrap_to_counter(&self, code: u64) -> u64 {
        if self.counter_bits >= 64 {
            code
        } else {
            code & ((1u64 << self.counter_bits) - 1)
        }
    }
}

/// A defect injected into a unit's sensing path — the fault-simulation
/// hooks that the `faultsim` campaign engine drives. At most one fault
/// is active per unit at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RingFault {
    /// The ring never oscillates (stuck node, broken feedback): the
    /// conversion window never closes.
    Dead,
    /// The period is pinned to an absolute value, insensitive to
    /// temperature (e.g. a latched even-parity loop capturing a clock
    /// coupling).
    StuckPeriod {
        /// The pinned period, seconds.
        period_s: f64,
    },
    /// A delay fault scales the whole ring period by this factor
    /// (> 1: resistive open slowing a stage; < 1: bridging speedup).
    DelayScale {
        /// Multiplier on the healthy period.
        factor: f64,
    },
    /// One bit of the digitizer count is stuck-flipped.
    CounterBitFlip {
        /// The flipped bit position.
        bit: u8,
    },
    /// The next `captures` digitizer captures are metastable and read
    /// back corrupted (each corruption differs, so double-capture
    /// compare catches them).
    Metastable {
        /// How many captures are corrupted before the flip-flop output
        /// settles again.
        captures: u32,
    },
    /// The local supply rail sags by `delta_v` volts, shifting the ring
    /// period through the supply cross-sensitivity.
    SupplyDroop {
        /// Supply droop magnitude, volts (positive = sagging rail).
        delta_v: f64,
    },
}

/// Linear code-to-temperature calibration (`T = offset + gain·code`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCalibration {
    /// °C per LSB.
    pub gain: f64,
    /// Temperature at code zero (extrapolated), °C.
    pub offset: f64,
}

impl CodeCalibration {
    /// Fits from two `(code, temperature)` anchors.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when the codes coincide
    /// (no sensitivity between the anchors).
    pub fn fit(code1: u64, t1: Celsius, code2: u64, t2: Celsius) -> Result<Self> {
        if code1 == code2 {
            return Err(SensorError::InvalidConfig {
                reason: format!("calibration anchors share the code {code1}"),
            });
        }
        let gain = (t2.get() - t1.get()) / (code2 as f64 - code1 as f64);
        Ok(CodeCalibration {
            gain,
            offset: t1.get() - gain * code1 as f64,
        })
    }

    /// Temperature represented by a code.
    pub fn decode(&self, code: u64) -> Celsius {
        Celsius::new(self.offset + self.gain * code as f64)
    }
}

/// One completed measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Raw digitizer code.
    pub code: u64,
    /// Calibrated temperature.
    pub temperature: Celsius,
    /// Total conversion time (settle + window) at this temperature.
    pub conversion_time: Seconds,
    /// The underlying ring period.
    pub ring_period: Seconds,
    /// Ring power while it was enabled.
    pub ring_power: Watts,
}

/// The smart sensor unit: ring + FSM + digitizer + calibration.
#[derive(Debug, Clone)]
pub struct SmartSensorUnit {
    config: SensorConfig,
    digitizer: BehavioralDigitizer,
    calibration: Option<CodeCalibration>,
    measurements: u64,
    total_osc_on: Seconds,
    fault: Option<RingFault>,
    /// Remaining corrupted captures of an active
    /// [`RingFault::Metastable`].
    metastable_left: u32,
}

impl SmartSensorUnit {
    /// Builds a unit and validates its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a zero window and
    /// propagates digitizer-spec validation.
    pub fn new(config: SensorConfig) -> Result<Self> {
        let spec = DigitizerSpec::new(config.ref_clock, config.window_cycles)
            .map_err(SensorError::Model)?;
        config.tech.validate().map_err(SensorError::Model)?;
        Ok(SmartSensorUnit {
            digitizer: BehavioralDigitizer::new(spec),
            config,
            calibration: None,
            measurements: 0,
            total_osc_on: Seconds::new(0.0),
            fault: None,
            metastable_left: 0,
        })
    }

    /// Builds a unit after an opt-in preflight check.
    ///
    /// `preflight` inspects the configuration before construction;
    /// returning `Err` aborts it. The error type only has to absorb
    /// [`SensorError`] (via `From`), so lint frontends (e.g. the
    /// `netcheck` crate) can thread structured rejections through
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Whatever `preflight` reports, or any [`SmartSensorUnit::new`]
    /// failure converted into `E`.
    pub fn new_checked<E: From<SensorError>>(
        config: SensorConfig,
        preflight: impl FnOnce(&SensorConfig) -> std::result::Result<(), E>,
    ) -> std::result::Result<Self, E> {
        preflight(&config)?;
        SmartSensorUnit::new(config).map_err(E::from)
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// The active calibration, if any.
    #[inline]
    pub fn calibration(&self) -> Option<CodeCalibration> {
        self.calibration
    }

    /// Injects a defect into the sensing path (replacing any active
    /// one). Injection does not disturb the stored calibration — the
    /// fault strikes a previously healthy, calibrated unit, which is the
    /// field-failure scenario the campaign engine exercises.
    pub fn inject_fault(&mut self, fault: RingFault) {
        self.metastable_left = match fault {
            RingFault::Metastable { captures } => captures,
            _ => 0,
        };
        self.fault = Some(fault);
    }

    /// Removes the active fault, if any.
    pub fn clear_fault(&mut self) {
        self.fault = None;
        self.metastable_left = 0;
    }

    /// The active injected fault, if any.
    #[inline]
    pub fn active_fault(&self) -> Option<RingFault> {
        self.fault
    }

    /// The ring period as the (possibly faulted) silicon actually
    /// produces it. `Err(ConversionTimeout)` models a dead ring: no
    /// edges, the window never closes.
    fn effective_period(&self, junction: Celsius) -> Result<Seconds> {
        match self.fault {
            Some(RingFault::Dead) => Err(SensorError::ConversionTimeout),
            Some(RingFault::StuckPeriod { period_s }) => Ok(Seconds::new(period_s)),
            Some(RingFault::DelayScale { factor }) => {
                let p = self.config.ring.period(&self.config.tech, junction)?;
                Ok(Seconds::new(p.get() * factor))
            }
            Some(RingFault::SupplyDroop { delta_v }) => {
                // Evaluate the ring on the sagged rail; a droop below
                // the device thresholds surfaces as a model error.
                let mut sagged = self.config.tech.clone();
                sagged.vdd = tsense_core::units::Volts::new(sagged.vdd.get() - delta_v);
                Ok(self.config.ring.period(&sagged, junction)?)
            }
            Some(RingFault::CounterBitFlip { .. }) | Some(RingFault::Metastable { .. }) | None => {
                Ok(self.config.ring.period(&self.config.tech, junction)?)
            }
        }
    }

    /// One digitizer capture, through the fault model. The final mask
    /// models the fixed-width hardware counter: counts past
    /// `2^counter_bits − 1` wrap silently (`NC0901` proves statically
    /// that the reachable count interval never gets there).
    fn capture_once(&mut self, period: Seconds) -> u64 {
        let mut code = self.digitizer.convert(period);
        if let Some(RingFault::CounterBitFlip { bit }) = self.fault {
            code ^= 1u64 << u32::from(bit);
        }
        if self.metastable_left > 0 {
            // Each metastable capture resolves to a different wrong
            // value (bit position keyed to the remaining count), so two
            // back-to-back corrupted captures can never agree.
            code ^= 1u64 << (self.metastable_left % 16);
            self.metastable_left -= 1;
        }
        self.config.wrap_to_counter(code)
    }

    /// Captures a code with double-capture compare and bounded retry:
    /// the degradation primitive against metastable captures.
    fn capture_code(&mut self, period: Seconds) -> Result<u64> {
        let mut attempts = 0u32;
        loop {
            let a = self.capture_once(period);
            let b = self.capture_once(period);
            attempts += 1;
            if a == b {
                return Ok(a);
            }
            if attempts > self.config.capture_retries {
                return Err(SensorError::CaptureUnstable { attempts });
            }
        }
    }

    /// Raw digitizer code at a junction temperature (no calibration
    /// needed — this is what the tester reads during calibration).
    ///
    /// # Errors
    ///
    /// Propagates ring-model failures; a faulted unit reports its
    /// defect ([`SensorError::ConversionTimeout`] for a dead ring).
    pub fn raw_code(&self, junction: Celsius) -> Result<u64> {
        let period = self.effective_period(junction)?;
        let mut code = self.digitizer.convert(period);
        if let Some(RingFault::CounterBitFlip { bit }) = self.fault {
            code ^= 1u64 << u32::from(bit);
        }
        Ok(self.config.wrap_to_counter(code))
    }

    /// Two-point calibration: simulate tester measurements at two known
    /// temperatures and fit the code-domain line.
    ///
    /// # Errors
    ///
    /// Propagates ring-model failures and anchor degeneracy.
    pub fn calibrate_two_point(&mut self, t1: Celsius, t2: Celsius) -> Result<()> {
        let c1 = self.raw_code(t1)?;
        let c2 = self.raw_code(t2)?;
        self.calibration = Some(CodeCalibration::fit(c1, t1, c2, t2)?);
        Ok(())
    }

    /// Installs an externally computed calibration (e.g. shared across
    /// a wafer from a golden die).
    pub fn set_calibration(&mut self, cal: CodeCalibration) {
        self.calibration = Some(cal);
    }

    /// Runs one complete measurement at the given junction temperature:
    /// the FSM walks Idle → Settle → Measure → Done, the oscillator is
    /// enabled only for the conversion, and the calibrated temperature
    /// is returned.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::NotReady`] when no calibration is
    /// installed; [`SensorError::ConversionTimeout`] when the (faulted)
    /// ring shows no activity; [`SensorError::CaptureUnstable`] when
    /// metastable captures outlast the retry budget; or propagates
    /// model failures.
    pub fn measure(&mut self, junction: Celsius) -> Result<Measurement> {
        let cal = self.calibration.ok_or(SensorError::NotReady)?;
        let period = self.effective_period(junction)?;
        let period_fs = (period.get() * 1e15).round().max(1.0) as u64;
        let settle_fs = self.config.settle_cycles as u64 * period_fs;
        let window_fs = self.config.window_cycles as u64 * period_fs;

        let mut fsm = MeasureFsm::new(settle_fs, window_fs);
        fsm.start();
        debug_assert!(fsm.outputs().busy);
        fsm.tick(settle_fs + window_fs);
        debug_assert!(fsm.outputs().data_valid && !fsm.outputs().osc_enable);

        let code = self.capture_code(period)?;
        let conversion_time = Seconds::new((settle_fs + window_fs) as f64 * 1e-15);
        self.measurements += 1;
        self.total_osc_on = self.total_osc_on + conversion_time;
        Ok(Measurement {
            code,
            temperature: cal.decode(code),
            conversion_time,
            ring_period: period,
            ring_power: self
                .config
                .ring
                .dynamic_power(&self.config.tech, junction)?,
        })
    }

    /// Completed measurements since construction.
    #[inline]
    pub fn measurement_count(&self) -> u64 {
        self.measurements
    }

    /// Cumulative oscillator-on time — what the disable feature
    /// minimizes.
    #[inline]
    pub fn total_osc_on_time(&self) -> Seconds {
        self.total_osc_on
    }

    /// Temperature resolution per LSB around the given operating point.
    ///
    /// # Errors
    ///
    /// Propagates sensitivity-evaluation failures.
    pub fn resolution_at(&self, junction: Celsius) -> Result<f64> {
        let sens = tsense_core::sensitivity::Sensitivity::at(
            &self.config.ring,
            &self.config.tech,
            junction,
            0.1,
        )
        .map_err(SensorError::Model)?;
        Ok(self.digitizer.spec().resolution_celsius(&sens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsense_core::gate::{Gate, GateKind};
    use tsense_core::units::TempRange;

    fn unit() -> SmartSensorUnit {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        SmartSensorUnit::new(SensorConfig::new(ring, tech)).unwrap()
    }

    #[test]
    fn uncalibrated_unit_refuses_to_measure() {
        let mut u = unit();
        assert!(matches!(
            u.measure(Celsius::new(25.0)),
            Err(SensorError::NotReady)
        ));
    }

    #[test]
    fn calibrated_unit_accurate_over_the_paper_range() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        let mut worst = 0.0_f64;
        for t in TempRange::paper().samples(21) {
            let m = u.measure(t).unwrap();
            worst = worst.max((m.temperature.get() - t.get()).abs());
        }
        // Residual = transfer non-linearity + quantization; both small.
        assert!(worst < 2.0, "worst error {worst} °C");
        assert_eq!(u.measurement_count(), 21);
    }

    #[test]
    fn codes_increase_with_temperature() {
        let u = unit();
        let c_cold = u.raw_code(Celsius::new(-50.0)).unwrap();
        let c_hot = u.raw_code(Celsius::new(150.0)).unwrap();
        assert!(c_hot > c_cold, "codes: {c_cold} → {c_hot}");
    }

    #[test]
    fn measurement_reports_plausible_metadata() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(0.0), Celsius::new(100.0))
            .unwrap();
        let m = u.measure(Celsius::new(50.0)).unwrap();
        assert!(m.ring_period.as_picos() > 100.0 && m.ring_period.as_picos() < 1000.0);
        // 2¹⁶ + 64 ring cycles at a few hundred ps each → tens of µs.
        assert!(m.conversion_time.get() > 1e-6 && m.conversion_time.get() < 1e-4);
        assert!(m.ring_power.get() > 0.0);
        assert!(m.code > 0);
    }

    #[test]
    fn osc_on_time_accumulates_only_during_conversions() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(0.0), Celsius::new(100.0))
            .unwrap();
        assert_eq!(u.total_osc_on_time().get(), 0.0);
        let m = u.measure(Celsius::new(40.0)).unwrap();
        let after_one = u.total_osc_on_time().get();
        assert!((after_one - m.conversion_time.get()).abs() < 1e-18);
        u.measure(Celsius::new(40.0)).unwrap();
        assert!((u.total_osc_on_time().get() - 2.0 * after_one).abs() < 1e-15);
    }

    #[test]
    fn resolution_matches_design_equation() {
        let u = unit();
        let r = u.resolution_at(Celsius::new(50.0)).unwrap();
        // 100 MHz reference, 4096-cycle window, ~0.3 ps/K slope
        // → sub-0.1 °C per LSB.
        assert!(r > 0.001 && r < 0.5, "resolution {r} °C/LSB");
    }

    #[test]
    fn code_calibration_algebra() {
        let cal = CodeCalibration::fit(100, Celsius::new(0.0), 300, Celsius::new(100.0)).unwrap();
        assert!((cal.decode(200).get() - 50.0).abs() < 1e-9);
        assert!((cal.gain - 0.5).abs() < 1e-12);
        assert!(CodeCalibration::fit(5, Celsius::new(0.0), 5, Celsius::new(10.0)).is_err());
    }

    #[test]
    fn dead_ring_times_out_instead_of_reading_zero() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        u.inject_fault(RingFault::Dead);
        assert!(matches!(
            u.measure(Celsius::new(85.0)),
            Err(SensorError::ConversionTimeout)
        ));
        u.clear_fault();
        assert!(u.active_fault().is_none());
        assert!(u.measure(Celsius::new(85.0)).is_ok(), "recovers on clear");
    }

    #[test]
    fn brief_metastability_is_ridden_out_by_retry() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        let healthy = u.measure(Celsius::new(60.0)).unwrap().code;
        u.inject_fault(RingFault::Metastable { captures: 3 });
        let m = u.measure(Celsius::new(60.0)).unwrap();
        assert_eq!(m.code, healthy, "retry converged on the clean code");
    }

    #[test]
    fn persistent_metastability_reports_unstable() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        u.inject_fault(RingFault::Metastable { captures: 1_000 });
        assert!(matches!(
            u.measure(Celsius::new(60.0)),
            Err(SensorError::CaptureUnstable { .. })
        ));
    }

    #[test]
    fn delay_and_bitflip_faults_shift_the_reading() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        let healthy = u.measure(Celsius::new(60.0)).unwrap();
        u.inject_fault(RingFault::DelayScale { factor: 1.5 });
        let slow = u.measure(Celsius::new(60.0)).unwrap();
        // Period grows with temperature, so a slower ring reads hotter.
        assert!(
            slow.temperature.get() > healthy.temperature.get() + 10.0,
            "a 1.5× slower ring reads much hotter: {} vs {}",
            slow.temperature.get(),
            healthy.temperature.get()
        );
        u.inject_fault(RingFault::CounterBitFlip { bit: 10 });
        let flipped = u.measure(Celsius::new(60.0)).unwrap();
        assert_eq!(
            flipped.code,
            healthy.code ^ (1 << 10),
            "exactly one count bit differs"
        );
    }

    #[test]
    fn supply_droop_shifts_reading_like_the_sensitivity_model() {
        let mut u = unit();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        let healthy = u.measure(Celsius::new(60.0)).unwrap().temperature.get();
        u.inject_fault(RingFault::SupplyDroop { delta_v: 0.1 });
        let sagged = u.measure(Celsius::new(60.0)).unwrap().temperature.get();
        let predicted = tsense_core::supply::SupplySensitivity::at(
            &u.config().ring,
            &u.config().tech,
            Celsius::new(60.0),
        )
        .unwrap()
        .temp_error_for(tsense_core::units::Volts::new(-0.1));
        let observed = sagged - healthy;
        assert!(
            (observed - predicted).abs() < 0.2 * predicted.abs() + 0.5,
            "observed shift {observed} °C vs predicted {predicted} °C"
        );
    }

    #[test]
    fn undersized_counter_wraps_silently() {
        // The silent-corruption mode NC0901 exists to rule out: an
        // 8-bit counter wraps and the unit reports a bogus small code.
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        let wide = SmartSensorUnit::new(SensorConfig::new(ring.clone(), tech.clone())).unwrap();
        let narrow =
            SmartSensorUnit::new(SensorConfig::new(ring, tech).with_counter_bits(8)).unwrap();
        let full = wide.raw_code(Celsius::new(150.0)).unwrap();
        let wrapped = narrow.raw_code(Celsius::new(150.0)).unwrap();
        assert!(full > 255, "default window overflows 8 bits: {full}");
        assert_eq!(wrapped, full & 0xFF, "hardware wrap, not saturation");
    }

    #[test]
    fn external_calibration_installable() {
        let mut u = unit();
        let golden = {
            let mut g = unit();
            g.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
                .unwrap();
            g.calibration().unwrap()
        };
        u.set_calibration(golden);
        let m = u.measure(Celsius::new(25.0)).unwrap();
        assert!((m.temperature.get() - 25.0).abs() < 2.0);
    }
}
