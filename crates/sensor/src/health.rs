//! Per-ring health monitoring for graceful degradation.
//!
//! A thermal-test sensor that is itself broken must not poison the
//! thermal map silently. This module gives the array layer a
//! [`HealthPolicy`] — what a plausible ring looks like — and a
//! [`HealthStatus`] verdict per site, so
//! [`SensorArray::scan_degraded`](crate::array::SensorArray::scan_degraded)
//! can quarantine sick rings and keep serving readings from the
//! survivors.
//!
//! Three independent checks compose the monitor:
//!
//! 1. **Activity** — a site whose measurement fails outright (dead ring
//!    timeout, unstable captures, model blow-up) is quarantined with
//!    the typed cause preserved.
//! 2. **Plausible period band** — the measured ring period must fall in
//!    `[min, max]` seconds. The band is derived from the healthy ring
//!    model across the qualification temperature range, widened by a
//!    guard margin, so any gross delay fault or stuck period lands
//!    outside it at every temperature.
//! 3. **Neighbor agreement** — surviving readings are compared against
//!    their median; an outlier beyond `neighbor_tolerance_c` is
//!    quarantined. This catches faults that keep the period plausible
//!    but bend the reading (high counter bit flips, moderate delay
//!    faults).

use tsense_core::units::TempRange;

use crate::error::Result;
use crate::unit::SmartSensorUnit;

/// What a healthy ring is allowed to look like, and how far a reading
/// may stray from its neighbors before quarantine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Smallest plausible ring period, seconds.
    pub period_min_s: f64,
    /// Largest plausible ring period, seconds.
    pub period_max_s: f64,
    /// Quarantine threshold on |reading − median of survivors|, °C.
    /// Must exceed the expected spatial gradient across the die plus
    /// the per-site accuracy; the default (3 °C) suits the paper's
    /// ±1.3 °C units on a near-uniform field.
    pub neighbor_tolerance_c: f64,
    /// Parole knob: a quarantined site that probes healthy (measurement
    /// succeeds, period in band, reading within `neighbor_tolerance_c`
    /// of the survivors' median) for this many *consecutive* degraded
    /// scans is released from quarantine and rejoins the next scan.
    /// `None` (the default) keeps quarantine permanent — the
    /// conservative thermal-test posture; a supervising runtime sets
    /// this so transient faults (droop, metastable bursts) do not bench
    /// a ring forever.
    pub parole_after: Option<u32>,
}

impl Default for HealthPolicy {
    /// A broad band covering every shipped ring preset (tens of ps to
    /// a few ns) with a 3 °C neighbor tolerance and permanent
    /// quarantine (no parole).
    fn default() -> Self {
        HealthPolicy {
            period_min_s: 20e-12,
            period_max_s: 5e-9,
            neighbor_tolerance_c: 3.0,
            parole_after: None,
        }
    }
}

impl HealthPolicy {
    /// Derives the plausible period band from a unit's own healthy ring
    /// model: the period span over `range`, widened by `margin`
    /// (e.g. `0.25` for ±25 %).
    ///
    /// # Errors
    ///
    /// Propagates ring-model evaluation failures at the range ends.
    pub fn for_unit(unit: &SmartSensorUnit, range: TempRange, margin: f64) -> Result<Self> {
        let cfg = unit.config();
        let p_lo = cfg.ring.period(&cfg.tech, range.low())?.get();
        let p_hi = cfg.ring.period(&cfg.tech, range.high())?.get();
        let (min, max) = if p_lo <= p_hi {
            (p_lo, p_hi)
        } else {
            (p_hi, p_lo)
        };
        Ok(HealthPolicy {
            period_min_s: min * (1.0 - margin),
            period_max_s: max * (1.0 + margin),
            ..HealthPolicy::default()
        })
    }

    /// Enables parole: a quarantined site probing healthy for `scans`
    /// consecutive degraded scans is released (chainable).
    #[must_use]
    pub fn with_parole_after(mut self, scans: u32) -> Self {
        self.parole_after = Some(scans.max(1));
        self
    }

    /// `true` when a measured ring period sits inside the plausible
    /// band.
    #[inline]
    pub fn period_plausible(&self, period_s: f64) -> bool {
        period_s >= self.period_min_s && period_s <= self.period_max_s
    }
}

/// The monitor's verdict on one site during a degraded scan.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthStatus {
    /// The site measured successfully and agrees with its neighbors.
    Healthy,
    /// The measurement itself failed; the typed cause is preserved as a
    /// rendered message (errors are not `Copy` across the report).
    NoActivity {
        /// Display form of the underlying [`crate::SensorError`].
        cause: String,
    },
    /// The ring oscillates, but at an implausible period.
    PeriodOutOfBand {
        /// The measured period, seconds.
        period_s: f64,
    },
    /// The reading disagrees with the median of the surviving sites.
    Outlier {
        /// Signed deviation from the survivors' median, °C.
        deviation_c: f64,
    },
}

impl HealthStatus {
    /// `true` for every non-[`HealthStatus::Healthy`] verdict.
    #[inline]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, HealthStatus::Healthy)
    }
}

/// Median of a non-empty slice (average of the middle pair for even
/// lengths). Values need not be sorted.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite readings"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{SensorConfig, SmartSensorUnit};
    use tsense_core::gate::{Gate, GateKind};
    use tsense_core::ring::RingOscillator;
    use tsense_core::tech::Technology;
    use tsense_core::units::Celsius;

    fn unit() -> SmartSensorUnit {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        SmartSensorUnit::new(SensorConfig::new(ring, tech)).unwrap()
    }

    #[test]
    fn derived_band_brackets_the_healthy_span() {
        let u = unit();
        let policy = HealthPolicy::for_unit(&u, TempRange::paper(), 0.25).unwrap();
        for t in TempRange::paper().samples(11) {
            let p = u.config().ring.period(&u.config().tech, t).unwrap().get();
            assert!(
                policy.period_plausible(p),
                "healthy period {p} s outside band [{}, {}]",
                policy.period_min_s,
                policy.period_max_s
            );
        }
        // A 4× delay fault at the hot end escapes the band.
        let hot = u
            .config()
            .ring
            .period(&u.config().tech, Celsius::new(150.0))
            .unwrap()
            .get();
        assert!(!policy.period_plausible(hot * 4.0));
        assert!(!policy.period_plausible(0.0));
    }

    #[test]
    fn median_odd_even_and_status_predicates() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(!HealthStatus::Healthy.is_faulty());
        assert!(HealthStatus::Outlier { deviation_c: 9.0 }.is_faulty());
        assert!(HealthStatus::NoActivity {
            cause: "dead".into()
        }
        .is_faulty());
    }
}
