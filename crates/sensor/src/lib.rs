//! # sensor — the smart temperature-sensor unit
//!
//! The paper's Section 3 system: a ring-oscillator sensing element wired
//! to a digital processing block that converts the oscillation period to
//! a temperature word, with enable/disable control, a busy flag, and a
//! multiplexer over distributed oscillators for thermal mapping.
//!
//! * [`fsm`] — the measurement controller (Idle → Settle → Measure →
//!   Done), which keeps the oscillator off between conversions;
//! * [`digitizer`] — period-to-count conversion, both behavioural and as
//!   a real gate-level counter design simulated on [`dsim`];
//! * [`mod@unit`] — the assembled [`unit::SmartSensorUnit`] with code-domain
//!   two-point calibration;
//! * [`selfheat`] — quantifies the benefit of the disable feature;
//! * [`noise`] — period jitter and averaging/median filtering;
//! * [`alarm`] — threshold comparator with hysteresis and a polling
//!   thermal watchdog (the thermal-management layer);
//! * [`muxscan`] — the multiplexer at gate level: one shared digitizer
//!   scanned over N ring oscillators through a NAND mux tree;
//! * [`gateunit`] — the complete smart unit as gates: one-hot FSM,
//!   settle/measure timers, oscillator gating, busy/done handshake and
//!   the digitizer in a single netlist;
//! * [`mod@array`] — multiplexed sensor arrays scanned against a
//!   [`thermal`] ground-truth die temperature field, with a
//!   quarantine-aware degraded scan mode;
//! * [`health`] — per-ring health policy and verdicts backing the
//!   degraded scan (plausible period band, neighbor agreement);
//! * [`stapath`] — transfer-function evaluation and cell-mix search on
//!   the static timing graph, bypassing transient simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Validation deliberately writes `!(x > 0.0)` instead of `x <= 0.0`:
// the negated form also rejects NaN, which the comparison form lets
// through silently.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod alarm;
pub mod array;
pub mod digitizer;
pub mod error;
pub mod fsm;
pub mod gateunit;
pub mod health;
pub mod muxscan;
pub mod noise;
pub mod selfheat;
pub mod stapath;
pub mod unit;

pub use alarm::{AlarmEvent, ThermalAlarm, ThermalWatchdog};
pub use array::{DegradedReading, MapPoint, SensorArray, SensorSite, ThermalMap};
pub use digitizer::{BehavioralDigitizer, GateLevelDigitizer, GateLevelResult};
pub use error::{Result, SensorError};
pub use fsm::{MeasureFsm, Outputs, State};
pub use gateunit::{GateLevelUnit, GateUnitResult};
pub use health::{HealthPolicy, HealthStatus};
pub use muxscan::{ChannelReading, GateLevelMuxScan};
pub use noise::JitterModel;
pub use stapath::{StaConfigPoint, StaFastPath};
pub use unit::{CodeCalibration, Measurement, RingFault, SensorConfig, SmartSensorUnit};
