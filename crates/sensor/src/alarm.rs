//! Thermal alarm and watchdog — the *thermal management* side of the
//! paper's motivation.
//!
//! The introduction cites products that incorporate "design techniques
//! for thermal testability and thermal management" (diode sensors in the
//! Pentium 4, the PowerPC Thermal Assist Unit). This module provides the
//! digital decision layer those systems put behind the sensor: a
//! threshold comparator with hysteresis ([`ThermalAlarm`]) and a
//! periodic-sampling watchdog ([`ThermalWatchdog`]) that duty-cycles the
//! oscillator between polls.

use tsense_core::units::{Celsius, Seconds};

use crate::error::Result;
use crate::unit::SmartSensorUnit;

/// What an alarm update observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmEvent {
    /// Temperature crossed above the trip threshold.
    Tripped,
    /// Temperature fell back below `threshold − hysteresis`.
    Cleared,
    /// No state change.
    None,
}

/// A trip/clear comparator with hysteresis.
///
/// ```
/// use sensor::alarm::{AlarmEvent, ThermalAlarm};
/// use tsense_core::units::Celsius;
///
/// let mut alarm = ThermalAlarm::new(Celsius::new(100.0), 5.0);
/// assert_eq!(alarm.update(Celsius::new(101.0)), AlarmEvent::Tripped);
/// assert_eq!(alarm.update(Celsius::new(97.0)), AlarmEvent::None); // hysteresis
/// assert_eq!(alarm.update(Celsius::new(94.0)), AlarmEvent::Cleared);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalAlarm {
    threshold: Celsius,
    hysteresis: f64,
    tripped: bool,
}

impl ThermalAlarm {
    /// Creates an alarm tripping above `threshold` and clearing below
    /// `threshold − hysteresis_k`.
    ///
    /// # Panics
    ///
    /// Panics if the hysteresis is negative.
    pub fn new(threshold: Celsius, hysteresis_k: f64) -> Self {
        assert!(hysteresis_k >= 0.0, "hysteresis must be non-negative");
        ThermalAlarm {
            threshold,
            hysteresis: hysteresis_k,
            tripped: false,
        }
    }

    /// The trip threshold.
    #[inline]
    pub fn threshold(&self) -> Celsius {
        self.threshold
    }

    /// `true` while the alarm is latched.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Feeds one temperature reading; returns the resulting event.
    pub fn update(&mut self, reading: Celsius) -> AlarmEvent {
        if !self.tripped && reading.get() > self.threshold.get() {
            self.tripped = true;
            AlarmEvent::Tripped
        } else if self.tripped && reading.get() < self.threshold.get() - self.hysteresis {
            self.tripped = false;
            AlarmEvent::Cleared
        } else {
            AlarmEvent::None
        }
    }
}

/// One watchdog poll result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollOutcome {
    /// The calibrated reading.
    pub temperature: Celsius,
    /// The alarm transition this reading caused.
    pub event: AlarmEvent,
    /// Oscillator duty cycle so far (on-time / wall time).
    pub duty: f64,
}

/// A periodic thermal watchdog: sample, compare, and keep the oscillator
/// off between polls.
#[derive(Debug, Clone)]
pub struct ThermalWatchdog {
    unit: SmartSensorUnit,
    alarm: ThermalAlarm,
    poll_interval: Seconds,
    wall_time: Seconds,
}

impl ThermalWatchdog {
    /// Creates a watchdog polling every `poll_interval`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(unit: SmartSensorUnit, alarm: ThermalAlarm, poll_interval: Seconds) -> Self {
        assert!(poll_interval.get() > 0.0, "poll interval must be positive");
        ThermalWatchdog {
            unit,
            alarm,
            poll_interval,
            wall_time: Seconds::new(0.0),
        }
    }

    /// The wrapped sensor unit.
    #[inline]
    pub fn unit(&self) -> &SmartSensorUnit {
        &self.unit
    }

    /// `true` while the alarm is latched.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.alarm.is_tripped()
    }

    /// Performs one poll at the given junction temperature: one
    /// conversion (the oscillator runs only for that conversion) plus
    /// the idle remainder of the interval.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn poll(&mut self, junction: Celsius) -> Result<PollOutcome> {
        let m = self.unit.measure(junction)?;
        self.wall_time = self.wall_time + self.poll_interval.max(m.conversion_time);
        let event = self.alarm.update(m.temperature);
        let duty = self.unit.total_osc_on_time().get() / self.wall_time.get();
        Ok(PollOutcome {
            temperature: m.temperature,
            event,
            duty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsense_core::gate::{Gate, GateKind};
    use tsense_core::ring::RingOscillator;
    use tsense_core::tech::Technology;

    fn calibrated_unit() -> SmartSensorUnit {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        let mut u = SmartSensorUnit::new(crate::unit::SensorConfig::new(ring, tech)).unwrap();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        u
    }

    #[test]
    fn alarm_trips_and_clears_with_hysteresis() {
        let mut a = ThermalAlarm::new(Celsius::new(100.0), 5.0);
        assert!(!a.is_tripped());
        assert_eq!(a.update(Celsius::new(95.0)), AlarmEvent::None);
        assert_eq!(a.update(Celsius::new(101.0)), AlarmEvent::Tripped);
        assert!(a.is_tripped());
        // Inside the hysteresis band: still tripped.
        assert_eq!(a.update(Celsius::new(97.0)), AlarmEvent::None);
        assert!(a.is_tripped());
        // Below threshold − hysteresis: clears.
        assert_eq!(a.update(Celsius::new(94.0)), AlarmEvent::Cleared);
        assert!(!a.is_tripped());
        // Repeated updates do not re-fire events.
        assert_eq!(a.update(Celsius::new(94.0)), AlarmEvent::None);
    }

    #[test]
    fn hysteresis_suppresses_chatter_at_the_threshold() {
        // A reading oscillating ±1 °C around the trip point must produce
        // exactly one trip, not a trip/clear storm.
        let mut a = ThermalAlarm::new(Celsius::new(100.0), 5.0);
        let mut events = 0;
        for i in 0..20 {
            let t = 100.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            if a.update(Celsius::new(t)) != AlarmEvent::None {
                events += 1;
            }
        }
        assert_eq!(events, 1, "one trip only");
        assert!(a.is_tripped());
    }

    #[test]
    fn watchdog_detects_an_overheating_excursion() {
        let unit = calibrated_unit();
        let alarm = ThermalAlarm::new(Celsius::new(110.0), 5.0);
        let mut wd = ThermalWatchdog::new(unit, alarm, Seconds::new(1e-3));
        // Junction climbs, overshoots, and cools back down.
        let profile = [60.0, 90.0, 105.0, 115.0, 125.0, 112.0, 104.0, 95.0, 80.0];
        let mut log = Vec::new();
        for &t in &profile {
            let p = wd.poll(Celsius::new(t)).unwrap();
            log.push(p.event);
        }
        assert_eq!(log.iter().filter(|e| **e == AlarmEvent::Tripped).count(), 1);
        assert_eq!(log.iter().filter(|e| **e == AlarmEvent::Cleared).count(), 1);
        let trip_idx = log.iter().position(|e| *e == AlarmEvent::Tripped).unwrap();
        let clear_idx = log.iter().position(|e| *e == AlarmEvent::Cleared).unwrap();
        assert!(trip_idx < clear_idx);
        assert!(!wd.is_tripped(), "cooled down at the end");
    }

    #[test]
    fn watchdog_duty_cycle_stays_low() {
        let unit = calibrated_unit();
        let alarm = ThermalAlarm::new(Celsius::new(150.0), 5.0);
        let mut wd = ThermalWatchdog::new(unit, alarm, Seconds::new(1e-3));
        let mut last = None;
        for _ in 0..10 {
            last = Some(wd.poll(Celsius::new(85.0)).unwrap());
        }
        let duty = last.unwrap().duty;
        // ~20 µs conversion per 1 ms interval ≈ 2 %.
        assert!(duty < 0.05, "duty {duty}");
        assert!(duty > 0.001, "oscillator does run: {duty}");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn negative_hysteresis_rejected() {
        let _ = ThermalAlarm::new(Celsius::new(100.0), -1.0);
    }
}
