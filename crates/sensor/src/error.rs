//! Error type of the smart-sensor layer.

use std::fmt;

use tsense_core::ModelError;

/// Errors produced by the smart unit and its subsystems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// An underlying analytical-model evaluation failed.
    Model(ModelError),
    /// A thermal-substrate operation failed.
    Thermal(thermal::ThermalError),
    /// A gate-level simulator operation failed.
    Sim(dsim::DsimError),
    /// A static-timing evaluation failed.
    Timing(sta::StaError),
    /// The unit was asked for a reading while no measurement is complete.
    NotReady,
    /// A configuration value was out of its domain.
    InvalidConfig {
        /// Reason the configuration is rejected.
        reason: String,
    },
    /// A multiplexer channel outside the array was addressed.
    BadChannel {
        /// Requested channel.
        channel: usize,
        /// Number of channels present.
        available: usize,
    },
    /// The conversion window never closed — the sensing ring shows no
    /// activity (dead or stuck oscillator).
    ConversionTimeout,
    /// Repeated digitizer captures kept disagreeing (metastable capture
    /// path) even after the bounded retry budget.
    CaptureUnstable {
        /// Double-capture attempts made before giving up.
        attempts: u32,
    },
    /// Every ring of an array is quarantined — no surviving channel can
    /// serve a degraded reading.
    NoHealthyRings {
        /// Total number of sites in the array.
        total: usize,
        /// How many of them are quarantined.
        quarantined: usize,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::Model(e) => write!(f, "model error: {e}"),
            SensorError::Thermal(e) => write!(f, "thermal error: {e}"),
            SensorError::Sim(e) => write!(f, "simulator error: {e}"),
            SensorError::Timing(e) => write!(f, "timing error: {e}"),
            SensorError::NotReady => write!(f, "no completed measurement available"),
            SensorError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SensorError::BadChannel { channel, available } => {
                write!(f, "channel {channel} out of range (array has {available})")
            }
            SensorError::ConversionTimeout => {
                write!(f, "conversion window never closed: ring shows no activity")
            }
            SensorError::CaptureUnstable { attempts } => {
                write!(
                    f,
                    "digitizer captures kept disagreeing after {attempts} double-capture attempts"
                )
            }
            SensorError::NoHealthyRings { total, quarantined } => {
                write!(
                    f,
                    "no healthy rings: {quarantined} of {total} sites quarantined"
                )
            }
        }
    }
}

impl std::error::Error for SensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensorError::Model(e) => Some(e),
            SensorError::Thermal(e) => Some(e),
            SensorError::Sim(e) => Some(e),
            SensorError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SensorError {
    fn from(e: ModelError) -> Self {
        SensorError::Model(e)
    }
}

impl From<thermal::ThermalError> for SensorError {
    fn from(e: thermal::ThermalError) -> Self {
        SensorError::Thermal(e)
    }
}

impl From<dsim::DsimError> for SensorError {
    fn from(e: dsim::DsimError) -> Self {
        SensorError::Sim(e)
    }
}

impl From<sta::StaError> for SensorError {
    fn from(e: sta::StaError) -> Self {
        SensorError::Timing(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SensorError = ModelError::NoOverdrive { at_celsius: 160.0 }.into();
        assert!(e.to_string().contains("model error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: SensorError = thermal::ThermalError::NoConvergence { sweeps: 3 }.into();
        assert!(e.to_string().contains("thermal"));
        assert!(SensorError::NotReady.to_string().contains("measurement"));
        assert!(SensorError::BadChannel {
            channel: 9,
            available: 4
        }
        .to_string()
        .contains("9"));
    }

    #[test]
    fn error_traits() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<SensorError>();
    }
}
