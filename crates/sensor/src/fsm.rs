//! The measurement-control finite-state machine.
//!
//! The paper's smart unit can *disable the oscillator to minimize
//! self-heating* and *produce an output signal to indicate that a
//! measurement is in progress*. This FSM is that controller:
//!
//! ```text
//!            start                settle elapsed           window done
//!  Idle ───────────────▶ Settle ───────────────▶ Measure ─────────────▶ Done
//!   ▲  osc off, !busy    osc on, busy            osc on, busy            │
//!   └───────────────────────────── acknowledge ◀─────────────────────────┘
//!                                                osc off, !busy, data valid
//! ```
//!
//! The settle phase lets the freshly enabled ring reach steady
//! oscillation before the counting window opens.

use std::fmt;

/// The controller states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Oscillator disabled, waiting for a start request.
    Idle,
    /// Oscillator enabled, waiting for start-up transients to die out.
    /// Carries the remaining settle time in femtoseconds.
    Settle {
        /// Remaining settle time, femtoseconds.
        remaining_fs: u64,
    },
    /// Counting window open. Carries the remaining window time.
    Measure {
        /// Remaining window time, femtoseconds.
        remaining_fs: u64,
    },
    /// Measurement complete; data valid until acknowledged.
    Done,
}

/// Observable outputs of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outputs {
    /// Ring-oscillator enable (the self-heating control).
    pub osc_enable: bool,
    /// Measurement-in-progress flag.
    pub busy: bool,
    /// Result-register valid flag.
    pub data_valid: bool,
}

/// The measurement FSM with femtosecond timing.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureFsm {
    state: State,
    settle_fs: u64,
    window_fs: u64,
    /// Cumulative time the oscillator has spent enabled (self-heating
    /// bookkeeping).
    osc_on_time_fs: u64,
    /// Completed measurements since construction.
    completed: u64,
}

impl MeasureFsm {
    /// Creates an idle controller with the given settle and window times.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero (a measurement must take time).
    pub fn new(settle_fs: u64, window_fs: u64) -> Self {
        assert!(window_fs > 0, "measurement window must be positive");
        MeasureFsm {
            state: State::Idle,
            settle_fs,
            window_fs,
            osc_on_time_fs: 0,
            completed: 0,
        }
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> State {
        self.state
    }

    /// Output signals for the current state.
    pub fn outputs(&self) -> Outputs {
        match self.state {
            State::Idle => Outputs {
                osc_enable: false,
                busy: false,
                data_valid: false,
            },
            State::Settle { .. } | State::Measure { .. } => Outputs {
                osc_enable: true,
                busy: true,
                data_valid: false,
            },
            State::Done => Outputs {
                osc_enable: false,
                busy: false,
                data_valid: true,
            },
        }
    }

    /// Requests a measurement. Ignored unless idle (one conversion at a
    /// time, like the real unit).
    pub fn start(&mut self) {
        if self.state == State::Idle {
            self.state = if self.settle_fs == 0 {
                State::Measure {
                    remaining_fs: self.window_fs,
                }
            } else {
                State::Settle {
                    remaining_fs: self.settle_fs,
                }
            };
        }
    }

    /// Acknowledges a completed measurement, returning to idle.
    pub fn acknowledge(&mut self) {
        if self.state == State::Done {
            self.state = State::Idle;
        }
    }

    /// Advances time by `dt_fs` femtoseconds, walking through phase
    /// boundaries exactly (a long `dt` can cross several).
    pub fn tick(&mut self, mut dt_fs: u64) {
        while dt_fs > 0 {
            match self.state {
                State::Idle | State::Done => return,
                State::Settle { remaining_fs } => {
                    let used = remaining_fs.min(dt_fs);
                    self.osc_on_time_fs += used;
                    dt_fs -= used;
                    self.state = if used == remaining_fs {
                        State::Measure {
                            remaining_fs: self.window_fs,
                        }
                    } else {
                        State::Settle {
                            remaining_fs: remaining_fs - used,
                        }
                    };
                }
                State::Measure { remaining_fs } => {
                    let used = remaining_fs.min(dt_fs);
                    self.osc_on_time_fs += used;
                    dt_fs -= used;
                    if used == remaining_fs {
                        self.state = State::Done;
                        self.completed += 1;
                    } else {
                        self.state = State::Measure {
                            remaining_fs: remaining_fs - used,
                        };
                    }
                }
            }
        }
    }

    /// Total time the oscillator has been enabled, femtoseconds.
    #[inline]
    pub fn osc_on_time_fs(&self) -> u64 {
        self.osc_on_time_fs
    }

    /// Number of completed measurements.
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Duration of one full conversion (settle + window), femtoseconds.
    #[inline]
    pub fn conversion_time_fs(&self) -> u64 {
        self.settle_fs + self.window_fs
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::Idle => write!(f, "idle"),
            State::Settle { remaining_fs } => write!(f, "settling ({remaining_fs} fs left)"),
            State::Measure { remaining_fs } => write!(f, "measuring ({remaining_fs} fs left)"),
            State::Done => write!(f, "done"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_walkthrough() {
        let mut fsm = MeasureFsm::new(1_000, 10_000);
        assert_eq!(fsm.state(), State::Idle);
        assert!(!fsm.outputs().osc_enable && !fsm.outputs().busy);

        fsm.start();
        assert!(matches!(
            fsm.state(),
            State::Settle {
                remaining_fs: 1_000
            }
        ));
        let o = fsm.outputs();
        assert!(o.osc_enable && o.busy && !o.data_valid);

        fsm.tick(400);
        assert!(matches!(fsm.state(), State::Settle { remaining_fs: 600 }));
        fsm.tick(600);
        assert!(matches!(
            fsm.state(),
            State::Measure {
                remaining_fs: 10_000
            }
        ));

        fsm.tick(10_000);
        assert_eq!(fsm.state(), State::Done);
        let o = fsm.outputs();
        assert!(
            !o.osc_enable && !o.busy && o.data_valid,
            "oscillator disabled when done"
        );
        assert_eq!(fsm.completed(), 1);

        fsm.acknowledge();
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn one_tick_can_cross_phases() {
        let mut fsm = MeasureFsm::new(1_000, 2_000);
        fsm.start();
        fsm.tick(5_000);
        assert_eq!(fsm.state(), State::Done);
        assert_eq!(
            fsm.osc_on_time_fs(),
            3_000,
            "oscillator only ran settle+window"
        );
    }

    #[test]
    fn start_ignored_outside_idle() {
        let mut fsm = MeasureFsm::new(100, 100);
        fsm.start();
        fsm.tick(50);
        let before = fsm.state();
        fsm.start();
        assert_eq!(fsm.state(), before, "re-start mid-conversion ignored");
        fsm.tick(1_000);
        assert_eq!(fsm.state(), State::Done);
        fsm.start();
        assert_eq!(fsm.state(), State::Done, "start ignored until acknowledged");
    }

    #[test]
    fn acknowledge_only_from_done() {
        let mut fsm = MeasureFsm::new(100, 100);
        fsm.acknowledge();
        assert_eq!(fsm.state(), State::Idle);
        fsm.start();
        fsm.acknowledge();
        assert!(
            matches!(fsm.state(), State::Settle { .. }),
            "ack mid-conversion ignored"
        );
    }

    #[test]
    fn zero_settle_goes_straight_to_measure() {
        let mut fsm = MeasureFsm::new(0, 500);
        fsm.start();
        assert!(matches!(fsm.state(), State::Measure { .. }));
    }

    #[test]
    fn idle_time_does_not_heat_the_oscillator() {
        let mut fsm = MeasureFsm::new(100, 100);
        fsm.tick(1_000_000);
        assert_eq!(fsm.osc_on_time_fs(), 0);
        fsm.start();
        fsm.tick(1_000_000);
        assert_eq!(fsm.osc_on_time_fs(), 200, "only the conversion itself");
        assert_eq!(fsm.conversion_time_fs(), 200);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = MeasureFsm::new(100, 0);
    }

    #[test]
    fn state_display() {
        assert_eq!(format!("{}", State::Idle), "idle");
        assert!(format!("{}", State::Settle { remaining_fs: 5 }).contains("5 fs"));
    }
}
