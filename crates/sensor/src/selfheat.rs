//! Self-heating of the sensing ring — why the smart unit can disable it.
//!
//! An oscillating ring dissipates `P = C_sw·V²·f` locally. Through the
//! sensor's local thermal resistance that power raises the very junction
//! temperature being measured. The paper lists *"the possibility to
//! disable the oscillator in order to minimize self-heating"* as a key
//! feature; this module quantifies the benefit: continuous operation
//! settles at the full `P·R_th` error, duty-cycled operation at roughly
//! `duty · P·R_th`.

use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Seconds};

use crate::error::Result;

/// First-order (single-pole) local thermal model of the sensor site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfHeatModel {
    /// Sensor-local junction-to-die thermal resistance, K/W.
    pub r_th: f64,
    /// Local thermal time constant, seconds.
    pub tau: f64,
    rise_k: f64,
}

impl SelfHeatModel {
    /// A representative local model: a small sensor macro sees a few
    /// hundred K/W to the surrounding die with a ~100 µs time constant.
    pub fn new(r_th: f64, tau: f64) -> Self {
        assert!(
            r_th > 0.0 && tau > 0.0,
            "thermal parameters must be positive"
        );
        SelfHeatModel {
            r_th,
            tau,
            rise_k: 0.0,
        }
    }

    /// Default parameters (300 K/W, 100 µs).
    pub fn default_macro() -> Self {
        SelfHeatModel::new(300.0, 100e-6)
    }

    /// Current self-heating rise above the die temperature, K.
    #[inline]
    pub fn rise_k(&self) -> f64 {
        self.rise_k
    }

    /// Advances the state by `dt` seconds with `power_w` dissipated
    /// (0 while the oscillator is disabled): exact exponential update of
    /// the single pole.
    pub fn step(&mut self, power_w: f64, dt: Seconds) {
        let target = power_w * self.r_th;
        let alpha = (-dt.get() / self.tau).exp();
        self.rise_k = target + (self.rise_k - target) * alpha;
    }

    /// Steady-state rise for continuous dissipation, K.
    pub fn steady_rise_k(&self, power_w: f64) -> f64 {
        power_w * self.r_th
    }
}

/// Outcome of the continuous-versus-duty-cycled comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfHeatStudy {
    /// Ring power at the study temperature, W.
    pub ring_power_w: f64,
    /// Measurement error from continuous oscillation, K.
    pub continuous_error_k: f64,
    /// Measurement error with the FSM's duty cycling, K.
    pub duty_cycled_error_k: f64,
    /// The duty cycle used (conversion time / repeat interval).
    pub duty: f64,
}

/// Quantifies the benefit of the disable feature at `ambient` junction
/// temperature: the oscillator either free-runs or is enabled only for
/// `conversion_time` out of every `repeat_interval`.
///
/// The duty-cycled error is evaluated by stepping the thermal pole
/// through enough on/off cycles to reach periodic steady state and
/// reading the rise at the *end of a conversion* (when the count is
/// latched — the worst case within the cycle).
///
/// # Errors
///
/// Propagates ring-model failures.
///
/// # Panics
///
/// Panics if `repeat_interval < conversion_time`.
pub fn study(
    ring: &RingOscillator,
    tech: &Technology,
    model: SelfHeatModel,
    ambient: Celsius,
    conversion_time: Seconds,
    repeat_interval: Seconds,
) -> Result<SelfHeatStudy> {
    assert!(
        repeat_interval.get() >= conversion_time.get(),
        "repeat interval must cover the conversion"
    );
    let power = ring.dynamic_power(tech, ambient)?.get();
    let continuous = model.steady_rise_k(power);

    // Periodic steady state: simulate on/off cycles until the end-of-
    // conversion rise converges.
    let mut m = model;
    let on = conversion_time;
    let off = Seconds::new(repeat_interval.get() - conversion_time.get());
    let mut last_peak = f64::INFINITY;
    let mut peak = 0.0;
    for _cycle in 0..10_000 {
        m.step(power, on);
        peak = m.rise_k();
        m.step(0.0, off);
        if (peak - last_peak).abs() < 1e-9 {
            break;
        }
        last_peak = peak;
    }
    Ok(SelfHeatStudy {
        ring_power_w: power,
        continuous_error_k: continuous,
        duty_cycled_error_k: peak,
        duty: conversion_time.get() / repeat_interval.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsense_core::gate::{Gate, GateKind};

    fn fixture() -> (Technology, RingOscillator) {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        (tech, ring)
    }

    #[test]
    fn exponential_step_reaches_steady_state() {
        let mut m = SelfHeatModel::new(100.0, 1e-3);
        m.step(0.01, Seconds::new(10e-3)); // 10 τ
        assert!(
            (m.rise_k() - 1.0).abs() < 1e-4,
            "P·Rth = 1 K, got {}",
            m.rise_k()
        );
        m.step(0.0, Seconds::new(10e-3));
        assert!(m.rise_k() < 1e-4, "cools back down");
    }

    #[test]
    fn single_tau_step_is_63_percent() {
        let mut m = SelfHeatModel::new(100.0, 1e-3);
        m.step(0.01, Seconds::new(1e-3));
        let expect = 1.0 - (-1.0_f64).exp();
        assert!((m.rise_k() - expect).abs() < 1e-9);
    }

    #[test]
    fn duty_cycling_reduces_the_error() {
        let (tech, ring) = fixture();
        // 2 µs conversion every 1 ms → 0.2 % duty.
        let s = study(
            &ring,
            &tech,
            SelfHeatModel::default_macro(),
            Celsius::new(85.0),
            Seconds::from_micros(2.0),
            Seconds::new(1e-3),
        )
        .unwrap();
        assert!(s.ring_power_w > 0.0);
        assert!(
            s.continuous_error_k > 0.1,
            "continuous rise {}",
            s.continuous_error_k
        );
        assert!(
            s.duty_cycled_error_k < 0.2 * s.continuous_error_k,
            "duty-cycled {} vs continuous {}",
            s.duty_cycled_error_k,
            s.continuous_error_k
        );
        assert!((s.duty - 0.002).abs() < 1e-6);
    }

    #[test]
    fn full_duty_equals_continuous() {
        let (tech, ring) = fixture();
        let t = Seconds::from_micros(10.0);
        let s = study(
            &ring,
            &tech,
            SelfHeatModel::default_macro(),
            Celsius::new(85.0),
            t,
            t,
        )
        .unwrap();
        // On 100 % of the time: the periodic peak approaches the
        // continuous steady state (within the convergence of the loop).
        assert!(s.duty_cycled_error_k > 0.9 * s.continuous_error_k);
    }

    #[test]
    #[should_panic(expected = "repeat interval")]
    fn repeat_shorter_than_conversion_rejected() {
        let (tech, ring) = fixture();
        let _ = study(
            &ring,
            &tech,
            SelfHeatModel::default_macro(),
            Celsius::new(25.0),
            Seconds::from_micros(10.0),
            Seconds::from_micros(5.0),
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_model_rejected() {
        let _ = SelfHeatModel::new(0.0, 1.0);
    }
}
