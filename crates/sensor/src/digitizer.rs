//! Period-to-digital conversion: the counting core of the smart unit.
//!
//! The digitizer opens a window of exactly `M` ring-oscillator cycles
//! and counts reference-clock cycles inside it; the count is
//! proportional to the ring period and therefore to temperature:
//!
//! ```text
//! count ≈ M · P_ring(T) · f_ref
//! ```
//!
//! Two implementations are provided and cross-checked:
//!
//! * [`BehavioralDigitizer`] — the closed-form count with floor
//!   quantization (what the RTL *should* do);
//! * [`GateLevelDigitizer`] — a real gate-level design simulated on
//!   [`dsim`]: a ripple counter divides the ring clock to generate the
//!   window, and a synchronous enable-gated counter accumulates the
//!   reference clock. Because the window edge is asynchronous to the
//!   reference clock, the hardware count may differ from the behavioral
//!   one by a couple of LSBs — exactly as on silicon.

use dsim::builders::{ripple_counter, sync_counter, DFF_DELAY_FS, GATE_DELAY_FS};
use dsim::logic::{bits_to_u64, Logic};
use dsim::netlist::{GateOp, Netlist};
use dsim::sim::Simulator;
use tsense_core::sensitivity::DigitizerSpec;
use tsense_core::units::{Hertz, Seconds};

use crate::error::{Result, SensorError};

/// The ideal counting digitizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehavioralDigitizer {
    spec: DigitizerSpec,
}

impl BehavioralDigitizer {
    /// Wraps a digitizer specification.
    pub fn new(spec: DigitizerSpec) -> Self {
        BehavioralDigitizer { spec }
    }

    /// The wrapped specification.
    #[inline]
    pub fn spec(&self) -> &DigitizerSpec {
        &self.spec
    }

    /// The count reported for a ring period.
    pub fn convert(&self, ring_period: Seconds) -> u64 {
        self.spec.quantized_count(ring_period)
    }

    /// Duration of the counting window for a ring period.
    pub fn window_duration(&self, ring_period: Seconds) -> Seconds {
        self.spec.conversion_time(ring_period)
    }
}

/// Result of one gate-level conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateLevelResult {
    /// The reference count latched after the window closed.
    pub count: u64,
    /// Time the busy/window signal was high, femtoseconds.
    pub busy_fs: u64,
    /// Events the logic simulator processed (cost metric).
    pub events: u64,
}

/// A gate-level digitizer instance for one ring period / temperature.
#[derive(Debug, Clone)]
pub struct GateLevelDigitizer {
    ring_period_fs: u64,
    ref_period_fs: u64,
    window_cycles: u32,
    ref_bits: usize,
}

impl GateLevelDigitizer {
    /// Plans a gate-level conversion.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when:
    /// * `window_cycles` is not a power of two (the window comparator is
    ///   a single counter bit);
    /// * the ring period is too fast for the counter's flip-flop loop
    ///   (`DFF + INV` settle time), which would violate hold constraints
    ///   in real hardware too;
    /// * the reference clock is not positive.
    pub fn new(ring_period: Seconds, ref_clock: Hertz, window_cycles: u32) -> Result<Self> {
        if !window_cycles.is_power_of_two() {
            return Err(SensorError::InvalidConfig {
                reason: format!("window of {window_cycles} cycles is not a power of two"),
            });
        }
        if !(ref_clock.get() > 0.0) {
            return Err(SensorError::InvalidConfig {
                reason: "reference clock must be positive".to_string(),
            });
        }
        let ring_period_fs = (ring_period.get() * 1e15).round() as u64;
        let min_period = 2 * (DFF_DELAY_FS + GATE_DELAY_FS);
        if ring_period_fs < min_period {
            return Err(SensorError::InvalidConfig {
                reason: format!(
                    "ring period {ring_period_fs} fs violates the counter's {min_period} fs \
                     toggle-loop constraint; divide the ring clock first"
                ),
            });
        }
        let ref_period_fs = (1e15 / ref_clock.get()).round() as u64;
        let expected = window_cycles as u64 * ring_period_fs / ref_period_fs;
        let ref_bits = (64 - expected.leading_zeros() as usize) + 2;
        Ok(GateLevelDigitizer {
            ring_period_fs,
            ref_period_fs,
            window_cycles,
            ref_bits: ref_bits.max(4),
        })
    }

    /// Builds the conversion netlist without running it — the same
    /// structure [`GateLevelDigitizer::run`] simulates, exposed so
    /// static analyses (clock-domain, X-propagation, hazard lints) can
    /// inspect the design before any simulation.
    pub fn netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        let ring_clk = nl.signal("ring_clk");
        let ref_clk = nl.signal("ref_clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        nl.symmetric_clock(ring_clk, self.ring_period_fs, self.ring_period_fs / 2);
        nl.symmetric_clock(ref_clk, self.ref_period_fs, self.ref_period_fs / 2);

        // Window generator: ripple-divide the ring clock; the window is
        // open while the bit representing `window_cycles` is still 0.
        // The divider is clocked through a window-gated ring clock, so
        // counting freezes (and the window stays closed) once the M-th
        // edge has arrived — otherwise the divider would wrap and reopen
        // the window, exactly as an ungated design would on silicon.
        let win_bit = self.window_cycles.trailing_zeros() as usize;
        let window = nl.signal_with_init("window", Logic::One);
        let ring_gated = nl.signal("ring_gated");
        nl.gate(GateOp::And, &[ring_clk, window], ring_gated, GATE_DELAY_FS);
        let ring_bits = ripple_counter(&mut nl, ring_gated, rst_n, win_bit + 1, "ringcnt");
        nl.gate(GateOp::Inv, &[ring_bits[win_bit]], window, GATE_DELAY_FS);

        // The window is generated in the ring-clock domain; gating the
        // reference counter with it directly would let the enable race
        // the carry chain at deassertion (a classic CDC hazard that
        // double-counts high bits). Two-flop synchronizer into the
        // reference domain, exactly as on silicon.
        let sync1 = nl.signal_with_init("win_sync1", Logic::Zero);
        let sync2 = nl.signal_with_init("win_sync2", Logic::Zero);
        nl.dff(
            window,
            ref_clk,
            Some(rst_n),
            sync1,
            dsim::builders::DFF_DELAY_FS,
        );
        nl.dff(
            sync1,
            ref_clk,
            Some(rst_n),
            sync2,
            dsim::builders::DFF_DELAY_FS,
        );

        // Reference counter, enabled while the synchronized window is
        // open (the 2-cycle latency applies to both edges and cancels).
        sync_counter(&mut nl, ref_clk, rst_n, sync2, self.ref_bits, "refcnt");
        nl
    }

    /// Builds the netlist, runs the conversion and reads the count.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] if the final count is
    /// unknown (X bits), which indicates a netlist bug rather than an
    /// operating condition.
    pub fn run(&self) -> Result<GateLevelResult> {
        let nl = self.netlist();
        let ref_bits: Vec<_> = (0..self.ref_bits)
            .map(|i| {
                nl.find_signal(&format!("refcnt.q{i}"))
                    .expect("counter bit")
            })
            .collect();
        let mut sim = Simulator::new(nl);
        // Run until well after the window closes (plus counter ripple).
        let horizon = (self.window_cycles as u64 + 4) * self.ring_period_fs
            + 12 * self.ref_period_fs
            + 20 * (DFF_DELAY_FS + GATE_DELAY_FS);
        sim.run_until(horizon);

        let window_sig = sim.netlist().find_signal("window").expect("window exists");
        if sim.value(window_sig).is_one() {
            return Err(SensorError::InvalidConfig {
                reason: "window never closed; horizon too short".to_string(),
            });
        }
        let levels: Vec<Logic> = ref_bits.iter().map(|&b| sim.value(b)).collect();
        let count = bits_to_u64(&levels).ok_or_else(|| SensorError::InvalidConfig {
            reason: "reference counter holds unknown bits".to_string(),
        })?;
        // Busy duration: the window opened at ~0 and closed after M ring
        // cycles (plus the divider's ripple, visible in the count).
        let busy_fs = self.window_cycles as u64 * self.ring_period_fs;
        Ok(GateLevelResult {
            count,
            busy_fs,
            events: sim.events_processed(),
        })
    }

    /// The behavioral count this instance should ideally produce.
    pub fn expected_count(&self) -> u64 {
        self.window_cycles as u64 * self.ring_period_fs / self.ref_period_fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_matches_spec_quantization() {
        let spec = DigitizerSpec::new(Hertz::from_mega(100.0), 1024).unwrap();
        let d = BehavioralDigitizer::new(spec);
        let p = Seconds::from_picos(700.0);
        // 1024 · 700 ps · 100 MHz = 71.68 → 71.
        assert_eq!(d.convert(p), 71);
        assert!((d.window_duration(p).as_nanos() - 716.8).abs() < 1e-9);
        assert_eq!(d.spec().window_cycles, 1024);
    }

    #[test]
    fn gate_level_count_close_to_behavioral() {
        // 1.5 ns ring period, 1 GHz reference, 64-cycle window:
        // expected = 64·1.5 ns·1 GHz = 96.
        let d = GateLevelDigitizer::new(Seconds::from_nanos(1.5), Hertz::from_mega(1000.0), 64)
            .unwrap();
        let r = d.run().unwrap();
        let expect = d.expected_count();
        assert_eq!(expect, 96);
        let err = (r.count as i64 - expect as i64).abs();
        assert!(err <= 2, "gate-level {} vs behavioral {expect}", r.count);
        assert!(r.events > 0);
        assert_eq!(r.busy_fs, 64 * 1_500_000);
    }

    #[test]
    fn gate_level_tracks_period_changes() {
        // A longer ring period (hotter junction) must raise the count.
        let counts: Vec<u64> = [1.2, 1.5, 1.8]
            .iter()
            .map(|&ns| {
                GateLevelDigitizer::new(Seconds::from_nanos(ns), Hertz::from_mega(1000.0), 64)
                    .unwrap()
                    .run()
                    .unwrap()
                    .count
            })
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
    }

    #[test]
    fn longer_window_finer_quantization() {
        let run = |m: u32| {
            GateLevelDigitizer::new(Seconds::from_nanos(1.37), Hertz::from_mega(500.0), m)
                .unwrap()
                .run()
                .unwrap()
                .count
        };
        let c64 = run(64);
        let c256 = run(256);
        // 4× window → ≈4× count.
        let ratio = c256 as f64 / c64 as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn non_power_of_two_window_rejected() {
        let e = GateLevelDigitizer::new(Seconds::from_nanos(1.5), Hertz::from_mega(100.0), 100)
            .unwrap_err();
        assert!(matches!(e, SensorError::InvalidConfig { .. }));
    }

    #[test]
    fn too_fast_ring_rejected() {
        let e = GateLevelDigitizer::new(Seconds::from_picos(100.0), Hertz::from_mega(100.0), 64)
            .unwrap_err();
        assert!(e.to_string().contains("toggle-loop"));
    }
}
