//! Measurement noise and averaging.
//!
//! A real ring oscillator jitters: thermal and flicker noise spread the
//! measured period around its mean, so single conversions scatter. This
//! module models that scatter (relative period jitter per conversion)
//! and provides the standard countermeasures — moving-average and
//! median-of-N filtering — whose √N behaviour the tests pin down.

use rand::Rng;

use tsense_core::units::{Celsius, Seconds};

use crate::error::Result;
use crate::unit::{Measurement, SmartSensorUnit};

/// Gaussian relative jitter on the *measured* (window-averaged) period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// 1σ of the relative period error per conversion.
    pub sigma_rel: f64,
}

impl JitterModel {
    /// Creates a jitter model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_rel` is negative or implausibly large (≥ 10 %).
    pub fn new(sigma_rel: f64) -> Self {
        assert!(
            (0.0..0.1).contains(&sigma_rel),
            "relative jitter must be in [0, 10 %)"
        );
        JitterModel { sigma_rel }
    }

    /// A representative window-averaged jitter for a 2¹⁶-cycle window:
    /// 0.02 % of the period.
    pub fn typical() -> Self {
        JitterModel::new(2e-4)
    }

    /// Draws one noisy period around `nominal`.
    pub fn perturb<R: Rng + ?Sized>(&self, nominal: Seconds, rng: &mut R) -> Seconds {
        let z = standard_normal(rng);
        Seconds::new(nominal.get() * (1.0 + self.sigma_rel * z))
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// One noisy conversion: the ring period is drawn from the jitter model
/// before digitization, everything else follows the normal measurement
/// path.
///
/// # Errors
///
/// Returns [`crate::SensorError::NotReady`] without a calibration, or
/// propagates model failures.
pub fn measure_noisy<R: Rng + ?Sized>(
    unit: &mut SmartSensorUnit,
    junction: Celsius,
    jitter: &JitterModel,
    rng: &mut R,
) -> Result<Measurement> {
    let clean = unit.measure(junction)?;
    let noisy_period = jitter.perturb(clean.ring_period, rng);
    let cal = unit.calibration().ok_or(crate::SensorError::NotReady)?;
    let spec = tsense_core::sensitivity::DigitizerSpec::new(
        unit.config().ref_clock,
        unit.config().window_cycles,
    )
    .map_err(crate::SensorError::Model)?;
    let code = crate::digitizer::BehavioralDigitizer::new(spec).convert(noisy_period);
    Ok(Measurement {
        code,
        temperature: cal.decode(code),
        ring_period: noisy_period,
        ..clean
    })
}

/// Averages `n` noisy conversions (mean of the calibrated readings).
///
/// # Errors
///
/// Propagates per-conversion failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn measure_averaged<R: Rng + ?Sized>(
    unit: &mut SmartSensorUnit,
    junction: Celsius,
    jitter: &JitterModel,
    n: usize,
    rng: &mut R,
) -> Result<Celsius> {
    assert!(n > 0, "need at least one conversion to average");
    let mut sum = 0.0;
    for _ in 0..n {
        sum += measure_noisy(unit, junction, jitter, rng)?
            .temperature
            .get();
    }
    Ok(Celsius::new(sum / n as f64))
}

/// Median of `n` noisy conversions — robust against occasional outliers.
///
/// # Errors
///
/// Propagates per-conversion failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn measure_median<R: Rng + ?Sized>(
    unit: &mut SmartSensorUnit,
    junction: Celsius,
    jitter: &JitterModel,
    n: usize,
    rng: &mut R,
) -> Result<Celsius> {
    assert!(n > 0, "need at least one conversion");
    let mut readings: Vec<f64> = Vec::with_capacity(n);
    for _ in 0..n {
        readings.push(
            measure_noisy(unit, junction, jitter, rng)?
                .temperature
                .get(),
        );
    }
    readings.sort_by(|a, b| a.partial_cmp(b).expect("finite readings"));
    let mid = n / 2;
    let median = if n % 2 == 1 {
        readings[mid]
    } else {
        0.5 * (readings[mid - 1] + readings[mid])
    };
    Ok(Celsius::new(median))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsense_core::gate::{Gate, GateKind};
    use tsense_core::ring::RingOscillator;
    use tsense_core::tech::Technology;
    use tsense_core::units::TempRange;

    fn unit() -> SmartSensorUnit {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        let mut u = SmartSensorUnit::new(crate::unit::SensorConfig::new(ring, tech)).unwrap();
        u.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
            .unwrap();
        u
    }

    fn reading_std(jitter: f64, n_avg: usize, trials: usize, seed: u64) -> f64 {
        let mut u = unit();
        let j = JitterModel::new(jitter);
        let mut rng = StdRng::seed_from_u64(seed);
        let readings: Vec<f64> = (0..trials)
            .map(|_| {
                measure_averaged(&mut u, Celsius::new(85.0), &j, n_avg, &mut rng)
                    .unwrap()
                    .get()
            })
            .collect();
        let mean = readings.iter().sum::<f64>() / trials as f64;
        (readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / trials as f64).sqrt()
    }

    #[test]
    fn zero_jitter_reproduces_the_clean_measurement() {
        let mut u = unit();
        let j = JitterModel::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let clean = u.measure(Celsius::new(60.0)).unwrap();
        let noisy = measure_noisy(&mut u, Celsius::new(60.0), &j, &mut rng).unwrap();
        assert_eq!(clean.code, noisy.code);
        assert_eq!(clean.temperature, noisy.temperature);
    }

    #[test]
    fn jitter_spreads_single_readings() {
        let s1 = reading_std(2e-3, 1, 60, 7);
        assert!(s1 > 0.05, "visible scatter: {s1}");
    }

    #[test]
    fn averaging_shrinks_the_scatter_roughly_sqrt_n() {
        let s1 = reading_std(2e-3, 1, 80, 11);
        let s16 = reading_std(2e-3, 16, 80, 13);
        let gain = s1 / s16;
        assert!(gain > 2.5 && gain < 7.0, "√16 = 4 expected, got {gain:.2}");
    }

    #[test]
    fn median_resists_outliers() {
        // With a heavy-tailed corruption (simulated by huge sigma), the
        // median stays closer to the truth than a single reading's
        // worst case.
        let mut u = unit();
        let j = JitterModel::new(5e-2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut worst_single = 0.0_f64;
        let mut worst_median = 0.0_f64;
        for _ in 0..20 {
            let single = measure_noisy(&mut u, Celsius::new(85.0), &j, &mut rng)
                .unwrap()
                .temperature
                .get();
            worst_single = worst_single.max((single - 85.0).abs());
            let med = measure_median(&mut u, Celsius::new(85.0), &j, 5, &mut rng)
                .unwrap()
                .get();
            worst_median = worst_median.max((med - 85.0).abs());
        }
        assert!(
            worst_median < worst_single,
            "median {worst_median:.2} vs single {worst_single:.2}"
        );
    }

    #[test]
    fn noisy_measurements_still_track_temperature() {
        let mut u = unit();
        let j = JitterModel::typical();
        let mut rng = StdRng::seed_from_u64(9);
        for t in TempRange::paper().samples(5) {
            let m = measure_averaged(&mut u, t, &j, 8, &mut rng).unwrap();
            assert!((m.get() - t.get()).abs() < 1.0, "at {t}: read {m}");
        }
    }

    #[test]
    #[should_panic(expected = "relative jitter")]
    fn absurd_jitter_rejected() {
        let _ = JitterModel::new(0.5);
    }
}
