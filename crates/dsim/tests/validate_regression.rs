//! Regression: malformed netlists (floating component inputs,
//! multiply-driven nets) used to slip through construction and
//! misbehave deep inside the run — a floating input pins its cone at
//! `X`, a doubly-driven net interleaves drivers event by event. They
//! must now be refused up front with a typed [`DsimError`].

use dsim::error::DsimError;
use dsim::logic::Logic;
use dsim::netlist::{GateOp, Netlist};
use dsim::sim::Simulator;

#[test]
fn floating_input_is_refused_before_simulation() {
    let mut nl = Netlist::new();
    let clk = nl.signal("clk");
    nl.symmetric_clock(clk, 2_000_000, 1_000_000);
    // `d` has no driver and no initial value: the old behaviour was to
    // build the simulator anyway and clock X into `q` forever.
    let d = nl.signal("d");
    let q = nl.signal_with_init("q", Logic::Zero);
    nl.dff(d, clk, None, q, 150_000);
    let err = Simulator::try_new(nl).unwrap_err();
    match err {
        DsimError::FloatingInput { ref name, .. } => assert_eq!(name, "d"),
        other => panic!("expected FloatingInput, got {other:?}"),
    }
    assert!(err.to_string().contains('d'), "{err}");
}

#[test]
fn duplicate_driver_is_refused_before_simulation() {
    let mut nl = Netlist::new();
    let a = nl.signal_with_init("a", Logic::Zero);
    let b = nl.signal_with_init("b", Logic::One);
    let y = nl.signal("y");
    nl.gate(GateOp::Buf, &[a], y, 100_000);
    nl.gate(GateOp::Inv, &[b], y, 100_000);
    let err = Simulator::try_new(nl).unwrap_err();
    match err {
        DsimError::DuplicateDriver {
            ref name, drivers, ..
        } => {
            assert_eq!(name, "y");
            assert_eq!(drivers, 2);
        }
        other => panic!("expected DuplicateDriver, got {other:?}"),
    }
}

#[test]
fn well_formed_netlist_still_constructs_and_runs() {
    let mut nl = Netlist::new();
    let ports =
        dsim::builders::ring_oscillator(&mut nl, &[GateOp::Inv; 5], "ring", 100_000).unwrap();
    let mut sim = Simulator::try_new(nl).expect("ring is well-formed");
    sim.count_edges(ports.out);
    sim.run_until(10_000_000);
    assert!(sim.edge_count(ports.out).unwrap() > 0);
}

#[test]
fn pokable_inputs_are_not_floating() {
    // Driverless signals with a definite initial value are testbench
    // inputs by convention; validation must keep accepting them.
    let mut nl = Netlist::new();
    let a = nl.signal_with_init("a", Logic::Zero);
    let y = nl.signal("y");
    nl.gate(GateOp::Inv, &[a], y, 100_000);
    assert!(nl.validate().is_ok());
}
