//! No-panic fuzzing of the netlist builders.
//!
//! The ring-oscillator builders are the entry point every higher layer
//! (sensor units, STA, netcheck fixtures) funnels through, so their
//! contract must be total: any stage-op sequence, any per-stage delay
//! (including 0 and `u64::MAX`), and any prefix string — including raw
//! byte noise — produce either a `RingPorts` or a typed `BuildError`,
//! never a panic. And the accept/reject decision must match the
//! documented rule exactly: at least three stages, odd inversion
//! parity.

use proptest::prelude::*;

use dsim::builders::{ring_oscillator, ring_oscillator_with_delays};
use dsim::netlist::{GateOp, Netlist};
use dsim::sim::Simulator;

fn arb_op() -> impl Strategy<Value = GateOp> {
    prop::sample::select(vec![
        GateOp::Buf,
        GateOp::Inv,
        GateOp::And,
        GateOp::Nand,
        GateOp::Or,
        GateOp::Nor,
        GateOp::Xor,
        GateOp::Xnor,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_stage_sequences_never_panic_and_match_the_contract(
        ops in prop::collection::vec(arb_op(), 0..10),
        delay_fs in any::<u64>(),
    ) {
        let mut nl = Netlist::new();
        let result = ring_oscillator(&mut nl, &ops, "fuzz", delay_fs);
        let inversions = ops.iter().filter(|op| op.is_inverting()).count();
        let should_build = ops.len() >= 3 && inversions % 2 == 1;
        prop_assert_eq!(
            result.is_ok(),
            should_build,
            "{} stage(s), {} inversion(s): {:?}",
            ops.len(),
            inversions,
            result.err()
        );
        if let Ok(ports) = result {
            prop_assert_eq!(ports.stages.len(), ops.len());
        }
    }

    #[test]
    fn arbitrary_per_stage_delays_never_panic(
        stages in prop::collection::vec((arb_op(), any::<u64>()), 0..8),
    ) {
        let mut nl = Netlist::new();
        let _ = ring_oscillator_with_delays(&mut nl, &stages, "fuzz");
    }

    #[test]
    fn arbitrary_byte_prefixes_never_panic(
        prefix_bytes in prop::collection::vec(any::<u8>(), 0..40),
        stages in 3usize..9,
    ) {
        // Signal names come from user-controlled strings; builders must
        // accept any of them, printable or not.
        let prefix = String::from_utf8_lossy(&prefix_bytes).into_owned();
        let mut ops = vec![GateOp::Inv; stages];
        if stages % 2 == 0 {
            ops[0] = GateOp::Buf; // keep the inversion parity odd
        }
        let mut nl = Netlist::new();
        let ports = ring_oscillator(&mut nl, &ops, &prefix, 1_000);
        prop_assert!(ports.is_ok(), "{:?}", ports.err());
    }

    #[test]
    fn built_rings_simulate_without_panicking(
        stages in 3usize..9,
        mixers in prop::collection::vec(any::<bool>(), 0..9),
        delay_fs in 100u64..50_000,
    ) {
        // Odd-parity rings with a random Inv/Nand mix must build and
        // then run under the event-driven simulator — the builder's
        // initial-value seeding must launch the wave for every mix.
        let mut ops: Vec<GateOp> = (0..stages)
            .map(|i| {
                if mixers.get(i).copied().unwrap_or(false) {
                    GateOp::Nand
                } else {
                    GateOp::Inv
                }
            })
            .collect();
        let inversions = ops.iter().filter(|op| op.is_inverting()).count();
        if inversions % 2 == 0 {
            ops[0] = GateOp::Buf;
        }
        prop_assume!(ops.iter().filter(|op| op.is_inverting()).count() % 2 == 1);
        let mut nl = Netlist::new();
        let ports = ring_oscillator(&mut nl, &ops, "ring", delay_fs);
        prop_assert!(ports.is_ok(), "{:?}", ports.err());
        let ports = ports.expect("checked above");
        let mut sim = Simulator::new(nl);
        sim.count_edges(ports.out);
        sim.run_until(50 * delay_fs * stages as u64);
        prop_assert!(
            sim.edge_count(ports.out).unwrap_or(0) > 0,
            "an odd-parity ring must oscillate"
        );
    }
}
