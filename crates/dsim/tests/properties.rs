//! Property-based tests of the logic simulator: algebraic identities of
//! the 4-value logic, counter correctness against a reference model, and
//! inertial-delay semantics.

use proptest::prelude::*;

use dsim::builders::{ripple_counter, sync_counter, GATE_DELAY_FS};
use dsim::logic::{bits_to_u64, u64_to_bits, Logic};
use dsim::netlist::{GateOp, Netlist};
use dsim::sim::Simulator;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop::sample::select(vec![Logic::Zero, Logic::One, Logic::X, Logic::Z])
}

proptest! {
    #[test]
    fn de_morgan_holds_in_kleene_logic(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn and_or_commutative_and_idempotent(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        // Idempotence holds for definite values; X/Z normalize to X.
        let aa = a.and(a);
        if a.is_unknown() {
            prop_assert_eq!(aa, Logic::X);
        } else {
            prop_assert_eq!(aa, a);
        }
    }

    #[test]
    fn double_negation_on_definite_values(a in arb_logic()) {
        if let Some(v) = a.to_bool() {
            prop_assert_eq!(a.not().not(), Logic::from_bool(v));
        } else {
            prop_assert_eq!(a.not().not(), Logic::X);
        }
    }

    #[test]
    fn xor_is_addition_mod_two_on_definite(a in any::<bool>(), b in any::<bool>()) {
        let l = Logic::from_bool(a).xor(Logic::from_bool(b));
        prop_assert_eq!(l, Logic::from_bool(a ^ b));
    }

    #[test]
    fn bit_packing_round_trip(value in 0u64..1_000_000, extra_bits in 0usize..4) {
        let n = (64 - value.leading_zeros() as usize).max(1) + extra_bits;
        let bits = u64_to_bits(value, n);
        prop_assert_eq!(bits_to_u64(&bits), Some(value));
    }

    #[test]
    fn gate_eval_matches_bool_semantics(
        op in prop::sample::select(vec![
            GateOp::And, GateOp::Nand, GateOp::Or, GateOp::Nor, GateOp::Xor, GateOp::Xnor,
        ]),
        inputs in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        let levels: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        let expect = match op {
            GateOp::And => inputs.iter().all(|&b| b),
            GateOp::Nand => !inputs.iter().all(|&b| b),
            GateOp::Or => inputs.iter().any(|&b| b),
            GateOp::Nor => !inputs.iter().any(|&b| b),
            GateOp::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateOp::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            _ => unreachable!(),
        };
        prop_assert_eq!(op.eval(&levels), Logic::from_bool(expect));
    }

    #[test]
    fn ripple_counter_matches_reference_model(
        edges in 1u64..200,
        bits in 1usize..8,
    ) {
        // The clock must be slow enough that the worst-case ripple
        // (bits · (DFF + INV) ≈ 2 ns for 8 bits) settles between edges —
        // the same constraint a real ripple counter imposes on reads.
        const CLK: u64 = 4_000_000;
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        nl.symmetric_clock(clk, CLK, CLK / 2);
        let qs = ripple_counter(&mut nl, clk, rst_n, bits, "cnt");
        let mut sim = Simulator::new(nl);
        // Rising edges at CLK/2 + k·CLK; read 2.5 ns after the last edge,
        // well past the ripple but before the next edge.
        sim.run_until(CLK / 2 + (edges - 1) * CLK + 5 * CLK / 8);
        let levels: Vec<Logic> = qs.iter().map(|&q| sim.value(q)).collect();
        let got = bits_to_u64(&levels).expect("definite");
        prop_assert_eq!(got, edges % (1 << bits), "after {} edges", edges);
    }

    #[test]
    fn sync_counter_matches_ripple_counter(edges in 1u64..100, bits in 2usize..7) {
        const CLK: u64 = 4_000_000;
        let build_and_run = |sync: bool| {
            let mut nl = Netlist::new();
            let clk = nl.signal("clk");
            let rst_n = nl.signal_with_init("rst_n", Logic::One);
            nl.symmetric_clock(clk, CLK, CLK / 2);
            let qs = if sync {
                let en = nl.signal_with_init("en", Logic::One);
                sync_counter(&mut nl, clk, rst_n, en, bits, "cnt")
            } else {
                ripple_counter(&mut nl, clk, rst_n, bits, "cnt")
            };
            let mut sim = Simulator::new(nl);
            sim.run_until(CLK / 2 + (edges - 1) * CLK + 5 * CLK / 8);
            bits_to_u64(&qs.iter().map(|&q| sim.value(q)).collect::<Vec<_>>())
                .expect("definite")
        };
        prop_assert_eq!(build_and_run(true), build_and_run(false));
    }

    #[test]
    fn glitches_narrower_than_the_gate_delay_are_swallowed(
        pulse_fs in 1u64..900,
        delay_fs in 1_000u64..10_000,
    ) {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let y = nl.signal_with_init("y", Logic::One);
        nl.gate(GateOp::Inv, &[a], y, delay_fs);
        let mut sim = Simulator::new(nl);
        sim.enable_trace();
        let t0 = 50_000;
        sim.schedule(a, Logic::One, t0).unwrap();
        sim.schedule(a, Logic::Zero, t0 + pulse_fs).unwrap();
        sim.run_until(t0 + 10 * delay_fs);
        let y_changes = sim.changes().iter().filter(|c| c.signal == y).count();
        prop_assert_eq!(y_changes, 0, "pulse {} fs vs delay {} fs", pulse_fs, delay_fs);
        prop_assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn simulation_is_deterministic(
        seedlike in 0u64..1000,
        period_a in 3_000u64..20_000,
        period_b in 3_000u64..20_000,
    ) {
        let run = || {
            let mut nl = Netlist::new();
            let a = nl.signal("a");
            let b = nl.signal("b");
            let y = nl.signal("y");
            nl.symmetric_clock(a, period_a, seedlike % period_a);
            nl.symmetric_clock(b, period_b, 0);
            nl.gate(GateOp::Xor, &[a, b], y, 500);
            let mut sim = Simulator::new(nl);
            sim.enable_trace();
            sim.run_until(500_000);
            sim.changes().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn clock_edge_count_matches_arithmetic(
        period in 2_000u64..50_000,
        start in 0u64..50_000,
        horizon in 100_000u64..2_000_000,
    ) {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, period, start);
        let mut sim = Simulator::new(nl);
        sim.count_edges(clk);
        sim.run_until(horizon);
        let expect = if horizon >= start { (horizon - start) / period + 1 } else { 0 };
        prop_assert_eq!(sim.edge_count(clk).unwrap(), expect);
    }
}

#[test]
fn edge_detector_counts_match_input_edges() {
    // Deterministic complement to the proptest suite: N input rising
    // edges produce exactly N pulses.
    let mut nl = Netlist::new();
    let a = nl.signal_with_init("a", Logic::Zero);
    let pulse = dsim::builders::edge_detector(&mut nl, a, "ed");
    let mut sim = Simulator::new(nl);
    sim.count_edges(pulse);
    let mut t = 100 * GATE_DELAY_FS;
    for _ in 0..7 {
        sim.schedule(a, Logic::One, t).unwrap();
        sim.schedule(a, Logic::Zero, t + 20 * GATE_DELAY_FS)
            .unwrap();
        t += 40 * GATE_DELAY_FS;
    }
    sim.run_until(t + 100 * GATE_DELAY_FS);
    assert_eq!(sim.edge_count(pulse).unwrap(), 7);
}
