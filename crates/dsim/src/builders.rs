//! Structural builders for common sequential blocks.
//!
//! These emit real gate/flip-flop netlists (no behavioural shortcuts), so
//! the smart unit's digitizer can be simulated at gate level and compared
//! against its behavioural model.

use crate::logic::Logic;
use crate::netlist::{GateOp, Netlist, SignalId};
use std::fmt;

/// Default gate delay used by the builders, femtoseconds (≈ one 0.35 µm
/// gate delay).
pub const GATE_DELAY_FS: u64 = 100_000;

/// Default flip-flop clock-to-Q delay, femtoseconds.
pub const DFF_DELAY_FS: u64 = 150_000;

/// A structural error detected while building a block.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The requested ring has an even number of inverting stages; such a
    /// loop has two stable states and can never oscillate (netcheck rule
    /// `NC0105`).
    EvenInversionRing {
        /// Total stage count requested.
        stages: usize,
        /// How many of those stages invert.
        inversions: usize,
    },
    /// The requested ring has fewer than three stages; a one- or
    /// two-stage loop is dominated by parasitics and is rejected, like
    /// [`tsense-core`'s `RingOscillator`](https://example.com/tsense).
    RingTooShort {
        /// Total stage count requested.
        stages: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EvenInversionRing { stages, inversions } => write!(
                f,
                "ring of {stages} stage(s) has {inversions} inversion(s): an \
                 even-inversion loop latches instead of oscillating"
            ),
            BuildError::RingTooShort { stages } => {
                write!(f, "ring needs at least 3 stages, got {stages}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// The signals of a built ring oscillator.
#[derive(Debug, Clone)]
pub struct RingPorts {
    /// The ring output (the last stage's output, which feeds stage 0).
    pub out: SignalId,
    /// Every stage output in ring order; `stages.last() == Some(&out)`.
    pub stages: Vec<SignalId>,
}

/// A free-running ring oscillator with one gate per entry in
/// `stage_ops`, each delayed by `delay_fs`.
///
/// Multi-input ops get their side input tied off so the op reduces to a
/// buffer or inverter along the loop: NAND/AND tie high, NOR/OR/XOR/XNOR
/// tie low — mirroring how the paper's NAND3/NOR2 ring cells are wired
/// (Fig. 3). The ring period is `2 × stages × delay_fs` once settled.
///
/// # Errors
///
/// * [`BuildError::RingTooShort`] for fewer than three stages;
/// * [`BuildError::EvenInversionRing`] when the inverting-stage count is
///   even (including zero) — such a loop cannot oscillate. This is the
///   structural defect netcheck reports as `NC0105`.
pub fn ring_oscillator(
    nl: &mut Netlist,
    stage_ops: &[GateOp],
    prefix: &str,
    delay_fs: u64,
) -> Result<RingPorts, BuildError> {
    let stages: Vec<(GateOp, u64)> = stage_ops.iter().map(|&op| (op, delay_fs)).collect();
    ring_oscillator_with_delays(nl, &stages, prefix)
}

/// Like [`ring_oscillator`] but with an individual inertial delay per
/// stage — the form static timing analysis needs when every stage is a
/// different cell with its own temperature-dependent delay.
///
/// # Errors
///
/// Same conditions as [`ring_oscillator`].
pub fn ring_oscillator_with_delays(
    nl: &mut Netlist,
    stage_delays: &[(GateOp, u64)],
    prefix: &str,
) -> Result<RingPorts, BuildError> {
    let stage_ops: Vec<GateOp> = stage_delays.iter().map(|&(op, _)| op).collect();
    let stage_ops = stage_ops.as_slice();
    if stage_ops.len() < 3 {
        return Err(BuildError::RingTooShort {
            stages: stage_ops.len(),
        });
    }
    let inversions = stage_ops.iter().filter(|op| op.is_inverting()).count();
    if inversions % 2 == 0 {
        return Err(BuildError::EvenInversionRing {
            stages: stage_ops.len(),
            inversions,
        });
    }

    // Every stage starts at a definite value propagated forward from
    // stage 0 = 0. With odd inversion parity the wrap-around is then
    // inconsistent by construction, which launches the oscillation wave;
    // leaving stages at X instead would let X chase the definite wave
    // around the loop forever (four-value X pessimism).
    let tie_for = |op: GateOp| match op {
        GateOp::And | GateOp::Nand => Logic::One,
        _ => Logic::Zero,
    };
    let mut init = vec![Logic::Zero; stage_ops.len()];
    for i in 1..stage_ops.len() {
        let op = stage_ops[i];
        init[i] = match op {
            GateOp::Buf | GateOp::Inv => op.eval(&[init[i - 1]]),
            _ => op.eval(&[init[i - 1], tie_for(op)]),
        };
    }
    let stages: Vec<SignalId> = init
        .iter()
        .enumerate()
        .map(|(i, &v)| nl.signal_with_init(format!("{prefix}.s{i}"), v))
        .collect();

    // Tie-off rails, created lazily only if some stage needs them.
    let mut tie_high = None;
    let mut tie_low = None;

    for (i, &(op, delay_fs)) in stage_delays.iter().enumerate() {
        let input = stages[(i + stage_ops.len() - 1) % stage_ops.len()];
        let output = stages[i];
        match op {
            GateOp::Buf | GateOp::Inv => {
                nl.gate(op, &[input], output, delay_fs);
            }
            GateOp::And | GateOp::Nand => {
                let high = *tie_high.get_or_insert_with(|| {
                    nl.signal_with_init(format!("{prefix}.vdd"), Logic::One)
                });
                nl.gate(op, &[input, high], output, delay_fs);
            }
            GateOp::Or | GateOp::Nor | GateOp::Xor | GateOp::Xnor => {
                let low = *tie_low.get_or_insert_with(|| {
                    nl.signal_with_init(format!("{prefix}.gnd"), Logic::Zero)
                });
                nl.gate(op, &[input, low], output, delay_fs);
            }
        }
    }

    Ok(RingPorts {
        out: *stages.last().expect("ring has stages"),
        stages,
    })
}

/// An asynchronous (ripple) up-counter: bit `i` toggles on the falling
/// edge of bit `i−1`; bit 0 toggles on the rising edge of `clk`.
///
/// Returns the counter bits, LSB first. `rst_n` (active low) clears all
/// bits. Gate and flip-flop delays are the builder defaults.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_counter(
    nl: &mut Netlist,
    clk: SignalId,
    rst_n: SignalId,
    bits: usize,
    prefix: &str,
) -> Vec<SignalId> {
    assert!(bits > 0, "counter needs at least one bit");
    let mut qs = Vec::with_capacity(bits);
    let mut stage_clk = clk;
    for i in 0..bits {
        let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
        let qb = nl.signal_with_init(format!("{prefix}.qb{i}"), Logic::One);
        // T-flip-flop: D = Q̄.
        nl.dff(qb, stage_clk, Some(rst_n), q, DFF_DELAY_FS);
        nl.gate(GateOp::Inv, &[q], qb, GATE_DELAY_FS);
        qs.push(q);
        // Next stage increments when this bit wraps 1 → 0, i.e. on the
        // rising edge of Q̄.
        stage_clk = qb;
    }
    qs
}

/// A synchronous up-counter with enable: all bits are clocked by `clk`;
/// bit `i` toggles when every lower bit is 1 and `enable` is high.
///
/// Returns the counter bits, LSB first.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn sync_counter(
    nl: &mut Netlist,
    clk: SignalId,
    rst_n: SignalId,
    enable: SignalId,
    bits: usize,
    prefix: &str,
) -> Vec<SignalId> {
    assert!(bits > 0, "counter needs at least one bit");
    let mut qs = Vec::with_capacity(bits);
    let mut carry = enable;
    for i in 0..bits {
        let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
        let d = nl.signal(format!("{prefix}.d{i}"));
        // D = Q XOR carry.
        nl.gate(GateOp::Xor, &[q, carry], d, GATE_DELAY_FS);
        nl.dff(d, clk, Some(rst_n), q, DFF_DELAY_FS);
        // carry' = carry AND Q.
        if i + 1 < bits {
            let c = nl.signal(format!("{prefix}.c{i}"));
            nl.gate(GateOp::And, &[carry, q], c, GATE_DELAY_FS);
            carry = c;
        }
        qs.push(q);
    }
    qs
}

/// A parallel register: `q[i]` samples `d[i]` on each rising `clk` edge.
///
/// Returns the register outputs in input order.
pub fn register(
    nl: &mut Netlist,
    d_bits: &[SignalId],
    clk: SignalId,
    rst_n: Option<SignalId>,
    prefix: &str,
) -> Vec<SignalId> {
    d_bits
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
            nl.dff(d, clk, rst_n, q, DFF_DELAY_FS);
            q
        })
        .collect()
}

/// A rising-edge detector: output pulses high for one gate delay chain
/// when `input` rises (input AND NOT delayed-input).
pub fn edge_detector(nl: &mut Netlist, input: SignalId, prefix: &str) -> SignalId {
    let delayed = nl.signal(format!("{prefix}.dly"));
    let delayed_n = nl.signal(format!("{prefix}.dlyn"));
    let pulse = nl.signal(format!("{prefix}.pulse"));
    nl.gate(GateOp::Buf, &[input], delayed, 3 * GATE_DELAY_FS);
    nl.gate(GateOp::Inv, &[delayed], delayed_n, GATE_DELAY_FS);
    nl.gate(GateOp::And, &[input, delayed_n], pulse, GATE_DELAY_FS);
    pulse
}

/// A 2-to-1 multiplexer built from NAND gates: `sel = 0` routes `a`,
/// `sel = 1` routes `b`.
pub fn mux2(nl: &mut Netlist, a: SignalId, b: SignalId, sel: SignalId, prefix: &str) -> SignalId {
    let sel_n = nl.signal(format!("{prefix}.seln"));
    let t0 = nl.signal(format!("{prefix}.t0"));
    let t1 = nl.signal(format!("{prefix}.t1"));
    let y = nl.signal(format!("{prefix}.y"));
    nl.gate(GateOp::Inv, &[sel], sel_n, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[a, sel_n], t0, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[b, sel], t1, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[t0, t1], y, GATE_DELAY_FS);
    y
}

/// An N-to-1 one-hot multiplexer tree built from [`mux2`] stages; `sels`
/// are binary select lines, LSB first.
///
/// # Panics
///
/// Panics unless `inputs.len() == 2^sels.len()` and inputs are non-empty.
pub fn mux_tree(
    nl: &mut Netlist,
    inputs: &[SignalId],
    sels: &[SignalId],
    prefix: &str,
) -> SignalId {
    assert!(!inputs.is_empty(), "mux needs inputs");
    assert_eq!(inputs.len(), 1 << sels.len(), "need 2^sels inputs");
    if sels.is_empty() {
        return inputs[0];
    }
    let mut layer: Vec<SignalId> = inputs.to_vec();
    for (level, &sel) in sels.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (pair, chunk) in layer.chunks(2).enumerate() {
            next.push(mux2(
                nl,
                chunk[0],
                chunk[1],
                sel,
                &format!("{prefix}.l{level}p{pair}"),
            ));
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::bits_to_u64;
    use crate::sim::Simulator;

    const CLK_PERIOD: u64 = 2_000_000; // 2 ns in fs

    fn read(sim: &Simulator, bits: &[SignalId]) -> u64 {
        bits_to_u64(&bits.iter().map(|&b| sim.value(b)).collect::<Vec<_>>())
            .expect("counter bits must be definite")
    }

    fn counter_fixture(
        build: impl Fn(&mut Netlist, SignalId, SignalId) -> Vec<SignalId>,
    ) -> (Simulator, Vec<SignalId>) {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = build(&mut nl, clk, rst_n);
        (Simulator::new(nl), qs)
    }

    #[test]
    fn ripple_counter_counts_clock_edges() {
        let (mut sim, qs) = counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 6, "cnt"));
        // 10 rising edges.
        sim.run_until(CLK_PERIOD * 10 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 10);
        sim.run_until(CLK_PERIOD * 37 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 37);
    }

    #[test]
    fn ripple_counter_wraps() {
        let (mut sim, qs) = counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 3, "cnt"));
        sim.run_until(CLK_PERIOD * 9 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 1, "9 mod 8");
    }

    #[test]
    fn sync_counter_matches_ripple() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let en = nl.signal_with_init("en", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = sync_counter(&mut nl, clk, rst_n, en, 6, "cnt");
        let mut sim = Simulator::new(nl);
        sim.run_until(CLK_PERIOD * 23 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 23);
    }

    #[test]
    fn sync_counter_enable_gates_counting() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let en = nl.signal_with_init("en", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = sync_counter(&mut nl, clk, rst_n, en, 4, "cnt");
        let mut sim = Simulator::new(nl);
        sim.run_until(CLK_PERIOD * 5 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 5);
        sim.poke(en, Logic::Zero);
        sim.run_until(CLK_PERIOD * 12);
        assert_eq!(read(&sim, &qs), 5, "frozen while disabled");
        sim.poke(en, Logic::One);
        sim.run_until(CLK_PERIOD * 15 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 8, "resumes counting");
    }

    #[test]
    fn counter_reset_clears() -> Result<(), crate::error::DsimError> {
        let (mut sim, qs) = counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 4, "cnt"));
        let rst_n = sim.netlist().require_signal("rst_n")?;
        sim.run_until(CLK_PERIOD * 6 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 6);
        sim.poke(rst_n, Logic::Zero);
        sim.run_for(CLK_PERIOD);
        assert_eq!(read(&sim, &qs), 0);
        Ok(())
    }

    #[test]
    fn register_captures_bus() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let d: Vec<SignalId> = (0..4)
            .map(|i| nl.signal_with_init(format!("d{i}"), Logic::Zero))
            .collect();
        let q = register(&mut nl, &d, clk, None, "reg");
        let mut sim = Simulator::new(nl);
        for (i, &bit) in crate::logic::u64_to_bits(0b1010, 4).iter().enumerate() {
            sim.poke(d[i], bit);
        }
        sim.run_until(CLK_PERIOD * 2);
        assert_eq!(read(&sim, &q), 0b1010);
    }

    #[test]
    fn edge_detector_pulses_once_per_edge() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let pulse = edge_detector(&mut nl, a, "ed");
        let mut sim = Simulator::new(nl);
        sim.count_edges(pulse);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::One);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::Zero);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::One);
        sim.run_for(GATE_DELAY_FS * 10);
        assert_eq!(
            sim.edge_count(pulse).unwrap(),
            2,
            "one pulse per rising edge"
        );
    }

    #[test]
    fn mux_tree_selects() {
        let mut nl = Netlist::new();
        let inputs: Vec<SignalId> = (0..4)
            .map(|i| nl.signal_with_init(format!("in{i}"), Logic::from_bool(i == 2)))
            .collect();
        let s0 = nl.signal_with_init("s0", Logic::Zero);
        let s1 = nl.signal_with_init("s1", Logic::Zero);
        let y = mux_tree(&mut nl, &inputs, &[s0, s1], "mux");
        let mut sim = Simulator::new(nl);
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::Zero, "input 0 selected");
        sim.poke(s1, Logic::One); // select index 2 (binary 10)
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::One, "input 2 selected");
        sim.poke(s0, Logic::One); // index 3
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::Zero, "input 3 selected");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_counter_rejected() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst = nl.signal("rst_n");
        let _ = ripple_counter(&mut nl, clk, rst, 0, "cnt");
    }

    #[test]
    fn odd_inverter_ring_oscillates() {
        let mut nl = Netlist::new();
        let ports = ring_oscillator(&mut nl, &[GateOp::Inv; 5], "ring", GATE_DELAY_FS)
            .expect("odd ring is valid");
        let mut sim = Simulator::new(nl);
        sim.count_edges(ports.out);
        // Period = 2 * 5 * delay; run 20 periods and expect ~20 edges.
        sim.run_for(2 * 5 * GATE_DELAY_FS * 20);
        let edges = sim.edge_count(ports.out).unwrap();
        assert!(
            (18..=22).contains(&edges),
            "expected ~20 rising edges, got {edges}"
        );
    }

    #[test]
    fn mixed_cell_ring_oscillates() {
        // Paper Fig. 3 flavour: 3×INV + 2×NAND (side inputs tied high).
        let mut nl = Netlist::new();
        let ops = [
            GateOp::Inv,
            GateOp::Nand,
            GateOp::Inv,
            GateOp::Nand,
            GateOp::Inv,
        ];
        let ports =
            ring_oscillator(&mut nl, &ops, "ring", GATE_DELAY_FS).expect("5 inversions is odd");
        let mut sim = Simulator::new(nl);
        sim.count_edges(ports.out);
        sim.run_for(2 * 5 * GATE_DELAY_FS * 10);
        assert!(
            sim.edge_count(ports.out).unwrap() >= 8,
            "mixed ring must oscillate"
        );
    }

    #[test]
    fn even_inversion_ring_rejected() {
        let mut nl = Netlist::new();
        let err = ring_oscillator(&mut nl, &[GateOp::Inv; 4], "ring", GATE_DELAY_FS)
            .expect_err("even ring must be rejected");
        assert_eq!(
            err,
            BuildError::EvenInversionRing {
                stages: 4,
                inversions: 4
            }
        );
        // A buffer among inverters flipping parity to even is also caught.
        let ops = [
            GateOp::Inv,
            GateOp::Buf,
            GateOp::Inv,
            GateOp::Nand,
            GateOp::Nor,
        ];
        let err = ring_oscillator(&mut nl, &ops, "ring2", GATE_DELAY_FS)
            .expect_err("4 inversions in 5 stages is even");
        assert_eq!(
            err,
            BuildError::EvenInversionRing {
                stages: 5,
                inversions: 4
            }
        );
    }

    #[test]
    fn short_ring_rejected() {
        let mut nl = Netlist::new();
        let err = ring_oscillator(&mut nl, &[GateOp::Inv; 2], "ring", GATE_DELAY_FS)
            .expect_err("2-stage ring must be rejected");
        assert_eq!(err, BuildError::RingTooShort { stages: 2 });
        assert!(err.to_string().contains("at least 3"));
    }
}
