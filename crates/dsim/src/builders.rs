//! Structural builders for common sequential blocks.
//!
//! These emit real gate/flip-flop netlists (no behavioural shortcuts), so
//! the smart unit's digitizer can be simulated at gate level and compared
//! against its behavioural model.

use crate::logic::Logic;
use crate::netlist::{GateOp, Netlist, SignalId};

/// Default gate delay used by the builders, femtoseconds (≈ one 0.35 µm
/// gate delay).
pub const GATE_DELAY_FS: u64 = 100_000;

/// Default flip-flop clock-to-Q delay, femtoseconds.
pub const DFF_DELAY_FS: u64 = 150_000;

/// An asynchronous (ripple) up-counter: bit `i` toggles on the falling
/// edge of bit `i−1`; bit 0 toggles on the rising edge of `clk`.
///
/// Returns the counter bits, LSB first. `rst_n` (active low) clears all
/// bits. Gate and flip-flop delays are the builder defaults.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_counter(
    nl: &mut Netlist,
    clk: SignalId,
    rst_n: SignalId,
    bits: usize,
    prefix: &str,
) -> Vec<SignalId> {
    assert!(bits > 0, "counter needs at least one bit");
    let mut qs = Vec::with_capacity(bits);
    let mut stage_clk = clk;
    for i in 0..bits {
        let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
        let qb = nl.signal_with_init(format!("{prefix}.qb{i}"), Logic::One);
        // T-flip-flop: D = Q̄.
        nl.dff(qb, stage_clk, Some(rst_n), q, DFF_DELAY_FS);
        nl.gate(GateOp::Inv, &[q], qb, GATE_DELAY_FS);
        qs.push(q);
        // Next stage increments when this bit wraps 1 → 0, i.e. on the
        // rising edge of Q̄.
        stage_clk = qb;
    }
    qs
}

/// A synchronous up-counter with enable: all bits are clocked by `clk`;
/// bit `i` toggles when every lower bit is 1 and `enable` is high.
///
/// Returns the counter bits, LSB first.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn sync_counter(
    nl: &mut Netlist,
    clk: SignalId,
    rst_n: SignalId,
    enable: SignalId,
    bits: usize,
    prefix: &str,
) -> Vec<SignalId> {
    assert!(bits > 0, "counter needs at least one bit");
    let mut qs = Vec::with_capacity(bits);
    let mut carry = enable;
    for i in 0..bits {
        let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
        let d = nl.signal(format!("{prefix}.d{i}"));
        // D = Q XOR carry.
        nl.gate(GateOp::Xor, &[q, carry], d, GATE_DELAY_FS);
        nl.dff(d, clk, Some(rst_n), q, DFF_DELAY_FS);
        // carry' = carry AND Q.
        if i + 1 < bits {
            let c = nl.signal(format!("{prefix}.c{i}"));
            nl.gate(GateOp::And, &[carry, q], c, GATE_DELAY_FS);
            carry = c;
        }
        qs.push(q);
    }
    qs
}

/// A parallel register: `q[i]` samples `d[i]` on each rising `clk` edge.
///
/// Returns the register outputs in input order.
pub fn register(
    nl: &mut Netlist,
    d_bits: &[SignalId],
    clk: SignalId,
    rst_n: Option<SignalId>,
    prefix: &str,
) -> Vec<SignalId> {
    d_bits
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let q = nl.signal_with_init(format!("{prefix}.q{i}"), Logic::Zero);
            nl.dff(d, clk, rst_n, q, DFF_DELAY_FS);
            q
        })
        .collect()
}

/// A rising-edge detector: output pulses high for one gate delay chain
/// when `input` rises (input AND NOT delayed-input).
pub fn edge_detector(nl: &mut Netlist, input: SignalId, prefix: &str) -> SignalId {
    let delayed = nl.signal(format!("{prefix}.dly"));
    let delayed_n = nl.signal(format!("{prefix}.dlyn"));
    let pulse = nl.signal(format!("{prefix}.pulse"));
    nl.gate(GateOp::Buf, &[input], delayed, 3 * GATE_DELAY_FS);
    nl.gate(GateOp::Inv, &[delayed], delayed_n, GATE_DELAY_FS);
    nl.gate(GateOp::And, &[input, delayed_n], pulse, GATE_DELAY_FS);
    pulse
}

/// A 2-to-1 multiplexer built from NAND gates: `sel = 0` routes `a`,
/// `sel = 1` routes `b`.
pub fn mux2(nl: &mut Netlist, a: SignalId, b: SignalId, sel: SignalId, prefix: &str) -> SignalId {
    let sel_n = nl.signal(format!("{prefix}.seln"));
    let t0 = nl.signal(format!("{prefix}.t0"));
    let t1 = nl.signal(format!("{prefix}.t1"));
    let y = nl.signal(format!("{prefix}.y"));
    nl.gate(GateOp::Inv, &[sel], sel_n, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[a, sel_n], t0, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[b, sel], t1, GATE_DELAY_FS);
    nl.gate(GateOp::Nand, &[t0, t1], y, GATE_DELAY_FS);
    y
}

/// An N-to-1 one-hot multiplexer tree built from [`mux2`] stages; `sels`
/// are binary select lines, LSB first.
///
/// # Panics
///
/// Panics unless `inputs.len() == 2^sels.len()` and inputs are non-empty.
pub fn mux_tree(
    nl: &mut Netlist,
    inputs: &[SignalId],
    sels: &[SignalId],
    prefix: &str,
) -> SignalId {
    assert!(!inputs.is_empty(), "mux needs inputs");
    assert_eq!(inputs.len(), 1 << sels.len(), "need 2^sels inputs");
    if sels.is_empty() {
        return inputs[0];
    }
    let mut layer: Vec<SignalId> = inputs.to_vec();
    for (level, &sel) in sels.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (pair, chunk) in layer.chunks(2).enumerate() {
            next.push(mux2(nl, chunk[0], chunk[1], sel, &format!("{prefix}.l{level}p{pair}")));
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::bits_to_u64;
    use crate::sim::Simulator;

    const CLK_PERIOD: u64 = 2_000_000; // 2 ns in fs

    fn read(sim: &Simulator, bits: &[SignalId]) -> u64 {
        bits_to_u64(&bits.iter().map(|&b| sim.value(b)).collect::<Vec<_>>())
            .expect("counter bits must be definite")
    }

    fn counter_fixture(
        build: impl Fn(&mut Netlist, SignalId, SignalId) -> Vec<SignalId>,
    ) -> (Simulator, Vec<SignalId>) {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = build(&mut nl, clk, rst_n);
        (Simulator::new(nl), qs)
    }

    #[test]
    fn ripple_counter_counts_clock_edges() {
        let (mut sim, qs) =
            counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 6, "cnt"));
        // 10 rising edges.
        sim.run_until(CLK_PERIOD * 10 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 10);
        sim.run_until(CLK_PERIOD * 37 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 37);
    }

    #[test]
    fn ripple_counter_wraps() {
        let (mut sim, qs) =
            counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 3, "cnt"));
        sim.run_until(CLK_PERIOD * 9 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 1, "9 mod 8");
    }

    #[test]
    fn sync_counter_matches_ripple() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let en = nl.signal_with_init("en", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = sync_counter(&mut nl, clk, rst_n, en, 6, "cnt");
        let mut sim = Simulator::new(nl);
        sim.run_until(CLK_PERIOD * 23 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 23);
    }

    #[test]
    fn sync_counter_enable_gates_counting() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let en = nl.signal_with_init("en", Logic::One);
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let qs = sync_counter(&mut nl, clk, rst_n, en, 4, "cnt");
        let mut sim = Simulator::new(nl);
        sim.run_until(CLK_PERIOD * 5 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 5);
        sim.poke(en, Logic::Zero);
        sim.run_until(CLK_PERIOD * 12);
        assert_eq!(read(&sim, &qs), 5, "frozen while disabled");
        sim.poke(en, Logic::One);
        sim.run_until(CLK_PERIOD * 15 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 8, "resumes counting");
    }

    #[test]
    fn counter_reset_clears() {
        let (mut sim, qs) =
            counter_fixture(|nl, clk, rst| ripple_counter(nl, clk, rst, 4, "cnt"));
        let rst_n = sim.netlist().find_signal("rst_n").unwrap();
        sim.run_until(CLK_PERIOD * 6 + CLK_PERIOD / 4);
        assert_eq!(read(&sim, &qs), 6);
        sim.poke(rst_n, Logic::Zero);
        sim.run_for(CLK_PERIOD);
        assert_eq!(read(&sim, &qs), 0);
    }

    #[test]
    fn register_captures_bus() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, CLK_PERIOD, CLK_PERIOD / 2);
        let d: Vec<SignalId> =
            (0..4).map(|i| nl.signal_with_init(format!("d{i}"), Logic::Zero)).collect();
        let q = register(&mut nl, &d, clk, None, "reg");
        let mut sim = Simulator::new(nl);
        for (i, &bit) in crate::logic::u64_to_bits(0b1010, 4).iter().enumerate() {
            sim.poke(d[i], bit);
        }
        sim.run_until(CLK_PERIOD * 2);
        assert_eq!(read(&sim, &q), 0b1010);
    }

    #[test]
    fn edge_detector_pulses_once_per_edge() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let pulse = edge_detector(&mut nl, a, "ed");
        let mut sim = Simulator::new(nl);
        sim.count_edges(pulse);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::One);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::Zero);
        sim.run_for(GATE_DELAY_FS * 10);
        sim.poke(a, Logic::One);
        sim.run_for(GATE_DELAY_FS * 10);
        assert_eq!(sim.edge_count(pulse), 2, "one pulse per rising edge");
    }

    #[test]
    fn mux_tree_selects() {
        let mut nl = Netlist::new();
        let inputs: Vec<SignalId> = (0..4)
            .map(|i| {
                nl.signal_with_init(format!("in{i}"), Logic::from_bool(i == 2))
            })
            .collect();
        let s0 = nl.signal_with_init("s0", Logic::Zero);
        let s1 = nl.signal_with_init("s1", Logic::Zero);
        let y = mux_tree(&mut nl, &inputs, &[s0, s1], "mux");
        let mut sim = Simulator::new(nl);
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::Zero, "input 0 selected");
        sim.poke(s1, Logic::One); // select index 2 (binary 10)
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::One, "input 2 selected");
        sim.poke(s0, Logic::One); // index 3
        sim.run_for(GATE_DELAY_FS * 20);
        assert_eq!(sim.value(y), Logic::Zero, "input 3 selected");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_counter_rejected() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        let rst = nl.signal("rst_n");
        let _ = ripple_counter(&mut nl, clk, rst, 0, "cnt");
    }
}
