//! # dsim — an event-driven four-value gate-level logic simulator
//!
//! The digital substrate of the smart-sensor reproduction: the paper's
//! "digital processing bloc" (Section 3) is simulated at gate level with
//! this crate. It provides:
//!
//! * [`logic`] — 0/1/X/Z algebra;
//! * [`netlist`] — signals, combinational primitives with **inertial**
//!   delays, rising-edge D flip-flops with async reset, and free-running
//!   clock sources (femtosecond resolution);
//! * [`sim`] — the single-queue event kernel with pre-edge sampling (no
//!   flip-flop races) and rising-edge counters;
//! * [`builders`] — structural counters, registers, edge detectors and
//!   mux trees;
//! * [`vcd`] — IEEE 1364 VCD export.
//!
//! ```
//! use dsim::logic::Logic;
//! use dsim::netlist::{GateOp, Netlist};
//! use dsim::sim::Simulator;
//!
//! let mut nl = Netlist::new();
//! let a = nl.signal_with_init("a", Logic::Zero);
//! let y = nl.signal("y");
//! nl.gate(GateOp::Inv, &[a], y, 100);
//! let mut sim = Simulator::new(nl);
//! sim.run_for(1_000);
//! assert_eq!(sim.value(y), Logic::One);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod error;
pub mod logic;
pub mod netlist;
pub mod sim;
pub mod vcd;

pub use builders::{ring_oscillator, ring_oscillator_with_delays, BuildError, RingPorts};
pub use error::DsimError;
pub use logic::Logic;
pub use netlist::{Component, GateOp, Netlist, SignalId};
pub use sim::{Change, Simulator};
