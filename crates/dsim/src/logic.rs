//! Four-valued logic: `0`, `1`, `X` (unknown), `Z` (high-impedance).

use std::fmt;

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        Logic::not(self)
    }
}

impl Logic {
    /// Logical negation. `X`/`Z` stay unknown. Also available through
    /// the `!` operator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X | Logic::Z => Logic::X,
        }
    }

    /// Logical AND with dominance: `0 AND anything = 0`.
    pub fn and(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR with dominance: `1 OR anything = 1`.
    pub fn or(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR; unknown if either side is unknown.
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }

    /// `true` only for a definite `1`.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Logic::One
    }

    /// `true` only for a definite `0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Logic::Zero
    }

    /// `true` for `X` or `Z`.
    #[inline]
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Converts a bool.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Converts to a bool if definite.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            _ => None,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        };
        write!(f, "{c}")
    }
}

/// Packs a slice of logic levels (LSB first) into an integer; `None` if
/// any bit is unknown.
pub fn bits_to_u64(bits: &[Logic]) -> Option<u64> {
    let mut value = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        match b {
            Logic::One => value |= 1 << i,
            Logic::Zero => {}
            _ => return None,
        }
    }
    Some(value)
}

/// Unpacks an integer into `n` logic levels, LSB first.
pub fn u64_to_bits(value: u64, n: usize) -> Vec<Logic> {
    (0..n)
        .map(|i| Logic::from_bool((value >> i) & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_truth_table() {
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert_eq!(Logic::One.not(), Logic::Zero);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Z.not(), Logic::X);
    }

    #[test]
    fn and_dominance() {
        assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero);
        assert_eq!(Logic::X.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
        assert_eq!(Logic::Z.and(Logic::One), Logic::X);
    }

    #[test]
    fn or_dominance() {
        assert_eq!(Logic::One.or(Logic::X), Logic::One);
        assert_eq!(Logic::X.or(Logic::One), Logic::One);
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::Z), Logic::X);
    }

    #[test]
    fn xor_unknowns_propagate() {
        assert_eq!(Logic::Zero.xor(Logic::One), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::X.is_unknown() && Logic::Z.is_unknown());
        assert!(Logic::One.is_one() && Logic::Zero.is_zero());
    }

    #[test]
    fn bit_packing() {
        let bits = u64_to_bits(0b1011, 4);
        assert_eq!(bits, vec![Logic::One, Logic::One, Logic::Zero, Logic::One]);
        assert_eq!(bits_to_u64(&bits), Some(0b1011));
        let with_x = vec![Logic::One, Logic::X];
        assert_eq!(bits_to_u64(&with_x), None);
    }

    #[test]
    fn display() {
        assert_eq!(
            format!("{}{}{}{}", Logic::Zero, Logic::One, Logic::X, Logic::Z),
            "01xz"
        );
    }
}
