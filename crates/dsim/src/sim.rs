//! The event-driven simulation kernel.
//!
//! A single binary-heap event queue drives the netlist. Gate outputs use
//! *inertial* delay semantics: re-evaluating a gate supersedes its
//! pending output event, so glitches narrower than the gate delay are
//! swallowed — matching real cells. Testbench stimuli use *transport*
//! semantics (never cancelled), so pre-scheduled input sequences play
//! back verbatim.
//!
//! Flip-flops sample their `D` input as it was *immediately before* the
//! clock edge (one-instant hold memory), so a `D` toggling in the same
//! femtosecond as the clock does not race.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::DsimError;
use crate::logic::Logic;
use crate::netlist::{Component, Netlist, SignalId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    signal: SignalId,
    value: Logic,
    inertial: bool,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One recorded value change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Change {
    /// Simulation time of the change, femtoseconds.
    pub time_fs: u64,
    /// The signal that changed.
    pub signal: SignalId,
    /// Its new level.
    pub value: Logic,
}

/// The simulator state for one netlist.
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    fanout: Vec<Vec<usize>>,
    values: Vec<Logic>,
    /// Per-signal (previous value, time of last change) for pre-edge
    /// sampling.
    history: Vec<(Logic, u64)>,
    /// Latest inertial event sequence number per signal (lazy
    /// cancellation).
    latest_inertial: Vec<u64>,
    /// Per-signal override (Verilog `force` semantics): while set, the
    /// signal is pinned and driver events on it are discarded.
    forced: Vec<Option<Logic>>,
    queue: BinaryHeap<Reverse<Event>>,
    time_fs: u64,
    seq: u64,
    trace_enabled: bool,
    changes: Vec<Change>,
    /// Rising-edge counters for registered signals.
    edge_counters: Vec<Option<u64>>,
    events_processed: u64,
}

impl Simulator {
    /// Creates a simulator, applying signal initial values and arming
    /// clock sources.
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.signal_count();
        let fanout = netlist.fanout_table();
        let values: Vec<Logic> = (0..n).map(|i| netlist.initial(SignalId(i))).collect();
        let mut sim = Simulator {
            fanout,
            values,
            history: vec![(Logic::X, 0); n],
            latest_inertial: vec![0; n],
            forced: vec![None; n],
            queue: BinaryHeap::new(),
            time_fs: 0,
            seq: 0,
            trace_enabled: false,
            changes: Vec::new(),
            edge_counters: vec![None; n],
            events_processed: 0,
            netlist,
        };
        // Arm clocks: output is forced low at t = 0, first rising edge at
        // `start_fs`.
        let clocks: Vec<(SignalId, u64)> = sim
            .netlist
            .components()
            .iter()
            .filter_map(|c| match c {
                Component::Clock {
                    output, start_fs, ..
                } => Some((*output, *start_fs)),
                _ => None,
            })
            .collect();
        for (output, start) in clocks {
            sim.values[output.index()] = Logic::Zero;
            sim.push_event(start, output, Logic::One, false);
        }
        // Initial settlement: evaluate every combinational gate and
        // (level-sensitive) latch against the declared initial levels so
        // outputs become consistent (and deliberately *inconsistent*
        // initial rings self-start).
        for ci in 0..sim.netlist.components().len() {
            if matches!(
                sim.netlist.components()[ci],
                Component::Gate { .. } | Component::Latch { .. }
            ) {
                sim.eval_component(ci, SignalId(usize::MAX));
            }
        }
        sim
    }

    /// Creates a simulator after an opt-in preflight check.
    ///
    /// `preflight` inspects the netlist before any simulator state is
    /// built; returning `Err` aborts construction and hands the error
    /// back verbatim. Lint frontends (e.g. the `netcheck` crate) supply
    /// the callback so `dsim` stays free of analysis dependencies.
    ///
    /// # Errors
    ///
    /// Propagates whatever error `preflight` reports.
    pub fn new_checked<E>(
        netlist: Netlist,
        preflight: impl FnOnce(&Netlist) -> Result<(), E>,
    ) -> Result<Self, E> {
        preflight(&netlist)?;
        Ok(Simulator::new(netlist))
    }

    /// Creates a simulator after structural validation
    /// ([`Netlist::validate`]): floating component inputs and
    /// multiply-driven nets are rejected up front with a typed error
    /// instead of misbehaving (stuck-at-`X`, interleaved drivers) deep
    /// into the run.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::FloatingInput`]
    /// or [`DsimError::DuplicateDriver`].
    pub fn try_new(netlist: Netlist) -> Result<Self, crate::error::DsimError> {
        netlist.validate()?;
        Ok(Simulator::new(netlist))
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current simulation time, femtoseconds.
    #[inline]
    pub fn time_fs(&self) -> u64 {
        self.time_fs
    }

    /// Total events processed so far (performance counter).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current level of a signal.
    #[inline]
    pub fn value(&self, signal: SignalId) -> Logic {
        self.values[signal.index()]
    }

    /// Enables change tracing (needed by [`Simulator::changes`] and the
    /// VCD dumper).
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// `true` when change tracing is enabled.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.trace_enabled
    }

    /// The recorded changes (empty unless tracing is enabled).
    #[inline]
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Starts counting rising edges on `signal`.
    pub fn count_edges(&mut self, signal: SignalId) {
        self.edge_counters[signal.index()].get_or_insert(0);
    }

    /// Rising edges seen on `signal` since counting started.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::EdgeCountingDisabled`] if
    /// [`Simulator::count_edges`] was never called for it.
    pub fn edge_count(&self, signal: SignalId) -> Result<u64, DsimError> {
        self.edge_counters[signal.index()].ok_or_else(|| DsimError::EdgeCountingDisabled {
            signal,
            name: self.netlist.signal_name(signal).to_string(),
        })
    }

    /// Resets the rising-edge counter of `signal` to zero.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::EdgeCountingDisabled`] if counting was never
    /// enabled for it.
    pub fn reset_edge_count(&mut self, signal: SignalId) -> Result<(), DsimError> {
        match &mut self.edge_counters[signal.index()] {
            Some(c) => {
                *c = 0;
                Ok(())
            }
            None => Err(DsimError::EdgeCountingDisabled {
                signal,
                name: self.netlist.signal_name(signal).to_string(),
            }),
        }
    }

    fn push_event(&mut self, time: u64, signal: SignalId, value: Logic, inertial: bool) {
        self.seq += 1;
        if inertial {
            self.latest_inertial[signal.index()] = self.seq;
        }
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            signal,
            value,
            inertial,
        }));
    }

    /// Schedules a testbench stimulus (transport semantics) at an
    /// absolute time.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::SchedulePast`] if `at_fs` is earlier than
    /// the current simulation time.
    pub fn schedule(
        &mut self,
        signal: SignalId,
        value: Logic,
        at_fs: u64,
    ) -> Result<(), DsimError> {
        if at_fs < self.time_fs {
            return Err(DsimError::SchedulePast {
                at_fs,
                now_fs: self.time_fs,
            });
        }
        self.push_event(at_fs, signal, value, false);
        Ok(())
    }

    /// Drives a signal at the current time (takes effect when the
    /// simulation next advances).
    pub fn poke(&mut self, signal: SignalId, value: Logic) {
        self.push_event(self.time_fs, signal, value, false);
    }

    /// Pins `signal` to `value` (Verilog `force` semantics): the level
    /// is applied when the simulation next advances and every later
    /// driver event on the signal is discarded until
    /// [`Simulator::release`]. This is the stuck-at fault-injection
    /// primitive.
    pub fn force(&mut self, signal: SignalId, value: Logic) {
        self.forced[signal.index()] = Some(value);
        self.push_event(self.time_fs, signal, value, false);
    }

    /// Removes a [`Simulator::force`] override and re-evaluates the
    /// signal's driving gates so the circuit value reasserts itself.
    pub fn release(&mut self, signal: SignalId) {
        if self.forced[signal.index()].take().is_none() {
            return;
        }
        for ci in 0..self.netlist.components().len() {
            let drives = match &self.netlist.components()[ci] {
                Component::Gate { output, .. } => *output == signal,
                Component::Dff { q, .. } | Component::Latch { q, .. } => *q == signal,
                Component::Clock { .. } => false,
            };
            if drives {
                self.eval_component(ci, SignalId(usize::MAX));
            }
        }
    }

    /// The active [`Simulator::force`] override on `signal`, if any.
    #[inline]
    pub fn forced_value(&self, signal: SignalId) -> Option<Logic> {
        self.forced[signal.index()]
    }

    /// The value a flip-flop samples on an edge at the current instant:
    /// the signal's value just *before* this femtosecond.
    fn sampled(&self, signal: SignalId) -> Logic {
        let (prev, changed_at) = self.history[signal.index()];
        if changed_at == self.time_fs {
            prev
        } else {
            self.values[signal.index()]
        }
    }

    fn eval_component(&mut self, ci: usize, edge_signal: SignalId) {
        // Cloning the component is cheap (small vectors) and avoids
        // aliasing the netlist during mutation.
        let comp = self.netlist.components()[ci].clone();
        match comp {
            Component::Gate {
                op,
                inputs,
                output,
                delay_fs,
            } => {
                let levels: Vec<Logic> = inputs.iter().map(|s| self.values[s.index()]).collect();
                let new = op.eval(&levels);
                self.push_event(self.time_fs + delay_fs, output, new, true);
            }
            Component::Dff {
                d,
                clk,
                rst_n,
                q,
                delay_fs,
            } => {
                // Async reset dominates.
                if let Some(r) = rst_n {
                    if self.values[r.index()].is_zero() {
                        self.push_event(self.time_fs + delay_fs, q, Logic::Zero, true);
                        return;
                    }
                }
                // Clock edge: previous value Zero, new value One, and the
                // triggering signal is the clock.
                if edge_signal == clk
                    && self.values[clk.index()].is_one()
                    && self.sampled(clk).is_zero()
                {
                    let sampled_d = self.sampled(d);
                    self.push_event(self.time_fs + delay_fs, q, sampled_d, true);
                }
            }
            Component::Latch {
                d,
                en,
                rst_n,
                q,
                delay_fs,
            } => {
                if let Some(r) = rst_n {
                    if self.values[r.index()].is_zero() {
                        self.push_event(self.time_fs + delay_fs, q, Logic::Zero, true);
                        return;
                    }
                }
                // Transparent while enable is high: q follows d.
                if self.values[en.index()].is_one() {
                    let dv = self.values[d.index()];
                    self.push_event(self.time_fs + delay_fs, q, dv, true);
                }
                // Enable low: opaque — q holds, no event.
            }
            Component::Clock { .. } => {}
        }
    }

    fn apply_event(&mut self, ev: Event) {
        self.events_processed += 1;
        let idx = ev.signal.index();
        // A forced signal ignores every driver that disagrees with the
        // pinned level (the force event itself carries that level).
        if let Some(pinned) = self.forced[idx] {
            if ev.value != pinned {
                return;
            }
        }
        let old = self.values[idx];
        if old == ev.value {
            return;
        }
        self.history[idx] = (old, ev.time);
        self.values[idx] = ev.value;
        if ev.value.is_one() && old.is_zero() {
            if let Some(c) = &mut self.edge_counters[idx] {
                *c += 1;
            }
        }
        if self.trace_enabled {
            self.changes.push(Change {
                time_fs: ev.time,
                signal: ev.signal,
                value: ev.value,
            });
        }
        // Clock self-perpetuation.
        for comp in self.netlist.components() {
            if let Component::Clock {
                output,
                low_fs,
                high_fs,
                ..
            } = comp
            {
                if *output == ev.signal {
                    let (next_delay, next_value) = if ev.value.is_one() {
                        (*high_fs, Logic::Zero)
                    } else {
                        (*low_fs, Logic::One)
                    };
                    let t = ev.time + next_delay;
                    let sig = *output;
                    self.seq += 1;
                    self.queue.push(Reverse(Event {
                        time: t,
                        seq: self.seq,
                        signal: sig,
                        value: next_value,
                        inertial: false,
                    }));
                }
            }
        }
        // Propagate to readers.
        let readers = self.fanout[idx].clone();
        for ci in readers {
            self.eval_component(ci, ev.signal);
        }
    }

    /// Runs until the event queue is exhausted or `t_end_fs` is reached;
    /// the simulation clock ends at exactly `t_end_fs`.
    ///
    /// # Panics
    ///
    /// Panics if `t_end_fs` is in the past.
    pub fn run_until(&mut self, t_end_fs: u64) {
        // An effectively unlimited budget cannot exhaust.
        let _ = self.run_until_budget(t_end_fs, u64::MAX);
    }

    /// Runs like [`Simulator::run_until`] but under a watchdog budget:
    /// at most `max_events` events are applied before the run aborts.
    /// Returns the number of events processed on success.
    ///
    /// This is the fault-campaign containment primitive — a faulted
    /// circuit that oscillates pathologically (or was forced into
    /// runaway feedback) terminates deterministically instead of
    /// grinding to the target time.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::EventBudgetExhausted`] when `max_events`
    /// events were applied with queue activity still pending at or
    /// before `t_end_fs`. Simulation state remains valid and inspectable
    /// at the abort time.
    ///
    /// # Panics
    ///
    /// Panics if `t_end_fs` is in the past.
    pub fn run_until_budget(&mut self, t_end_fs: u64, max_events: u64) -> Result<u64, DsimError> {
        assert!(t_end_fs >= self.time_fs, "cannot run backwards");
        let start = self.events_processed;
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.time > t_end_fs {
                break;
            }
            if self.events_processed - start >= max_events {
                return Err(DsimError::EventBudgetExhausted {
                    budget: max_events,
                    at_fs: self.time_fs,
                });
            }
            self.queue.pop();
            // Lazy inertial cancellation: only the newest scheduled value
            // for a signal survives.
            if ev.inertial && self.latest_inertial[ev.signal.index()] != ev.seq {
                continue;
            }
            self.time_fs = ev.time;
            self.apply_event(ev);
        }
        self.time_fs = t_end_fs;
        Ok(self.events_processed - start)
    }

    /// Runs for a further `delta_fs` femtoseconds.
    pub fn run_for(&mut self, delta_fs: u64) {
        self.run_until(self.time_fs + delta_fs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateOp;

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let b = nl.signal("b");
        let c = nl.signal("c");
        nl.gate(GateOp::Inv, &[a], b, 100);
        nl.gate(GateOp::Inv, &[b], c, 100);
        let mut sim = Simulator::new(nl);
        // Initial settlement: b = Inv(0) = 1 after 100 fs, c after 200 fs.
        sim.run_for(1_000);
        assert_eq!(sim.value(b), Logic::One);
        assert_eq!(sim.value(c), Logic::Zero);
        sim.poke(a, Logic::One);
        sim.run_for(50);
        assert_eq!(sim.value(b), Logic::One, "not yet propagated");
        sim.run_for(100);
        assert_eq!(sim.value(b), Logic::Zero, "inverted after 100 fs");
        sim.run_for(100);
        assert_eq!(sim.value(c), Logic::One, "double-inverted after 200 fs");
    }

    #[test]
    fn inertial_delay_swallows_glitches() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let y = nl.signal_with_init("y", Logic::One);
        nl.gate(GateOp::Inv, &[a], y, 1_000);
        let mut sim = Simulator::new(nl);
        sim.enable_trace();
        // 200 fs pulse, much narrower than the 1000 fs gate delay.
        sim.schedule(a, Logic::One, 10_000).unwrap();
        sim.schedule(a, Logic::Zero, 10_200).unwrap();
        sim.run_until(20_000);
        assert_eq!(sim.value(y), Logic::One, "glitch swallowed");
        let y_changes: Vec<_> = sim.changes().iter().filter(|c| c.signal == y).collect();
        assert!(
            y_changes.is_empty(),
            "no output activity at all: {y_changes:?}"
        );
    }

    #[test]
    fn transport_stimuli_are_not_cancelled() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let mut sim = Simulator::new(nl);
        sim.enable_trace();
        sim.schedule(a, Logic::One, 100).unwrap();
        sim.schedule(a, Logic::Zero, 200).unwrap();
        sim.schedule(a, Logic::One, 300).unwrap();
        sim.run_until(1_000);
        let toggles = sim.changes().iter().filter(|c| c.signal == a).count();
        assert_eq!(toggles, 3, "every scheduled stimulus fires");
    }

    #[test]
    fn clock_generates_a_square_wave() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, 10_000, 5_000);
        let mut sim = Simulator::new(nl);
        sim.count_edges(clk);
        sim.run_until(105_000);
        // Rising edges at 5, 15, 25, …, 105 ps → 11 edges.
        assert_eq!(sim.edge_count(clk).unwrap(), 11);
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut nl = Netlist::new();
        let d = nl.signal_with_init("d", Logic::Zero);
        let clk = nl.signal("clk");
        let q = nl.signal("q");
        nl.symmetric_clock(clk, 10_000, 5_000);
        nl.dff(d, clk, None, q, 100);
        let mut sim = Simulator::new(nl);
        sim.run_until(4_000);
        assert_eq!(sim.value(q), Logic::X, "no edge yet");
        sim.poke(d, Logic::One);
        sim.run_until(5_200); // edge at 5 ps + 100 fs clk→q
        assert_eq!(sim.value(q), Logic::One, "sampled the new d");
        sim.poke(d, Logic::Zero);
        sim.run_until(9_000);
        assert_eq!(sim.value(q), Logic::One, "holds between edges");
        sim.run_until(15_200);
        assert_eq!(sim.value(q), Logic::Zero, "next edge samples the low d");
    }

    #[test]
    fn dff_pre_edge_sampling_avoids_race() {
        // d toggles in the same femtosecond as the clock edge: the DFF
        // must capture the OLD d.
        let mut nl = Netlist::new();
        let d = nl.signal_with_init("d", Logic::Zero);
        let clk = nl.signal_with_init("clk", Logic::Zero);
        let q = nl.signal("q");
        nl.dff(d, clk, None, q, 100);
        let mut sim = Simulator::new(nl);
        sim.schedule(d, Logic::One, 1_000).unwrap();
        sim.schedule(clk, Logic::One, 1_000).unwrap();
        sim.run_until(2_000);
        assert_eq!(sim.value(q), Logic::Zero, "old d sampled");
        // Next edge sees the settled d = 1.
        sim.schedule(clk, Logic::Zero, 3_000).unwrap();
        sim.schedule(clk, Logic::One, 4_000).unwrap();
        sim.run_until(5_000);
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn async_reset_dominates() {
        let mut nl = Netlist::new();
        let d = nl.signal_with_init("d", Logic::One);
        let clk = nl.signal("clk");
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let q = nl.signal("q");
        nl.symmetric_clock(clk, 10_000, 5_000);
        nl.dff(d, clk, Some(rst_n), q, 100);
        let mut sim = Simulator::new(nl);
        sim.run_until(6_000);
        assert_eq!(sim.value(q), Logic::One);
        sim.poke(rst_n, Logic::Zero);
        sim.run_for(200);
        assert_eq!(sim.value(q), Logic::Zero, "reset clears immediately");
        // Clock edges while in reset do not set q.
        sim.run_until(26_000);
        assert_eq!(sim.value(q), Logic::Zero);
        sim.poke(rst_n, Logic::One);
        sim.run_until(36_000);
        assert_eq!(sim.value(q), Logic::One, "resumes after release");
    }

    #[test]
    fn ring_of_inverters_oscillates() {
        // A gate-level 3-stage ring: the digital twin of the paper's
        // sensing element.
        let mut nl = Netlist::new();
        let n0 = nl.signal_with_init("n0", Logic::Zero);
        let n1 = nl.signal_with_init("n1", Logic::One);
        let n2 = nl.signal_with_init("n2", Logic::Zero);
        nl.gate(GateOp::Inv, &[n0], n1, 1_000);
        nl.gate(GateOp::Inv, &[n1], n2, 1_000);
        nl.gate(GateOp::Inv, &[n2], n0, 1_000);
        let mut sim = Simulator::new(nl);
        sim.count_edges(n0);
        // The declared initial levels are deliberately inconsistent (a
        // 3-ring has no stable assignment), so it self-starts at t = 0.
        sim.run_until(1_000_000);
        // Period = 2·N·delay = 6 ps ⇒ ~166 edges in 1 ns.
        let edges = sim.edge_count(n0).unwrap();
        assert!(edges > 150 && edges < 180, "edges {edges}");
    }

    #[test]
    fn latch_is_transparent_high_and_holds_low() {
        let mut nl = Netlist::new();
        let d = nl.signal_with_init("d", Logic::Zero);
        let en = nl.signal_with_init("en", Logic::One);
        let q = nl.signal("q");
        nl.latch(d, en, None, q, 100);
        let mut sim = Simulator::new(nl);
        sim.poke(d, Logic::One);
        sim.run_for(500);
        assert_eq!(sim.value(q), Logic::One, "transparent: q follows d");
        sim.poke(en, Logic::Zero);
        sim.run_for(500);
        sim.poke(d, Logic::Zero);
        sim.run_for(500);
        assert_eq!(sim.value(q), Logic::One, "opaque: q holds the latched 1");
        sim.poke(en, Logic::One);
        sim.run_for(500);
        assert_eq!(sim.value(q), Logic::Zero, "re-opened: q follows the new d");
    }

    #[test]
    fn latch_async_reset_dominates() {
        let mut nl = Netlist::new();
        let d = nl.signal_with_init("d", Logic::One);
        let en = nl.signal_with_init("en", Logic::One);
        let rst_n = nl.signal_with_init("rst_n", Logic::One);
        let q = nl.signal("q");
        nl.latch(d, en, Some(rst_n), q, 100);
        let mut sim = Simulator::new(nl);
        sim.poke(d, Logic::One);
        sim.run_for(500);
        assert_eq!(sim.value(q), Logic::One);
        sim.poke(rst_n, Logic::Zero);
        sim.run_for(500);
        assert_eq!(
            sim.value(q),
            Logic::Zero,
            "reset clears through transparency"
        );
    }

    #[test]
    fn determinism() {
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.signal_with_init("a", Logic::Zero);
            let b = nl.signal("b");
            let y = nl.signal("y");
            nl.symmetric_clock(a, 7_000, 0);
            nl.gate(GateOp::Inv, &[a], b, 300);
            nl.gate(GateOp::Xor, &[a, b], y, 500);
            let mut sim = Simulator::new(nl);
            sim.enable_trace();
            sim.run_until(200_000);
            sim.changes().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn past_scheduling_rejected() {
        let mut nl = Netlist::new();
        let a = nl.signal("a");
        let mut sim = Simulator::new(nl.clone());
        sim.run_until(1_000);
        let err = sim.schedule(a, Logic::One, 500).unwrap_err();
        assert_eq!(
            err,
            DsimError::SchedulePast {
                at_fs: 500,
                now_fs: 1_000
            }
        );
        assert!(err.to_string().contains("cannot schedule in the past"));
        // Scheduling at exactly the current time is still allowed.
        sim.schedule(a, Logic::One, 1_000).unwrap();
    }

    #[test]
    fn force_pins_a_ring_node_and_release_restarts_it() {
        let mut nl = Netlist::new();
        let n0 = nl.signal_with_init("n0", Logic::Zero);
        let n1 = nl.signal_with_init("n1", Logic::One);
        let n2 = nl.signal_with_init("n2", Logic::Zero);
        nl.gate(GateOp::Inv, &[n0], n1, 1_000);
        nl.gate(GateOp::Inv, &[n1], n2, 1_000);
        nl.gate(GateOp::Inv, &[n2], n0, 1_000);
        let mut sim = Simulator::new(nl);
        sim.count_edges(n0);
        sim.run_until(100_000);
        let free_edges = sim.edge_count(n0).unwrap();
        assert!(free_edges > 10, "healthy ring oscillates: {free_edges}");
        // Stuck-at-0 on n0 kills the oscillation.
        sim.force(n0, Logic::Zero);
        assert_eq!(sim.forced_value(n0), Some(Logic::Zero));
        sim.run_until(150_000);
        sim.reset_edge_count(n0).unwrap();
        sim.run_until(250_000);
        assert_eq!(sim.edge_count(n0).unwrap(), 0, "forced node cannot toggle");
        assert_eq!(sim.value(n0), Logic::Zero);
        // Release: the driving inverter re-evaluates and the ring restarts.
        sim.release(n0);
        assert_eq!(sim.forced_value(n0), None);
        sim.run_until(350_000);
        assert!(
            sim.edge_count(n0).unwrap() > 10,
            "ring restarts after release"
        );
    }
    #[test]
    fn event_budget_caps_a_runaway_ring() {
        let mut nl = Netlist::new();
        let n0 = nl.signal_with_init("n0", Logic::Zero);
        let n1 = nl.signal_with_init("n1", Logic::One);
        let n2 = nl.signal_with_init("n2", Logic::Zero);
        nl.gate(GateOp::Inv, &[n0], n1, 1_000);
        nl.gate(GateOp::Inv, &[n1], n2, 1_000);
        nl.gate(GateOp::Inv, &[n2], n0, 1_000);
        let mut sim = Simulator::new(nl);
        let err = sim.run_until_budget(1_000_000_000, 500).unwrap_err();
        match err {
            DsimError::EventBudgetExhausted { budget, at_fs } => {
                assert_eq!(budget, 500);
                assert!(at_fs < 1_000_000_000, "aborted early at {at_fs} fs");
            }
            other => panic!("expected EventBudgetExhausted, got {other:?}"),
        }
        // A generous budget reaches the target time and reports the count.
        let mut nl2 = Netlist::new();
        let a = nl2.signal_with_init("a", Logic::Zero);
        let b = nl2.signal("b");
        nl2.gate(GateOp::Inv, &[a], b, 100);
        let mut quiet = Simulator::new(nl2);
        let n = quiet.run_until_budget(10_000, 1_000).unwrap();
        assert!(n <= 2, "settlement only: {n}");
    }
}
