//! Typed runtime errors of the simulator layer.
//!
//! The kernel keeps panics for *caller bugs that cannot be represented*
//! (indexing with a [`SignalId`] from another netlist); everything a
//! well-formed caller can trigger at runtime — asking for an edge count
//! that was never enabled, looking up a signal by a name that does not
//! exist — surfaces as a [`DsimError`] instead.

use std::fmt;

use crate::netlist::SignalId;

/// An error produced by the simulator or netlist query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsimError {
    /// [`Simulator::edge_count`](crate::sim::Simulator::edge_count) or
    /// [`Simulator::reset_edge_count`](crate::sim::Simulator::reset_edge_count)
    /// was called for a signal that never had
    /// [`Simulator::count_edges`](crate::sim::Simulator::count_edges)
    /// enabled.
    EdgeCountingDisabled {
        /// The queried signal.
        signal: SignalId,
        /// Its netlist name, for the message.
        name: String,
    },
    /// A by-name signal lookup did not match any signal in the netlist.
    UnknownSignal {
        /// The name that failed to resolve.
        name: String,
    },
    /// [`Simulator::schedule`](crate::sim::Simulator::schedule) asked for
    /// a stimulus at a time the simulation has already passed.
    SchedulePast {
        /// The requested (past) time, femtoseconds.
        at_fs: u64,
        /// The current simulation time, femtoseconds.
        now_fs: u64,
    },
    /// [`Simulator::run_until_budget`](crate::sim::Simulator::run_until_budget)
    /// exhausted its watchdog event budget before reaching the target
    /// time — the faulted circuit is (as far as the budget can tell)
    /// hung in runaway activity.
    EventBudgetExhausted {
        /// The event budget that was exhausted.
        budget: u64,
        /// Simulation time when the budget ran out, femtoseconds.
        at_fs: u64,
    },
    /// A by-index component access was out of range for the netlist.
    UnknownComponent {
        /// The requested component index.
        index: usize,
        /// Number of components in the netlist.
        count: usize,
    },
    /// [`Netlist::validate`](crate::netlist::Netlist::validate) found a
    /// component input that is neither driven nor initialized — the
    /// simulator would hold it at `X` forever.
    FloatingInput {
        /// Name of the floating signal.
        name: String,
        /// Index of the component reading it.
        component: usize,
    },
    /// [`Netlist::validate`](crate::netlist::Netlist::validate) found a
    /// signal with more than one driver — inertial-delay semantics
    /// assume exactly one.
    DuplicateDriver {
        /// Name of the multiply-driven signal.
        name: String,
        /// Number of drivers found.
        drivers: usize,
    },
}

impl fmt::Display for DsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsimError::EdgeCountingDisabled { name, .. } => {
                write!(f, "edge counting was not enabled for signal `{name}`")
            }
            DsimError::UnknownSignal { name } => {
                write!(f, "netlist has no signal named `{name}`")
            }
            DsimError::SchedulePast { at_fs, now_fs } => {
                write!(
                    f,
                    "cannot schedule in the past: requested {at_fs} fs but simulation time is {now_fs} fs"
                )
            }
            DsimError::EventBudgetExhausted { budget, at_fs } => {
                write!(
                    f,
                    "event budget of {budget} exhausted at {at_fs} fs before reaching the target time"
                )
            }
            DsimError::UnknownComponent { index, count } => {
                write!(
                    f,
                    "netlist has no component with index {index} (component count is {count})"
                )
            }
            DsimError::FloatingInput { name, component } => {
                write!(
                    f,
                    "signal `{name}` feeds component {component} but has no driver and no \
                     initial value (floating input)"
                )
            }
            DsimError::DuplicateDriver { name, drivers } => {
                write!(
                    f,
                    "signal `{name}` has {drivers} drivers; inertial delays assume exactly one"
                )
            }
        }
    }
}

impl std::error::Error for DsimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::Simulator;

    #[test]
    fn display_names_the_signal() {
        let mut nl = Netlist::new();
        let a = nl.signal("osc.out");
        let sim = Simulator::new(nl);
        let err = sim.edge_count(a).unwrap_err();
        assert!(err.to_string().contains("osc.out"), "{err}");
        let err = DsimError::UnknownSignal {
            name: "nope".into(),
        };
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn error_traits() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<DsimError>();
    }
}
