//! Gate-level netlists: signals and components.
//!
//! Time is measured in integer **femtoseconds** (`u64`), fine enough to
//! represent picosecond-scale ring periods without rounding artefacts
//! over millions of cycles.

use std::fmt;

use crate::logic::Logic;

/// Identifier of a signal (net) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw index previously obtained via
    /// [`SignalId::index`]. Ids are only meaningful against the netlist
    /// they came from.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SignalId(index)
    }
}

/// Boolean function of a combinational primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Identity (single input).
    Buf,
    /// Negation (single input).
    Inv,
    /// AND of all inputs.
    And,
    /// NAND of all inputs.
    Nand,
    /// OR of all inputs.
    Or,
    /// NOR of all inputs.
    Nor,
    /// XOR of all inputs (parity).
    Xor,
    /// XNOR of all inputs.
    Xnor,
}

impl GateOp {
    /// Evaluates the function over the input levels.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert!(!inputs.is_empty(), "gate must have at least one input");
        match self {
            GateOp::Buf => inputs[0],
            GateOp::Inv => inputs[0].not(),
            GateOp::And => inputs.iter().copied().fold(Logic::One, Logic::and),
            GateOp::Nand => inputs.iter().copied().fold(Logic::One, Logic::and).not(),
            GateOp::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateOp::Nor => inputs.iter().copied().fold(Logic::Zero, Logic::or).not(),
            GateOp::Xor => inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateOp::Xnor => inputs.iter().copied().fold(Logic::Zero, Logic::xor).not(),
        }
    }

    /// True for ops whose output inverts along a single sensitized input
    /// path (the other inputs held at their non-controlling values):
    /// INV, NAND, NOR, XNOR. Used for ring inversion-parity analysis.
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateOp::Inv | GateOp::Nand | GateOp::Nor | GateOp::Xnor
        )
    }
}

/// A netlist component.
#[derive(Debug, Clone, PartialEq)]
pub enum Component {
    /// Combinational gate with an inertial propagation delay.
    Gate {
        /// Boolean function.
        op: GateOp,
        /// Input signals.
        inputs: Vec<SignalId>,
        /// Output signal.
        output: SignalId,
        /// Propagation delay, femtoseconds.
        delay_fs: u64,
    },
    /// Rising-edge D flip-flop with optional active-low asynchronous
    /// reset.
    Dff {
        /// Data input.
        d: SignalId,
        /// Clock input (rising edge).
        clk: SignalId,
        /// Active-low asynchronous reset, if present.
        rst_n: Option<SignalId>,
        /// Output.
        q: SignalId,
        /// Clock-to-Q delay, femtoseconds.
        delay_fs: u64,
    },
    /// Level-sensitive (transparent-high) latch with optional
    /// active-low asynchronous reset.
    Latch {
        /// Data input.
        d: SignalId,
        /// Enable input (transparent while high).
        en: SignalId,
        /// Active-low asynchronous reset, if present.
        rst_n: Option<SignalId>,
        /// Output.
        q: SignalId,
        /// Data-to-Q delay while transparent, femtoseconds.
        delay_fs: u64,
    },
    /// Free-running clock source.
    Clock {
        /// Output signal.
        output: SignalId,
        /// Time spent low each cycle, femtoseconds.
        low_fs: u64,
        /// Time spent high each cycle, femtoseconds.
        high_fs: u64,
        /// Phase offset before the first rising edge, femtoseconds.
        start_fs: u64,
    },
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    initials: Vec<Logic>,
    components: Vec<Component>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Declares a signal with an initial level of `X`.
    pub fn signal(&mut self, name: impl Into<String>) -> SignalId {
        self.signal_with_init(name, Logic::X)
    }

    /// Declares a signal with an explicit initial level.
    pub fn signal_with_init(&mut self, name: impl Into<String>, init: Logic) -> SignalId {
        let id = SignalId(self.names.len());
        self.names.push(name.into());
        self.initials.push(init);
        id
    }

    /// The level a signal starts the simulation at.
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign to this netlist.
    pub fn initial_value(&self, id: SignalId) -> Logic {
        self.initials[id.0]
    }

    /// Adds a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or a signal id is foreign.
    pub fn gate(&mut self, op: GateOp, inputs: &[SignalId], output: SignalId, delay_fs: u64) {
        assert!(!inputs.is_empty(), "gate must have at least one input");
        for s in inputs.iter().chain(std::iter::once(&output)) {
            assert!(
                s.0 < self.names.len(),
                "signal does not belong to this netlist"
            );
        }
        self.components.push(Component::Gate {
            op,
            inputs: inputs.to_vec(),
            output,
            delay_fs,
        });
    }

    /// Adds a rising-edge D flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if a signal id is foreign.
    pub fn dff(
        &mut self,
        d: SignalId,
        clk: SignalId,
        rst_n: Option<SignalId>,
        q: SignalId,
        delay_fs: u64,
    ) {
        for s in [Some(d), Some(clk), rst_n, Some(q)].into_iter().flatten() {
            assert!(
                s.0 < self.names.len(),
                "signal does not belong to this netlist"
            );
        }
        self.components.push(Component::Dff {
            d,
            clk,
            rst_n,
            q,
            delay_fs,
        });
    }

    /// Adds a transparent-high level-sensitive latch.
    ///
    /// # Panics
    ///
    /// Panics if a signal id is foreign.
    pub fn latch(
        &mut self,
        d: SignalId,
        en: SignalId,
        rst_n: Option<SignalId>,
        q: SignalId,
        delay_fs: u64,
    ) {
        for s in [Some(d), Some(en), rst_n, Some(q)].into_iter().flatten() {
            assert!(
                s.0 < self.names.len(),
                "signal does not belong to this netlist"
            );
        }
        self.components.push(Component::Latch {
            d,
            en,
            rst_n,
            q,
            delay_fs,
        });
    }

    /// Adds a free-running clock with the given low/high interval.
    ///
    /// # Panics
    ///
    /// Panics if either interval is zero.
    pub fn clock(&mut self, output: SignalId, low_fs: u64, high_fs: u64, start_fs: u64) {
        assert!(
            low_fs > 0 && high_fs > 0,
            "clock intervals must be positive"
        );
        assert!(
            output.0 < self.names.len(),
            "signal does not belong to this netlist"
        );
        self.components.push(Component::Clock {
            output,
            low_fs,
            high_fs,
            start_fs,
        });
    }

    /// Adds a symmetric clock of the given period.
    ///
    /// # Panics
    ///
    /// Panics if the period is below 2 fs.
    pub fn symmetric_clock(&mut self, output: SignalId, period_fs: u64, start_fs: u64) {
        assert!(period_fs >= 2, "period must be at least 2 fs");
        self.clock(output, period_fs / 2, period_fs - period_fs / 2, start_fs);
    }

    /// Number of declared signals.
    #[inline]
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a signal.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.names[id.0]
    }

    /// Finds a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.names.iter().position(|n| n == name).map(SignalId)
    }

    /// Finds a signal by name, failing with a typed error when absent —
    /// the fallible twin of [`Netlist::find_signal`] for callers that
    /// propagate rather than unwrap.
    ///
    /// # Errors
    ///
    /// Returns
    /// [`DsimError::UnknownSignal`](crate::error::DsimError::UnknownSignal)
    /// when no signal has `name`.
    pub fn require_signal(&self, name: &str) -> Result<SignalId, crate::error::DsimError> {
        self.find_signal(name)
            .ok_or_else(|| crate::error::DsimError::UnknownSignal {
                name: name.to_string(),
            })
    }

    /// Every declared signal id, in declaration order.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        (0..self.names.len()).map(SignalId).collect()
    }

    /// Initial level of a signal.
    pub(crate) fn initial(&self, id: SignalId) -> Logic {
        self.initials[id.0]
    }

    /// The components.
    #[inline]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The propagation delay of component `index` (`None` for a
    /// [`Component::Clock`], which has no single delay).
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::UnknownComponent`](crate::error::DsimError::UnknownComponent) when `index` is out of
    /// range.
    pub fn component_delay(&self, index: usize) -> Result<Option<u64>, crate::error::DsimError> {
        let comp = self
            .components
            .get(index)
            .ok_or(crate::error::DsimError::UnknownComponent {
                index,
                count: self.components.len(),
            })?;
        Ok(match comp {
            Component::Gate { delay_fs, .. }
            | Component::Dff { delay_fs, .. }
            | Component::Latch { delay_fs, .. } => Some(*delay_fs),
            Component::Clock { .. } => None,
        })
    }

    /// Overwrites the propagation delay of component `index` — the
    /// delay-fault injection primitive (a clock source is left
    /// untouched). Takes effect on the component's next evaluation in a
    /// simulator built *after* the mutation.
    ///
    /// # Errors
    ///
    /// Returns [`DsimError::UnknownComponent`](crate::error::DsimError::UnknownComponent) when `index` is out of
    /// range.
    pub fn set_component_delay(
        &mut self,
        index: usize,
        delay_fs: u64,
    ) -> Result<(), crate::error::DsimError> {
        let count = self.components.len();
        let comp = self
            .components
            .get_mut(index)
            .ok_or(crate::error::DsimError::UnknownComponent { index, count })?;
        match comp {
            Component::Gate { delay_fs: d, .. }
            | Component::Dff { delay_fs: d, .. }
            | Component::Latch { delay_fs: d, .. } => *d = delay_fs,
            Component::Clock { .. } => {}
        }
        Ok(())
    }

    /// Validates structural well-formedness: every component input must
    /// be driven or carry a definite initial value, and no signal may
    /// have more than one driver. The simulator used to accept such
    /// netlists and misbehave deep into the run (a floating input holds
    /// `X` forever; a doubly-driven net silently interleaves drivers);
    /// callers that build netlists from untrusted descriptions should
    /// validate first or construct through
    /// [`Simulator::try_new`](crate::sim::Simulator::try_new).
    ///
    /// # Errors
    ///
    /// Returns the first
    /// [`DsimError::FloatingInput`](crate::error::DsimError::FloatingInput)
    /// or
    /// [`DsimError::DuplicateDriver`](crate::error::DsimError::DuplicateDriver)
    /// found, in signal order.
    pub fn validate(&self) -> Result<(), crate::error::DsimError> {
        let drivers = self.driver_count_table();
        for (i, &count) in drivers.iter().enumerate() {
            if count > 1 {
                return Err(crate::error::DsimError::DuplicateDriver {
                    name: self.names[i].clone(),
                    drivers: count,
                });
            }
        }
        for (ci, comp) in self.components.iter().enumerate() {
            let inputs: Vec<SignalId> = match comp {
                Component::Gate { inputs, .. } => inputs.clone(),
                Component::Dff { d, clk, rst_n, .. } => {
                    let mut v = vec![*d, *clk];
                    v.extend(*rst_n);
                    v
                }
                Component::Latch { d, en, rst_n, .. } => {
                    let mut v = vec![*d, *en];
                    v.extend(*rst_n);
                    v
                }
                Component::Clock { .. } => Vec::new(),
            };
            for s in inputs {
                if drivers[s.0] == 0 && self.initials[s.0] == Logic::X {
                    return Err(crate::error::DsimError::FloatingInput {
                        name: self.names[s.0].clone(),
                        component: ci,
                    });
                }
            }
        }
        Ok(())
    }

    /// Signals driven by free-running [`Component::Clock`] sources — the
    /// clock-domain roots a CDC analysis starts from.
    pub fn clock_roots(&self) -> Vec<SignalId> {
        let mut roots: Vec<SignalId> = self
            .components
            .iter()
            .filter_map(|c| match c {
                Component::Clock { output, .. } => Some(*output),
                _ => None,
            })
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// Per-signal driving component index (`None` when undriven; the
    /// first driver when — invalidly — there are several).
    pub fn driver_table(&self) -> Vec<Option<usize>> {
        let mut table = vec![None; self.names.len()];
        for (ci, comp) in self.components.iter().enumerate() {
            let out = match comp {
                Component::Gate { output, .. } | Component::Clock { output, .. } => *output,
                Component::Dff { q, .. } | Component::Latch { q, .. } => *q,
            };
            if table[out.0].is_none() {
                table[out.0] = Some(ci);
            }
        }
        table
    }

    /// The signal component `index` drives, or `None` when `index` is
    /// out of range.
    pub fn output_of(&self, index: usize) -> Option<SignalId> {
        self.components.get(index).map(|comp| match comp {
            Component::Gate { output, .. } | Component::Clock { output, .. } => *output,
            Component::Dff { q, .. } | Component::Latch { q, .. } => *q,
        })
    }

    /// Per-signal list of reading component indices (a public clone of
    /// the simulator's fan-out table, for static analyses).
    pub fn fanout(&self) -> Vec<Vec<usize>> {
        self.fanout_table()
    }

    /// Per-signal driver counts.
    fn driver_count_table(&self) -> Vec<usize> {
        let mut drivers = vec![0usize; self.names.len()];
        for comp in &self.components {
            let out = match comp {
                Component::Gate { output, .. } | Component::Clock { output, .. } => *output,
                Component::Dff { q, .. } | Component::Latch { q, .. } => *q,
            };
            drivers[out.0] += 1;
        }
        drivers
    }

    /// Builds, for each signal, the list of component indices that read
    /// it (fan-out table used by the simulator).
    pub(crate) fn fanout_table(&self) -> Vec<Vec<usize>> {
        let mut fanout = vec![Vec::new(); self.names.len()];
        for (ci, comp) in self.components.iter().enumerate() {
            match comp {
                Component::Gate { inputs, .. } => {
                    for s in inputs {
                        fanout[s.0].push(ci);
                    }
                }
                Component::Dff { d, clk, rst_n, .. } => {
                    fanout[d.0].push(ci);
                    fanout[clk.0].push(ci);
                    if let Some(r) = rst_n {
                        fanout[r.0].push(ci);
                    }
                }
                Component::Latch { d, en, rst_n, .. } => {
                    fanout[d.0].push(ci);
                    fanout[en.0].push(ci);
                    if let Some(r) = rst_n {
                        fanout[r.0].push(ci);
                    }
                }
                Component::Clock { .. } => {}
            }
        }
        for list in &mut fanout {
            list.dedup();
        }
        fanout
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} signals, {} components",
            self.names.len(),
            self.components.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_tables() {
        use Logic::*;
        assert_eq!(GateOp::Nand.eval(&[One, One]), Zero);
        assert_eq!(GateOp::Nand.eval(&[One, Zero]), One);
        assert_eq!(GateOp::Nor.eval(&[Zero, Zero]), One);
        assert_eq!(GateOp::Xor.eval(&[One, One, One]), One, "3-input parity");
        assert_eq!(GateOp::Xnor.eval(&[One, Zero]), Zero);
        assert_eq!(GateOp::Buf.eval(&[X]), X);
        assert_eq!(GateOp::Inv.eval(&[Zero]), One);
        assert_eq!(GateOp::And.eval(&[One, One, Zero]), Zero);
        assert_eq!(GateOp::Or.eval(&[Zero, Zero, One]), One);
    }

    #[test]
    fn signal_registry() {
        let mut nl = Netlist::new();
        let a = nl.signal("a");
        let b = nl.signal_with_init("b", Logic::Zero);
        assert_eq!(nl.signal_count(), 2);
        assert_eq!(nl.signal_name(a), "a");
        assert_eq!(nl.find_signal("b"), Some(b));
        assert_eq!(nl.find_signal("c"), None);
        assert_eq!(nl.initial(a), Logic::X);
        assert_eq!(nl.initial(b), Logic::Zero);
    }

    #[test]
    fn fanout_table_tracks_readers() {
        let mut nl = Netlist::new();
        let a = nl.signal("a");
        let b = nl.signal("b");
        let y = nl.signal("y");
        let q = nl.signal("q");
        nl.gate(GateOp::Nand, &[a, b], y, 100);
        nl.dff(y, a, None, q, 50);
        let fanout = nl.fanout_table();
        assert_eq!(
            fanout[a.0],
            vec![0, 1],
            "a feeds the gate and clocks the dff"
        );
        assert_eq!(fanout[b.0], vec![0]);
        assert_eq!(fanout[y.0], vec![1]);
        assert!(fanout[q.0].is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_netlists() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, 2_000_000, 1_000_000);
        let d = nl.signal_with_init("d", Logic::Zero);
        let q = nl.signal_with_init("q", Logic::Zero);
        nl.dff(d, clk, None, q, 150);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn validate_reports_floating_input() {
        let mut nl = Netlist::new();
        let floating = nl.signal("floating");
        let y = nl.signal("y");
        nl.gate(GateOp::Inv, &[floating], y, 100);
        let err = nl.validate().unwrap_err();
        assert_eq!(
            err,
            crate::error::DsimError::FloatingInput {
                name: "floating".into(),
                component: 0,
            }
        );
        assert!(err.to_string().contains("floating input"), "{err}");
    }

    #[test]
    fn validate_reports_duplicate_driver() {
        let mut nl = Netlist::new();
        let a = nl.signal_with_init("a", Logic::Zero);
        let y = nl.signal("y");
        nl.gate(GateOp::Buf, &[a], y, 100);
        nl.gate(GateOp::Inv, &[a], y, 100);
        let err = nl.validate().unwrap_err();
        assert_eq!(
            err,
            crate::error::DsimError::DuplicateDriver {
                name: "y".into(),
                drivers: 2,
            }
        );
    }

    #[test]
    fn query_tables_agree_with_structure() {
        let mut nl = Netlist::new();
        let clk = nl.signal("clk");
        nl.symmetric_clock(clk, 2_000_000, 1_000_000);
        let a = nl.signal_with_init("a", Logic::Zero);
        let y = nl.signal("y");
        nl.gate(GateOp::Inv, &[a], y, 100);
        assert_eq!(nl.clock_roots(), vec![clk]);
        let drivers = nl.driver_table();
        assert_eq!(drivers[clk.0], Some(0));
        assert_eq!(drivers[y.0], Some(1));
        assert_eq!(drivers[a.0], None);
        assert_eq!(nl.output_of(1), Some(y));
        assert_eq!(nl.output_of(9), None);
        assert_eq!(nl.fanout()[a.0], vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_gate_rejected() {
        let mut nl = Netlist::new();
        let y = nl.signal("y");
        nl.gate(GateOp::And, &[], y, 0);
    }

    #[test]
    #[should_panic(expected = "intervals must be positive")]
    fn zero_clock_rejected() {
        let mut nl = Netlist::new();
        let c = nl.signal("c");
        nl.clock(c, 0, 10, 0);
    }
}
