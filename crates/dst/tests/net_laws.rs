//! Property suite for the fleet-simulation substrate — the laws the
//! multi-node deterministic simulator's replayability and fault
//! semantics rest on:
//!
//! 1. **Skewed clock monotonicity**: a [`SkewedClock`] with any
//!    offset/drift (including drift past the clamp) is non-decreasing
//!    under arbitrary interleavings of base advances and local sleeps,
//!    positive sleeps always make progress in base time, and `wall_ns`
//!    is strictly increasing across reads.
//! 2. **Delivery laws**: a dropped datagram is never delivered (decided
//!    at send, not replayed later); envelopes are conserved — every
//!    send is accounted for as delivered, dropped at send, refused at a
//!    severed link, still in flight, or died with a crashed node's
//!    inbox, with duplication adding exactly the envelopes it reports.
//! 3. **Partition semantics**: while a pair is partitioned nothing
//!    crosses the cut in either direction; after heal, everything that
//!    was queued (and not dropped) eventually delivers — held, not
//!    lost.

use std::sync::Arc;

use proptest::prelude::*;

use dst::{Clock, LinkProfile, SendOutcome, SimNet, SkewedClock, VirtualClock};

fn arb_profile() -> impl Strategy<Value = LinkProfile> {
    (1u64..20, 0u64..30, 0u8..3, 0u8..3, 0u8..3).prop_map(|(dmin, dspan, drop, dup, reorder)| {
        LinkProfile {
            delay_min_ms: dmin,
            delay_max_ms: dmin + dspan,
            drop: f64::from(drop) * 0.15,
            duplicate: f64::from(dup) * 0.1,
            reorder: f64::from(reorder) * 0.2,
            reorder_jitter_ms: 25,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn skewed_clock_is_monotone_under_any_skew(
        offset_ms in 0u64..5_000,
        drift_ppm in -3_000_000i64..3_000_000,
        steps in prop::collection::vec((0u64..200, any::<bool>()), 1..40),
    ) {
        let base = Arc::new(VirtualClock::new());
        let clock = SkewedClock::new(Arc::clone(&base), offset_ms, drift_ppm);
        let mut last_local = clock.now_ms();
        let mut last_wall = clock.wall_ns();
        for (amount, via_sleep) in steps {
            let base_before = base.now_ms();
            if via_sleep {
                clock.sleep_ms(amount);
                if amount > 0 {
                    prop_assert!(
                        base.now_ms() > base_before,
                        "a positive local sleep must advance base time"
                    );
                }
            } else {
                base.advance_by(amount);
            }
            let local = clock.now_ms();
            prop_assert!(
                local >= last_local,
                "local time went backwards: {last_local} -> {local}"
            );
            last_local = local;
            let wall = clock.wall_ns();
            prop_assert!(wall > last_wall, "wall_ns must be strictly increasing");
            last_wall = wall;
        }
    }

    #[test]
    fn dropped_datagrams_are_never_delivered_and_envelopes_are_conserved(
        seed in any::<u64>(),
        profile in arb_profile(),
        sends in prop::collection::vec((0u64..4, 0u64..500), 1..60),
    ) {
        let mut net: SimNet<u64> = SimNet::new(seed, 5, profile);
        let mut queued = 0u64;
        let mut now = 0;
        for (i, (dst_node, dt)) in sends.iter().enumerate() {
            now += dt;
            // Node 4 only ever sends; 0..4 only ever receive.
            match net.send(now, 4, *dst_node as usize, i as u64) {
                SendOutcome::Queued { deliver_at_ms } => {
                    queued += 1;
                    prop_assert!(deliver_at_ms > now, "delivery is never instantaneous");
                }
                SendOutcome::Dropped => {}
                SendOutcome::Severed => unreachable!("no partitions in this run"),
            }
        }
        // Drain the fabric completely.
        let mut delivered = 0u64;
        let horizon = now + 10_000;
        for node in 0..4 {
            while net.poll(node, horizon).is_some() {
                delivered += 1;
            }
        }
        let stats = net.stats();
        prop_assert_eq!(stats.delivered, delivered);
        prop_assert_eq!(net.in_flight(), 0, "a full drain leaves nothing in flight");
        // Conservation: every send is accounted for — dropped at the
        // send (never queued, never delivered) or queued; every queued
        // envelope plus every minted duplicate is delivered by a full
        // drain.
        prop_assert_eq!(stats.sent, queued, "sent counts queued sends");
        prop_assert_eq!(
            queued + stats.dropped,
            sends.len() as u64,
            "queued {} + dropped {} != sends {}",
            queued, stats.dropped, sends.len()
        );
        prop_assert_eq!(
            delivered,
            queued + stats.duplicated,
            "delivered {} != queued {} + duplicated {}",
            delivered, queued, stats.duplicated
        );
    }

    #[test]
    fn partitions_hold_traffic_and_heal_releases_it(
        seed in any::<u64>(),
        pre_sends in 1usize..15,
        cut_sends in 1usize..15,
        cut_at in 10u64..200,
        heal_after in 10u64..400,
    ) {
        // Lossless link: every queued envelope must eventually arrive.
        let mut profile = LinkProfile::lan();
        profile.duplicate = 0.0;
        let mut net: SimNet<u64> = SimNet::new(seed, 2, profile);
        let mut queued = 0u64;
        for i in 0..pre_sends {
            match net.send(i as u64 % cut_at, 0, 1, i as u64) {
                SendOutcome::Queued { .. } => queued += 1,
                other => prop_assert!(false, "lossless pre-cut send failed: {other:?}"),
            }
        }
        net.partition_pair(0, 1);
        let heal_at = cut_at + heal_after;
        for i in 0..cut_sends {
            // Sends into the cut are refused outright.
            let outcome = net.send(cut_at + i as u64 % heal_after, 0, 1, 1_000 + i as u64);
            prop_assert_eq!(outcome, SendOutcome::Severed);
        }
        // While severed, nothing crosses the cut — even traffic queued
        // before the partition is held, no matter how late we poll.
        prop_assert!(net.poll(1, heal_at).is_none(), "delivery across a live cut");
        prop_assert!(net.poll(0, heal_at).is_none(), "reverse delivery across a live cut");
        prop_assert_eq!(net.stats().delivered, 0);

        net.heal_pair(0, 1);
        let mut delivered = 0u64;
        while net.poll(1, heal_at + 10_000).is_some() {
            delivered += 1;
        }
        prop_assert_eq!(
            delivered, queued,
            "heal must release every held envelope: {} of {}",
            delivered, queued
        );
        prop_assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn same_seed_same_weather_different_seed_different_weather(
        seed in any::<u64>(),
        sends in prop::collection::vec(0u64..300, 10..40),
    ) {
        let run = |s: u64| {
            let mut net: SimNet<u64> = SimNet::new(s, 2, LinkProfile::flaky());
            let mut log = Vec::new();
            let mut now = 0;
            for (i, dt) in sends.iter().enumerate() {
                now += dt;
                log.push(format!("{:?}", net.send(now, 0, 1, i as u64)));
            }
            while let Some(env) = net.poll(1, now + 10_000) {
                log.push(format!("{}@{}", env.payload, env.deliver_at_ms));
            }
            log
        };
        prop_assert_eq!(run(seed), run(seed), "same seed must replay the same weather");
    }
}
