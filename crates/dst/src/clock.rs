//! Time as a capability: the [`Clock`] trait, its host-backed and
//! virtual implementations, and the process-wide nonce counter.
//!
//! Code that reads `Instant::now()` directly can only ever be tested
//! against the one interleaving the host scheduler happens to produce.
//! Code that reads a [`Clock`] can run unchanged under a
//! [`VirtualClock`], where time advances *only* when the simulation is
//! quiescent — so a 60-second soak's worth of timeouts, backoffs,
//! cooldowns, and staleness bounds replays in microseconds, identically
//! on every run of the same seed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A source of time. `now_ms` is the monotonic variant every timeout
/// and staleness bound is computed from; `wall_ns` is the wall variant
/// used only for identity (nonces, artifact names), never for logic.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic milliseconds since this clock's origin.
    fn now_ms(&self) -> u64;

    /// Wall-clock nanoseconds since the Unix epoch (or a deterministic
    /// stand-in under simulation). Identity only — never compare this
    /// against `now_ms`.
    fn wall_ns(&self) -> u128;

    /// Blocks (or, under simulation, advances virtual time) for `ms`
    /// milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The host's clocks: a pinned [`Instant`] origin for `now_ms`,
/// [`SystemTime`] for `wall_ns`, and a real [`std::thread::sleep`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A system clock whose `now_ms` origin is the moment of creation.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn wall_ns(&self) -> u128 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A clock that moves only when told to.
///
/// Monotonic by construction: [`VirtualClock::advance_to`] ignores
/// attempts to move backwards. `wall_ns` is derived from virtual time
/// plus a per-call sequence number, so it is unique and deterministic
/// but carries no hidden entropy.
///
/// `sleep_ms` advances the clock itself — the cooperative semantics a
/// single-threaded simulation wants (the sleeper *is* the only
/// runnable task, so time may jump). Do not share a `VirtualClock`
/// between preemptive threads expecting real blocking.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
    wall_seq: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward to `ms` (no-op if already past it).
    pub fn advance_to(&self, ms: u64) {
        self.now_ms.fetch_max(ms, Ordering::SeqCst);
    }

    /// Moves time forward by `ms`.
    pub fn advance_by(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    fn wall_ns(&self) -> u128 {
        let seq = self.wall_seq.fetch_add(1, Ordering::SeqCst);
        u128::from(self.now_ms()) * 1_000_000 + u128::from(seq)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_by(ms);
    }
}

/// A node's view of fabric time: a shared base clock plus a fixed
/// offset and a constant drift rate.
///
/// Real fleets never share one clock. Each node boots with some offset
/// from true time and its oscillator runs fast or slow by a few parts
/// per million; any fleet-level freshness claim ("this reading is at
/// most 250 ms old") must stay honest when the node *stamping* the age
/// and the node *judging* it disagree about what time it is. A
/// `SkewedClock` models exactly that:
///
/// ```text
/// local_ms(t) = offset_ms + t + t * drift_ppm / 1_000_000
/// ```
///
/// where `t` is the shared base [`VirtualClock`]'s reading. Because the
/// mapping is affine with a non-negative slope (`drift_ppm` ≥
/// −1 000 000 is enforced), local time is monotone whenever base time
/// is — a property the `skewed_clock_monotone` property test pins down.
///
/// `sleep_ms` converts the *local* duration back to base duration
/// before advancing the shared clock, so a node that thinks a
/// millisecond is long (fast oscillator) sleeps less base time, as a
/// real fast clock would.
#[derive(Debug)]
pub struct SkewedClock {
    base: Arc<VirtualClock>,
    offset_ms: u64,
    /// Parts-per-million deviation: +100 runs fast, −100 runs slow.
    drift_ppm: i64,
    wall_seq: AtomicU64,
}

impl SkewedClock {
    /// A skewed view over `base`. `drift_ppm` below −1 000 000 (a clock
    /// running backwards) is clamped to −1 000 000 (a stopped clock),
    /// preserving monotonicity.
    pub fn new(base: Arc<VirtualClock>, offset_ms: u64, drift_ppm: i64) -> Self {
        SkewedClock {
            base,
            offset_ms,
            drift_ppm: drift_ppm.max(-1_000_000),
            wall_seq: AtomicU64::new(0),
        }
    }

    /// The shared base clock this view is derived from.
    pub fn base(&self) -> &Arc<VirtualClock> {
        &self.base
    }

    /// Maps a base reading to this node's local reading.
    fn local_ms(&self, base_ms: u64) -> u64 {
        let drift = (base_ms as i128 * self.drift_ppm as i128) / 1_000_000;
        let local = self.offset_ms as i128 + base_ms as i128 + drift;
        local.max(0) as u64
    }
}

impl Clock for SkewedClock {
    fn now_ms(&self) -> u64 {
        self.local_ms(self.base.now_ms())
    }

    fn wall_ns(&self) -> u128 {
        let seq = self.wall_seq.fetch_add(1, Ordering::SeqCst);
        u128::from(self.now_ms()) * 1_000_000 + u128::from(seq)
    }

    fn sleep_ms(&self, ms: u64) {
        // Convert the requested *local* duration to *base* duration:
        // local runs at (1 + drift_ppm/1e6) × base, so base = local /
        // (1 + drift_ppm/1e6). Round up so a positive local sleep
        // always advances base time.
        let num = u128::from(ms) * 1_000_000;
        let den = (1_000_000 + self.drift_ppm).max(1) as u128;
        let base_ms = num.div_ceil(den) as u64;
        self.base
            .advance_by(base_ms.max(if ms > 0 { 1 } else { 0 }));
    }
}

/// A per-node nonce namespace for multi-node simulation.
///
/// The process-wide [`unique_nonce`] is correct for one process but
/// wrong for a simulated *fleet*: all nodes share the process counter,
/// so the nonce a node draws depends on how many nonces *other* nodes
/// drew first — one node's snapshot temp-file names would change
/// whenever an unrelated node's schedule shifted, breaking per-node
/// replay (`--replay-node`). Worse, two single-node replays of the
/// same seed both start the shared counter wherever the process left
/// it, so "same seed, same names" does not hold across runs.
///
/// A `NonceNamespace` scopes the counter to one simulated node and
/// brands every nonce with the node id in the high bits:
///
/// ```text
/// nonce = (node_id << 64) | local_counter
/// ```
///
/// Distinct nodes can never collide (disjoint high bits), and one
/// node's sequence is a pure function of its own draw count — exactly
/// the determinism per-node replay needs.
#[derive(Debug)]
pub struct NonceNamespace {
    node: u64,
    counter: AtomicU64,
}

impl NonceNamespace {
    /// A namespace for simulated node `node`, counting from zero.
    pub fn new(node: u64) -> Self {
        NonceNamespace {
            node,
            counter: AtomicU64::new(0),
        }
    }

    /// The node id this namespace brands its nonces with.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The next nonce: unique within the node, disjoint across nodes,
    /// deterministic in the draw sequence.
    pub fn next(&self) -> u128 {
        let count = self.counter.fetch_add(1, Ordering::Relaxed);
        (u128::from(self.node) << 64) | u128::from(count)
    }
}

/// A process-unique nonce: wall nanoseconds from a fresh
/// [`SystemClock`] fused with one process-wide atomic counter.
///
/// Timestamp-only nonces (`SystemTime::now()` nanos) collide when two
/// checkpoints, tests, or scratch directories are created inside the
/// same clock tick; the counter half makes every call distinct even at
/// that cadence. The counter wraps at 2^16, far beyond anything a
/// single nanosecond can issue.
pub fn unique_nonce() -> u128 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    (SystemClock::new().wall_ns() << 16) | u128::from(count as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_walks_forward() {
        let c = SystemClock::new();
        let a = c.now_ms();
        c.sleep_ms(2);
        let b = c.now_ms();
        assert!(b > a, "{a} -> {b}");
        assert!(c.wall_ns() > 1_500_000_000u128 * 1_000_000_000);
    }

    #[test]
    fn virtual_clock_moves_only_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_to(100);
        assert_eq!(c.now_ms(), 100);
        c.advance_to(50); // never backwards
        assert_eq!(c.now_ms(), 100);
        c.sleep_ms(25); // cooperative sleep advances
        assert_eq!(c.now_ms(), 125);
        c.advance_by(5);
        assert_eq!(c.now_ms(), 130);
    }

    #[test]
    fn virtual_wall_is_unique_and_deterministic() {
        let c = VirtualClock::new();
        c.advance_to(7);
        let a = c.wall_ns();
        let b = c.wall_ns();
        assert_ne!(a, b, "wall nonces must differ per call");
        assert_eq!(a, 7_000_000, "derived from virtual time, not entropy");

        let d = VirtualClock::new();
        d.advance_to(7);
        assert_eq!(d.wall_ns(), a, "same history, same wall value");
    }

    #[test]
    fn skewed_clock_is_an_affine_view_of_base() {
        let base = Arc::new(VirtualClock::new());
        let fast = SkewedClock::new(Arc::clone(&base), 500, 100_000); // +10 %
        let slow = SkewedClock::new(Arc::clone(&base), 0, -100_000); // −10 %
        assert_eq!(fast.now_ms(), 500);
        assert_eq!(slow.now_ms(), 0);
        base.advance_to(1000);
        assert_eq!(fast.now_ms(), 500 + 1000 + 100);
        assert_eq!(slow.now_ms(), 1000 - 100);
    }

    #[test]
    fn skewed_sleep_advances_base_by_converted_duration() {
        let base = Arc::new(VirtualClock::new());
        let fast = SkewedClock::new(Arc::clone(&base), 0, 1_000_000); // 2× speed
        fast.sleep_ms(100); // 100 local ms = 50 base ms at 2×
        assert_eq!(base.now_ms(), 50);
        let slow = SkewedClock::new(Arc::clone(&base), 0, -500_000); // 0.5× speed
        slow.sleep_ms(100); // 100 local ms = 200 base ms at 0.5×
        assert_eq!(base.now_ms(), 250);
    }

    #[test]
    fn skewed_sleep_of_positive_local_always_moves_base() {
        let base = Arc::new(VirtualClock::new());
        let c = SkewedClock::new(Arc::clone(&base), 0, 999_999_999); // absurdly fast
        c.sleep_ms(1);
        assert!(base.now_ms() >= 1, "positive sleep must not stall the sim");
    }

    #[test]
    fn extreme_negative_drift_clamps_to_stopped_not_backwards() {
        let base = Arc::new(VirtualClock::new());
        let c = SkewedClock::new(Arc::clone(&base), 10, -5_000_000);
        base.advance_to(100);
        let a = c.now_ms();
        base.advance_to(200);
        let b = c.now_ms();
        assert!(b >= a, "clamped drift must stay monotone: {a} -> {b}");
    }

    #[test]
    fn nonce_namespaces_are_disjoint_and_deterministic() {
        let a = NonceNamespace::new(3);
        let b = NonceNamespace::new(4);
        let a0 = a.next();
        let b0 = b.next();
        assert_ne!(a0, b0);
        assert_eq!(a0 >> 64, 3);
        assert_eq!(b0 >> 64, 4);
        // Same node id, fresh namespace → same sequence (replayable).
        let a2 = NonceNamespace::new(3);
        assert_eq!(a2.next(), a0);
        assert_eq!(a2.next(), a.next());
    }

    #[test]
    fn nonces_never_collide_under_rapid_fire() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(unique_nonce()), "nonce collided");
        }
    }
}
