//! Time as a capability: the [`Clock`] trait, its host-backed and
//! virtual implementations, and the process-wide nonce counter.
//!
//! Code that reads `Instant::now()` directly can only ever be tested
//! against the one interleaving the host scheduler happens to produce.
//! Code that reads a [`Clock`] can run unchanged under a
//! [`VirtualClock`], where time advances *only* when the simulation is
//! quiescent — so a 60-second soak's worth of timeouts, backoffs,
//! cooldowns, and staleness bounds replays in microseconds, identically
//! on every run of the same seed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A source of time. `now_ms` is the monotonic variant every timeout
/// and staleness bound is computed from; `wall_ns` is the wall variant
/// used only for identity (nonces, artifact names), never for logic.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic milliseconds since this clock's origin.
    fn now_ms(&self) -> u64;

    /// Wall-clock nanoseconds since the Unix epoch (or a deterministic
    /// stand-in under simulation). Identity only — never compare this
    /// against `now_ms`.
    fn wall_ns(&self) -> u128;

    /// Blocks (or, under simulation, advances virtual time) for `ms`
    /// milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The host's clocks: a pinned [`Instant`] origin for `now_ms`,
/// [`SystemTime`] for `wall_ns`, and a real [`std::thread::sleep`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A system clock whose `now_ms` origin is the moment of creation.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn wall_ns(&self) -> u128 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A clock that moves only when told to.
///
/// Monotonic by construction: [`VirtualClock::advance_to`] ignores
/// attempts to move backwards. `wall_ns` is derived from virtual time
/// plus a per-call sequence number, so it is unique and deterministic
/// but carries no hidden entropy.
///
/// `sleep_ms` advances the clock itself — the cooperative semantics a
/// single-threaded simulation wants (the sleeper *is* the only
/// runnable task, so time may jump). Do not share a `VirtualClock`
/// between preemptive threads expecting real blocking.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
    wall_seq: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward to `ms` (no-op if already past it).
    pub fn advance_to(&self, ms: u64) {
        self.now_ms.fetch_max(ms, Ordering::SeqCst);
    }

    /// Moves time forward by `ms`.
    pub fn advance_by(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    fn wall_ns(&self) -> u128 {
        let seq = self.wall_seq.fetch_add(1, Ordering::SeqCst);
        u128::from(self.now_ms()) * 1_000_000 + u128::from(seq)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_by(ms);
    }
}

/// A process-unique nonce: wall nanoseconds from a fresh
/// [`SystemClock`] fused with one process-wide atomic counter.
///
/// Timestamp-only nonces (`SystemTime::now()` nanos) collide when two
/// checkpoints, tests, or scratch directories are created inside the
/// same clock tick; the counter half makes every call distinct even at
/// that cadence. The counter wraps at 2^16, far beyond anything a
/// single nanosecond can issue.
pub fn unique_nonce() -> u128 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    (SystemClock::new().wall_ns() << 16) | u128::from(count as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_walks_forward() {
        let c = SystemClock::new();
        let a = c.now_ms();
        c.sleep_ms(2);
        let b = c.now_ms();
        assert!(b > a, "{a} -> {b}");
        assert!(c.wall_ns() > 1_500_000_000u128 * 1_000_000_000);
    }

    #[test]
    fn virtual_clock_moves_only_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_to(100);
        assert_eq!(c.now_ms(), 100);
        c.advance_to(50); // never backwards
        assert_eq!(c.now_ms(), 100);
        c.sleep_ms(25); // cooperative sleep advances
        assert_eq!(c.now_ms(), 125);
        c.advance_by(5);
        assert_eq!(c.now_ms(), 130);
    }

    #[test]
    fn virtual_wall_is_unique_and_deterministic() {
        let c = VirtualClock::new();
        c.advance_to(7);
        let a = c.wall_ns();
        let b = c.wall_ns();
        assert_ne!(a, b, "wall nonces must differ per call");
        assert_eq!(a, 7_000_000, "derived from virtual time, not entropy");

        let d = VirtualClock::new();
        d.advance_to(7);
        assert_eq!(d.wall_ns(), a, "same history, same wall value");
    }

    #[test]
    fn nonces_never_collide_under_rapid_fire() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(unique_nonce()), "nonce collided");
        }
    }
}
