//! Shared content hashes: FNV-1a (64-bit) and CRC-32 (IEEE 802.3).
//!
//! One implementation each, used workspace-wide: the fleet router's
//! consistent-hash ring, the netcheck driver's on-disk cache keys, the
//! abstract-interpretation certificate fingerprint, snapshot CRC
//! trailers, and the wire protocol's frame checksum all call through
//! here. Both functions are tiny, branch-free-auditable, and
//! deliberately *not* optimised — inputs are small (keys, configs,
//! frames, snapshots) and auditability beats throughput.

/// 64-bit FNV-1a over `bytes` — the workspace's standard content
/// fingerprint.
///
/// Offset basis `0xcbf2_9ce4_8422_2325`, prime `0x0000_0100_0000_01b3`
/// (<https://en.wikipedia.org/wiki/Fowler-Noll-Vo_hash_function>).
/// Used for cache keys, config fingerprints, and consistent-hash ring
/// points; stability across releases matters more than distribution
/// quality.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
///
/// Bitwise implementation — speed is irrelevant at snapshot and frame
/// sizes, auditability is not. Matches the classic zlib/`cksum -o 3`
/// CRC: `crc32(b"123456789") == 0xCBF4_3926`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the FNV specification. If these drift,
    /// every on-disk cache key, certificate fingerprint, and ring
    /// placement in the workspace silently changes.
    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_is_order_sensitive() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    /// The canonical CRC-32 check value, plus edge cases.
    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let clean = b"TSNAP\tv1\nseq\t42\nend\n".to_vec();
        let reference = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
