//! Greedy delta-debugging: cut a failing input set to a minimal
//! reproducer.
//!
//! When a seeded simulation finds a violation, the raw reproducer is
//! the full event set (fault storm, crash points, client load) — far
//! more than the bug needs. [`shrink_events`] removes one event at a
//! time, keeping each removal only if the caller confirms the failure
//! still reproduces, and repeats to a fixpoint. The result is
//! 1-minimal: removing *any* single remaining event makes the failure
//! disappear, which is usually a readable story of what went wrong.

/// Shrinks `events` to a 1-minimal subset for which `reproduces` still
/// returns `true`. Assumes `reproduces(&events)` is `true` on entry
/// (if it is not, the input is returned unchanged). `reproduces` must
/// be deterministic; it is called O(n²) times in the worst case.
pub fn shrink_events<T: Clone>(events: Vec<T>, mut reproduces: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = events;
    if !reproduces(&current) {
        return current;
    }
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if reproduces(&candidate) {
                current = candidate;
                removed_any = true;
                // Same index now names the next event; do not advance.
            } else {
                i += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_culprit() {
        let events: Vec<u32> = (0..20).collect();
        let out = shrink_events(events, |evs| evs.contains(&13));
        assert_eq!(out, vec![13]);
    }

    #[test]
    fn shrinks_to_a_minimal_pair() {
        let events: Vec<u32> = (0..12).collect();
        let out = shrink_events(events, |evs| evs.contains(&3) && evs.contains(&9));
        assert_eq!(out, vec![3, 9]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure needs at least 3 even numbers present.
        let events: Vec<u32> = (0..16).collect();
        let out = shrink_events(events, |evs| {
            evs.iter().filter(|e| *e % 2 == 0).count() >= 3
        });
        assert_eq!(out.len(), 3, "exactly the minimum survives: {out:?}");
        for i in 0..out.len() {
            let mut fewer = out.clone();
            fewer.remove(i);
            assert!(
                fewer.iter().filter(|e| *e % 2 == 0).count() < 3,
                "removing any survivor must break reproduction"
            );
        }
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let events = vec![1, 2, 3];
        let out = shrink_events(events.clone(), |_| false);
        assert_eq!(out, events);
    }

    #[test]
    fn order_of_survivors_is_preserved() {
        let events = vec![5, 1, 4, 2, 3];
        let out = shrink_events(events, |evs| evs.contains(&4) && evs.contains(&3));
        assert_eq!(out, vec![4, 3]);
    }
}
