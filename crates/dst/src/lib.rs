//! `dst` — deterministic simulation testing primitives.
//!
//! The monitoring runtime ([`runtime`](https://docs.rs) crate) promises
//! typed deadlines, bounded staleness, legal breaker transitions, and
//! crash-safe recovery. A wall-clock soak samples *one* nondeterministic
//! interleaving of those mechanisms per run; this crate provides the
//! FoundationDB/TigerBeetle-style substrate that lets a test explore
//! *thousands* of interleavings per second, each one replayable
//! byte-for-byte from a seed:
//!
//! * [`clock`] — the [`Clock`] abstraction over time.
//!   [`SystemClock`] reads the host; [`VirtualClock`] advances only
//!   when the simulation says so, making every timeout, backoff,
//!   cooldown, and staleness bound a deterministic function of the
//!   schedule.
//! * [`fs`] — the [`SimFs`] abstraction over storage. [`RealFs`] is
//!   `std::fs`; [`SimDisk`] is an in-memory filesystem that models
//!   sync/crash semantics: unsynced data tears at a seeded byte
//!   boundary on power loss, renames can be left unjournaled, and
//!   surviving files can suffer bit rot.
//! * [`executor`] — a seeded single-threaded [`Executor`] that runs
//!   cooperative tasks under permuted interleavings, advances the
//!   virtual clock only at quiescence, records the schedule as a
//!   replayable trace, and stops at the first invariant violation.
//! * [`net`] — the [`SimNet`] message fabric for *multi-node*
//!   simulation: typed envelopes between nodes with per-link delay
//!   windows, seeded drop/duplicate/reorder faults, and partitions
//!   that hold in-flight traffic until healed. Paired with
//!   [`SkewedClock`] (per-node offset + drift over one shared
//!   [`VirtualClock`]) and [`NonceNamespace`] (per-node nonce
//!   sequences), a whole fleet runs inside one seeded [`Executor`].
//! * [`shrink`] — [`shrink_events`], the greedy delta-debugging loop
//!   that cuts a failing input set down to a minimal reproducer.
//! * [`par`] — [`run_indexed`], a scoped-thread batch runner whose
//!   index-ordered results make parallel seed sweeps byte-identical
//!   to serial ones.
//! * [`hash`] — the workspace's shared [`fnv1a64`] content
//!   fingerprint and [`crc32`] checksum, used by the consistent-hash
//!   ring, driver cache keys, certificate fingerprints, snapshot
//!   trailers, and the wire protocol's frame check.
//!
//! Nothing here knows about sensors: the crate is generic machinery.
//! The `runtime` crate's `sim` module wires the actual service logic,
//! fault storms, and invariants on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod executor;
pub mod fs;
pub mod hash;
pub mod net;
pub mod par;
pub mod shrink;

pub use clock::{unique_nonce, Clock, NonceNamespace, SkewedClock, SystemClock, VirtualClock};
pub use executor::{Executor, StepRecord, TaskState};
pub use fs::{FsError, RealFs, SimDisk, SimDiskProfile, SimDiskStats, SimFs};
pub use hash::{crc32, fnv1a64};
pub use net::{Envelope, LinkProfile, NetStats, NodeId, SendOutcome, SimNet};
pub use par::run_indexed;
pub use shrink::shrink_events;
