//! A seeded single-threaded scheduler for cooperative tasks.
//!
//! Tasks are closures that take the current virtual time and return a
//! [`TaskState`]: still runnable, asleep until a wake time, or done.
//! Each scheduling round the executor picks one *runnable* task with a
//! seeded RNG and steps it once; when nothing is runnable it advances
//! the [`VirtualClock`] to the earliest wake time (quiescence — the
//! only place time moves). Different seeds therefore explore different
//! interleavings of the same task set, and the same seed replays the
//! same schedule exactly. Every step is appended to a trace of
//! [`StepRecord`]s, and a caller-supplied check runs after each step so
//! a simulation can stop at the first invariant violation with the
//! trace that produced it.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::{Clock, VirtualClock};

/// What a task reports after being stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Has more work now; eligible for the next pick.
    Runnable,
    /// Blocked until virtual time reaches the given millisecond.
    SleepUntil(u64),
    /// Finished; never stepped again.
    Done,
}

/// One scheduling decision, for replayable traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Global step index (0-based).
    pub step: u64,
    /// Virtual time when the task was stepped.
    pub at_ms: u64,
    /// Label of the task that ran.
    pub task: String,
}

struct Task {
    label: String,
    state: TaskState,
    run: Box<dyn FnMut(u64) -> TaskState>,
}

/// The seeded scheduler. See the module docs for semantics.
pub struct Executor {
    clock: Arc<VirtualClock>,
    rng: StdRng,
    tasks: Vec<Task>,
    trace: Vec<StepRecord>,
    steps: u64,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("tasks", &self.tasks.len())
            .field("steps", &self.steps)
            .finish()
    }
}

impl Executor {
    /// An executor whose scheduling decisions are a pure function of
    /// `seed` and whose time is `clock`.
    pub fn new(seed: u64, clock: Arc<VirtualClock>) -> Self {
        Executor {
            clock,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_0000_0000_0000),
            tasks: Vec::new(),
            trace: Vec::new(),
            steps: 0,
        }
    }

    /// Registers a task. `wake_at` is the first virtual time it may
    /// run; the closure receives the current virtual time each step.
    pub fn spawn(
        &mut self,
        label: impl Into<String>,
        wake_at: u64,
        run: impl FnMut(u64) -> TaskState + 'static,
    ) {
        self.tasks.push(Task {
            label: label.into(),
            state: if wake_at == 0 {
                TaskState::Runnable
            } else {
                TaskState::SleepUntil(wake_at)
            },
            run: Box::new(run),
        });
    }

    /// Runs until every task is done, virtual time passes `until_ms`,
    /// `max_steps` is exhausted, or `check` returns a value. The check
    /// runs after *every* step, so the returned trace ends on the exact
    /// step that produced the violation.
    pub fn run<V>(
        &mut self,
        until_ms: u64,
        max_steps: u64,
        mut check: impl FnMut(&StepRecord) -> Option<V>,
    ) -> Option<V> {
        loop {
            if self.steps >= max_steps || self.clock.now_ms() > until_ms {
                return None;
            }
            let now = self.clock.now_ms();
            // Promote sleepers whose wake time has arrived.
            for t in &mut self.tasks {
                if let TaskState::SleepUntil(at) = t.state {
                    if at <= now {
                        t.state = TaskState::Runnable;
                    }
                }
            }
            let runnable: Vec<usize> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == TaskState::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                // Quiescent: jump to the earliest wake time, or stop if
                // every task is done.
                let next_wake = self
                    .tasks
                    .iter()
                    .filter_map(|t| match t.state {
                        TaskState::SleepUntil(at) => Some(at),
                        _ => None,
                    })
                    .min();
                match next_wake {
                    Some(at) => self.clock.advance_to(at),
                    None => return None,
                }
                continue;
            }
            let pick = runnable[self.rng.random_range(0..runnable.len() as u64) as usize];
            let task = &mut self.tasks[pick];
            task.state = (task.run)(now);
            let record = StepRecord {
                step: self.steps,
                at_ms: now,
                task: task.label.clone(),
            };
            self.steps += 1;
            self.trace.push(record);
            let record = self.trace.last().expect("just pushed");
            if let Some(v) = check(record) {
                return Some(v);
            }
        }
    }

    /// The schedule so far.
    pub fn trace(&self) -> &[StepRecord] {
        &self.trace
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn counter_tasks(seed: u64) -> (Vec<StepRecord>, Vec<u64>) {
        let clock = Arc::new(VirtualClock::new());
        let mut ex = Executor::new(seed, Arc::clone(&clock));
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0u64..3 {
            let log = Rc::clone(&log);
            let mut left = 4u64;
            ex.spawn(format!("t{id}"), 0, move |now| {
                log.borrow_mut().push(id * 1000 + now);
                left -= 1;
                if left == 0 {
                    TaskState::Done
                } else {
                    TaskState::SleepUntil(now + 10 * (id + 1))
                }
            });
        }
        let out = ex.run(10_000, 10_000, |_| None::<()>);
        assert!(out.is_none());
        let observed = log.borrow().clone();
        (ex.trace().to_vec(), observed)
    }

    #[test]
    fn same_seed_same_schedule() {
        let (ta, la) = counter_tasks(42);
        let (tb, lb) = counter_tasks(42);
        assert_eq!(ta, tb, "trace must replay exactly");
        assert_eq!(la, lb, "side effects must replay exactly");
        assert_eq!(ta.len(), 12, "3 tasks x 4 steps each");
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let schedules: std::collections::HashSet<Vec<String>> = (0..16u64)
            .map(|s| {
                counter_tasks(s)
                    .0
                    .into_iter()
                    .map(|r| r.task)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(
            schedules.len() > 1,
            "16 seeds should produce more than one distinct schedule"
        );
    }

    #[test]
    fn time_advances_only_at_quiescence() {
        let clock = Arc::new(VirtualClock::new());
        let mut ex = Executor::new(0, Arc::clone(&clock));
        let c2 = Arc::clone(&clock);
        let mut first = true;
        ex.spawn("sleeper", 0, move |now| {
            if first {
                first = false;
                assert_eq!(now, 0);
                TaskState::SleepUntil(500)
            } else {
                assert_eq!(now, 500, "woken exactly at the wake time");
                assert_eq!(c2.now_ms(), 500);
                TaskState::Done
            }
        });
        assert!(ex.run(1_000, 100, |_| None::<()>).is_none());
        assert_eq!(clock.now_ms(), 500, "no drift past the last wake");
        assert_eq!(ex.steps(), 2);
    }

    #[test]
    fn check_stops_on_the_violating_step() {
        let clock = Arc::new(VirtualClock::new());
        let mut ex = Executor::new(9, Arc::clone(&clock));
        ex.spawn("hot", 0, |_| TaskState::Runnable);
        let hit = ex.run(10, 1_000, |r| if r.step == 6 { Some(r.step) } else { None });
        assert_eq!(hit, Some(6));
        assert_eq!(ex.trace().len(), 7, "trace ends on the violating step");
    }

    #[test]
    fn step_budget_bounds_runaway_tasks() {
        let clock = Arc::new(VirtualClock::new());
        let mut ex = Executor::new(1, Arc::clone(&clock));
        ex.spawn("spin", 0, |_| TaskState::Runnable);
        assert!(ex.run(u64::MAX, 50, |_| None::<()>).is_none());
        assert_eq!(ex.steps(), 50);
    }
}
