//! Storage as a capability: the [`SimFs`] trait, the passthrough
//! [`RealFs`], and the fault-injecting in-memory [`SimDisk`].
//!
//! The operations are exactly the ones an atomic-checkpoint path needs
//! — write, fsync, rename, read, list, remove — each a *separate* call
//! so a simulated crash can land between any two of them. [`SimDisk`]
//! models what cheap storage actually does under power loss:
//!
//! * **torn writes** — data written but not fsynced survives a crash
//!   only as a prefix, cut at a seeded byte boundary;
//! * **unjournaled renames** — a rename can be left volatile (the
//!   classic non-journaling-filesystem hazard), so after a crash the
//!   file exists at its final name *with torn contents*;
//! * **bit rot** — a crash can flip one bit in an otherwise durable
//!   file.
//!
//! All injection is driven by a seeded RNG: the same seed tears the
//! same writes at the same boundaries on every run.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failed filesystem operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsError {
    /// The path involved.
    pub path: PathBuf,
    /// Rendered cause.
    pub detail: String,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fs error at {}: {}", self.path.display(), self.detail)
    }
}

impl std::error::Error for FsError {}

fn fs_err(path: &Path, detail: impl fmt::Display) -> FsError {
    FsError {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    }
}

/// The filesystem surface a crash-safe persistence path is written
/// against. Every step of an atomic write (data, fsync, rename) is its
/// own call so a simulator can crash between any two.
pub trait SimFs: Send + Sync + fmt::Debug {
    /// Creates `dir` and its parents.
    ///
    /// # Errors
    ///
    /// [`FsError`] when the directory cannot be created.
    fn create_dir_all(&self, dir: &Path) -> Result<(), FsError>;

    /// Creates (or truncates) `path` with `bytes`. The data is *not*
    /// durable until [`SimFs::sync`] succeeds on the same path.
    ///
    /// # Errors
    ///
    /// [`FsError`] on any write failure.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<(), FsError>;

    /// Makes previously written data at `path` durable (fsync).
    ///
    /// # Errors
    ///
    /// [`FsError`] when the sync fails (the data stays volatile).
    fn sync(&self, path: &Path) -> Result<(), FsError>;

    /// Atomically renames `from` to `to`. Durability of the rename
    /// itself is implementation-defined (see [`SimDiskProfile`]).
    ///
    /// # Errors
    ///
    /// [`FsError`] when the rename fails.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), FsError>;

    /// Reads the current contents of `path` (volatile writes included).
    ///
    /// # Errors
    ///
    /// [`FsError`] when the file is absent or unreadable.
    fn read(&self, path: &Path) -> Result<Vec<u8>, FsError>;

    /// Lists the files directly inside `dir`. A missing directory is an
    /// empty listing, not an error — recovery paths probe directories
    /// that may never have been created.
    ///
    /// # Errors
    ///
    /// [`FsError`] on listing failures other than absence.
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, FsError>;

    /// Removes `path`.
    ///
    /// # Errors
    ///
    /// [`FsError`] when the file is absent or cannot be removed.
    fn remove_file(&self, path: &Path) -> Result<(), FsError>;
}

/// Passthrough to `std::fs` — the implementation a real deployment
/// runs on.
#[derive(Debug, Clone, Default)]
pub struct RealFs;

impl SimFs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> Result<(), FsError> {
        std::fs::create_dir_all(dir).map_err(|e| fs_err(dir, e))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<(), FsError> {
        let mut f = std::fs::File::create(path).map_err(|e| fs_err(path, e))?;
        f.write_all(bytes).map_err(|e| fs_err(path, e))
    }

    fn sync(&self, path: &Path) -> Result<(), FsError> {
        // Re-open for sync: the trait is stateless by design so a
        // simulator can interpose between write and sync.
        let f = std::fs::File::open(path).map_err(|e| fs_err(path, e))?;
        f.sync_all().map_err(|e| fs_err(path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), FsError> {
        std::fs::rename(from, to).map_err(|e| fs_err(from, e))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, FsError> {
        std::fs::read(path).map_err(|e| fs_err(path, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, FsError> {
        match std::fs::read_dir(dir) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(fs_err(dir, e)),
            Ok(entries) => {
                let mut out = Vec::new();
                for entry in entries {
                    out.push(entry.map_err(|e| fs_err(dir, e))?.path());
                }
                out.sort();
                Ok(out)
            }
        }
    }

    fn remove_file(&self, path: &Path) -> Result<(), FsError> {
        std::fs::remove_file(path).map_err(|e| fs_err(path, e))
    }
}

/// How durable a file's current contents are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Durability {
    /// Fully on disk; survives a crash intact.
    Synced,
    /// Data written but not fsynced; tears on crash.
    PendingData,
    /// Data synced but the rename that placed it here is unjournaled;
    /// tears on crash (the file keeps its final name — the hazard the
    /// checkpoint CRC defends against).
    PendingRename,
}

#[derive(Debug, Clone)]
struct FileState {
    content: Vec<u8>,
    durability: Durability,
}

/// Fault-injection tuning for a [`SimDisk`].
#[derive(Debug, Clone)]
pub struct SimDiskProfile {
    /// Probability that a rename is left unjournaled (volatile) — its
    /// target tears if a crash lands before the next sync of that path.
    pub torn_rename_prob: f64,
    /// Probability that a crash flips one bit in one surviving durable
    /// file (bit rot).
    pub bit_rot_prob: f64,
}

impl Default for SimDiskProfile {
    /// A hostile but not absurd disk: a quarter of renames volatile,
    /// bit rot on one crash in twenty.
    fn default() -> Self {
        SimDiskProfile {
            torn_rename_prob: 0.25,
            bit_rot_prob: 0.05,
        }
    }
}

impl SimDiskProfile {
    /// A perfectly well-behaved disk (every operation durable); crashes
    /// still tear unsynced writes, because nothing can save those.
    pub fn pristine() -> Self {
        SimDiskProfile {
            torn_rename_prob: 0.0,
            bit_rot_prob: 0.0,
        }
    }
}

/// Operation counters a simulation can assert against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimDiskStats {
    /// `write_file` calls.
    pub writes: u64,
    /// `sync` calls.
    pub syncs: u64,
    /// `rename` calls.
    pub renames: u64,
    /// Crashes simulated.
    pub crashes: u64,
    /// Files left torn (truncated) by crashes.
    pub torn_files: u64,
    /// Bits flipped by crashes.
    pub bit_flips: u64,
}

#[derive(Debug)]
struct DiskInner {
    files: BTreeMap<PathBuf, FileState>,
    rng: StdRng,
    profile: SimDiskProfile,
    stats: SimDiskStats,
}

/// An in-memory filesystem with seeded crash semantics. See the module
/// docs for the fault model.
#[derive(Debug)]
pub struct SimDisk {
    inner: Mutex<DiskInner>,
}

impl SimDisk {
    /// A disk with the given fault profile, torn boundaries and rot
    /// driven by `seed`.
    pub fn new(seed: u64, profile: SimDiskProfile) -> Self {
        SimDisk {
            inner: Mutex::new(DiskInner {
                files: BTreeMap::new(),
                rng: StdRng::seed_from_u64(seed ^ 0xD15C_0000_0000_0000),
                profile,
                stats: SimDiskStats::default(),
            }),
        }
    }

    /// Simulates power loss: every file with volatile state (unsynced
    /// data or an unjournaled rename) is truncated at a seeded byte
    /// boundary; with [`SimDiskProfile::bit_rot_prob`], one surviving
    /// durable file gets one bit flipped.
    pub fn crash(&self) {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner.stats.crashes += 1;
        let volatile: Vec<PathBuf> = inner
            .files
            .iter()
            .filter(|(_, f)| f.durability != Durability::Synced)
            .map(|(p, _)| p.clone())
            .collect();
        for path in volatile {
            let keep = {
                let len = inner.files[&path].content.len() as u64;
                if len == 0 {
                    0
                } else {
                    inner.rng.random_range(0..len + 1) as usize
                }
            };
            let file = inner.files.get_mut(&path).expect("listed above");
            if keep < file.content.len() {
                file.content.truncate(keep);
                inner.stats.torn_files += 1;
            }
            let file = inner.files.get_mut(&path).expect("listed above");
            file.durability = Durability::Synced; // what's left is all there is
        }
        let rot: f64 = inner.rng.random();
        if rot < inner.profile.bit_rot_prob {
            let candidates: Vec<PathBuf> = inner
                .files
                .iter()
                .filter(|(_, f)| !f.content.is_empty())
                .map(|(p, _)| p.clone())
                .collect();
            if !candidates.is_empty() {
                let pick = inner.rng.random_range(0..candidates.len() as u64) as usize;
                let path = candidates[pick].clone();
                let (byte, bit) = {
                    let len = inner.files[&path].content.len() as u64;
                    (
                        inner.rng.random_range(0..len) as usize,
                        inner.rng.random_range(0..8) as u32,
                    )
                };
                let file = inner.files.get_mut(&path).expect("candidate exists");
                file.content[byte] ^= 1u8 << bit;
                inner.stats.bit_flips += 1;
            }
        }
    }

    /// Current operation counters.
    pub fn stats(&self) -> SimDiskStats {
        self.inner.lock().expect("disk poisoned").stats
    }

    /// Plants a file directly as durable content (test scaffolding).
    pub fn plant(&self, path: impl Into<PathBuf>, bytes: impl Into<Vec<u8>>) {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner.files.insert(
            path.into(),
            FileState {
                content: bytes.into(),
                durability: Durability::Synced,
            },
        );
    }
}

impl SimFs for SimDisk {
    fn create_dir_all(&self, _dir: &Path) -> Result<(), FsError> {
        Ok(()) // directories are implicit in the flat namespace
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<(), FsError> {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner.stats.writes += 1;
        inner.files.insert(
            path.to_path_buf(),
            FileState {
                content: bytes.to_vec(),
                durability: Durability::PendingData,
            },
        );
        Ok(())
    }

    fn sync(&self, path: &Path) -> Result<(), FsError> {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner.stats.syncs += 1;
        match inner.files.get_mut(path) {
            Some(f) => {
                f.durability = Durability::Synced;
                Ok(())
            }
            None => Err(fs_err(path, "sync of nonexistent file")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), FsError> {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner.stats.renames += 1;
        let volatile: f64 = inner.rng.random();
        let torn = volatile < inner.profile.torn_rename_prob;
        let mut file = inner
            .files
            .remove(from)
            .ok_or_else(|| fs_err(from, "rename of nonexistent file"))?;
        if torn {
            file.durability = Durability::PendingRename;
        }
        inner.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, FsError> {
        let inner = self.inner.lock().expect("disk poisoned");
        inner
            .files
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| fs_err(path, "no such file"))
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, FsError> {
        let inner = self.inner.lock().expect("disk poisoned");
        Ok(inner
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn remove_file(&self, path: &Path) -> Result<(), FsError> {
        let mut inner = self.inner.lock().expect("disk poisoned");
        inner
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| fs_err(path, "no such file"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn real_fs_round_trips_and_lists() {
        let dir = std::env::temp_dir().join(format!("dst-realfs-{}", crate::unique_nonce()));
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        assert_eq!(fs.list(&dir).unwrap(), Vec::<PathBuf>::new());
        let tmp = dir.join("a.tmp");
        let fin = dir.join("a.dat");
        fs.write_file(&tmp, b"hello").unwrap();
        fs.sync(&tmp).unwrap();
        fs.rename(&tmp, &fin).unwrap();
        assert_eq!(fs.read(&fin).unwrap(), b"hello");
        assert_eq!(fs.list(&dir).unwrap(), vec![fin.clone()]);
        fs.remove_file(&fin).unwrap();
        assert!(fs.read(&fin).is_err());
        assert_eq!(
            fs.list(&dir.join("never-created")).unwrap(),
            Vec::<PathBuf>::new(),
            "missing directory lists empty"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn synced_data_survives_a_crash_intact() {
        let disk = SimDisk::new(1, SimDiskProfile::pristine());
        disk.write_file(&p("/d/f"), b"durable").unwrap();
        disk.sync(&p("/d/f")).unwrap();
        disk.crash();
        assert_eq!(disk.read(&p("/d/f")).unwrap(), b"durable");
        assert_eq!(disk.stats().torn_files, 0);
    }

    #[test]
    fn unsynced_data_tears_at_a_deterministic_boundary() {
        let run = |seed| {
            let disk = SimDisk::new(seed, SimDiskProfile::pristine());
            disk.write_file(&p("/d/f"), b"0123456789abcdef").unwrap();
            disk.crash();
            disk.read(&p("/d/f")).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same tear boundary");
        assert!(a.len() <= 16);
        assert_eq!(&a[..], &b"0123456789abcdef"[..a.len()], "prefix semantics");
        // Some seed in a small range must actually tear (not all keep 16).
        assert!(
            (0..20u64).any(|s| run(s).len() < 16),
            "tearing must be possible"
        );
    }

    #[test]
    fn unjournaled_rename_tears_the_final_name() {
        // torn_rename_prob = 1: every rename volatile.
        let disk = SimDisk::new(
            3,
            SimDiskProfile {
                torn_rename_prob: 1.0,
                bit_rot_prob: 0.0,
            },
        );
        disk.write_file(&p("/d/x.tmp"), b"full checkpoint contents")
            .unwrap();
        disk.sync(&p("/d/x.tmp")).unwrap();
        disk.rename(&p("/d/x.tmp"), &p("/d/x.ckpt")).unwrap();
        assert_eq!(
            disk.read(&p("/d/x.ckpt")).unwrap(),
            b"full checkpoint contents",
            "before the crash the rename looks complete"
        );
        // Find a seed whose tear actually truncates.
        disk.crash();
        let after = disk.read(&p("/d/x.ckpt")).unwrap();
        assert!(after.len() <= 24);
        assert!(disk.read(&p("/d/x.tmp")).is_err(), "tmp name is gone");
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit() {
        let disk = SimDisk::new(
            11,
            SimDiskProfile {
                torn_rename_prob: 0.0,
                bit_rot_prob: 1.0,
            },
        );
        let body = vec![0u8; 64];
        disk.write_file(&p("/d/f"), &body).unwrap();
        disk.sync(&p("/d/f")).unwrap();
        disk.crash();
        let after = disk.read(&p("/d/f")).unwrap();
        let flipped: u32 = after.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        assert_eq!(disk.stats().bit_flips, 1);
    }

    #[test]
    fn listing_is_per_directory_and_sorted() {
        let disk = SimDisk::new(0, SimDiskProfile::pristine());
        disk.plant("/a/2", b"x".to_vec());
        disk.plant("/a/1", b"y".to_vec());
        disk.plant("/a/sub/3", b"z".to_vec());
        assert_eq!(disk.list(&p("/a")).unwrap(), vec![p("/a/1"), p("/a/2")]);
        assert_eq!(disk.list(&p("/a/sub")).unwrap(), vec![p("/a/sub/3")]);
        assert_eq!(disk.list(&p("/b")).unwrap(), Vec::<PathBuf>::new());
    }
}
