//! Deterministic fan-out: run an indexed batch of independent jobs on
//! a scoped thread pool and return results in index order.
//!
//! DST seed sweeps are embarrassingly parallel — every seed is an
//! isolated simulation — but a parallel sweep is only trustworthy if
//! its *output* is indistinguishable from the serial one. [`run_indexed`]
//! guarantees that by construction: workers self-schedule indices off a
//! shared atomic counter (no per-thread striping, so stragglers don't
//! idle the pool) and write each result into its own pre-allocated
//! slot, so the returned `Vec` is always in index order no matter which
//! worker ran what. Callers that fold the results in index order get
//! byte-identical reports at any `jobs` count — the property the
//! `runtime dst --jobs` CLI and the fleet bench gate on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `count` jobs — `job(i)` for `i` in `0..count` — on `jobs`
/// worker threads and returns the results in index order.
///
/// `jobs == 0` is treated as 1. With `jobs == 1` or `count <= 1` the
/// work runs inline on the caller's thread (no pool, no overhead), so
/// `--jobs 1` is *exactly* the serial path.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_indexed<T, F>(count: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(64, 4, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| format!("seed{}:{}", i, (i as u64).wrapping_mul(0x9E37_79B9));
        let serial = run_indexed(33, 1, f);
        for jobs in [2, 3, 4, 8] {
            assert_eq!(run_indexed(33, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_and_empty_batch_are_fine() {
        assert_eq!(run_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_jobs_than_work_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i + 1), vec![1, 2]);
    }
}
