//! The network as a capability: a seeded, single-threaded message
//! fabric for multi-node deterministic simulation.
//!
//! [`SimNet`] carries typed envelopes between simulated nodes with the
//! failure modes a real datagram fabric exhibits, each one a pure
//! function of the seed and the call sequence:
//!
//! * **delay** — every link samples a per-message latency from its
//!   [`LinkProfile`]'s `[delay_min_ms, delay_max_ms]` window;
//! * **drop** — a message can vanish at send time with the link's
//!   drop probability;
//! * **duplicate** — a message can be delivered twice, the copy with
//!   its own independently sampled delay;
//! * **reorder** — extra jitter can push a later-sent message ahead of
//!   an earlier one;
//! * **partition** — a severed node pair exchanges nothing: sends are
//!   dropped at the cut and messages already in flight are *held*
//!   until the cut heals (the "switch buffered it" model), so healing
//!   a partition can deliver arbitrarily stale traffic — exactly the
//!   hazard a fleet-level staleness invariant must survive;
//! * **node death** — [`SimNet::drop_pending_for`] models a crashed
//!   node's NIC buffer dying with it.
//!
//! Nothing here spawns threads or reads wall clocks. The owning
//! simulation calls [`SimNet::send`] and [`SimNet::poll`] with its own
//! virtual `now`, typically from inside [`crate::Executor`] tasks, so
//! the same seed replays the same deliveries in the same order,
//! byte for byte.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated node's identity inside one [`SimNet`].
pub type NodeId = usize;

/// Per-link behavior: latency window and fault probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Minimum one-way latency, milliseconds.
    pub delay_min_ms: u64,
    /// Maximum one-way latency, milliseconds (inclusive).
    pub delay_max_ms: u64,
    /// Probability a message is dropped at send time, `[0, 1]`.
    pub drop: f64,
    /// Probability a message is delivered twice, `[0, 1]`.
    pub duplicate: f64,
    /// Probability a message takes the slow path (its delay gets
    /// `reorder_jitter_ms` added), letting later sends overtake it.
    pub reorder: f64,
    /// Extra delay applied on the slow path, milliseconds.
    pub reorder_jitter_ms: u64,
}

impl LinkProfile {
    /// A perfect link: zero latency, no faults. What a loopback or an
    /// un-faulted test wants.
    pub fn ideal() -> Self {
        LinkProfile {
            delay_min_ms: 0,
            delay_max_ms: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_jitter_ms: 0,
        }
    }

    /// A healthy LAN link: 1–5 ms latency, no faults.
    pub fn lan() -> Self {
        LinkProfile {
            delay_min_ms: 1,
            delay_max_ms: 5,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_jitter_ms: 0,
        }
    }

    /// A misbehaving link: 1–8 ms latency, 2 % drop, 2 % duplication,
    /// 10 % reorder with 20 ms jitter — the storm profile fleet sweeps
    /// default to.
    pub fn flaky() -> Self {
        LinkProfile {
            delay_min_ms: 1,
            delay_max_ms: 8,
            drop: 0.02,
            duplicate: 0.02,
            reorder: 0.10,
            reorder_jitter_ms: 20,
        }
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::lan()
    }
}

/// One message in flight (or delivered): who sent it, to whom, when,
/// and when the fabric will hand it over.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Fabric-unique message id (monotonic per [`SimNet`]; a duplicate
    /// delivery shares its original's id).
    pub id: u64,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Fabric time at send, milliseconds.
    pub sent_at_ms: u64,
    /// Earliest fabric time the destination can poll it out.
    pub deliver_at_ms: u64,
    /// `true` on the second copy of a duplicated message.
    pub duplicated: bool,
    /// The typed payload.
    pub payload: M,
}

/// What [`SimNet::send`] did with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued for delivery at the given fabric time.
    Queued {
        /// Scheduled delivery time, milliseconds.
        deliver_at_ms: u64,
    },
    /// Dropped by the link's loss process.
    Dropped,
    /// Dropped at a partition cut (the sender's packet hit a dead
    /// route).
    Severed,
}

/// Monotonic fabric counters, for reports and invariants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted by [`SimNet::send`].
    pub sent: u64,
    /// Envelopes handed to a destination by [`SimNet::poll`].
    pub delivered: u64,
    /// Messages dropped by the loss process.
    pub dropped: u64,
    /// Messages dropped at a partition cut.
    pub severed: u64,
    /// Extra copies queued by the duplication process.
    pub duplicated: u64,
    /// Envelopes discarded because their destination died
    /// ([`SimNet::drop_pending_for`]).
    pub died_with_node: u64,
}

/// The seeded message fabric. See the module docs for semantics.
pub struct SimNet<M> {
    rng: StdRng,
    nodes: usize,
    default_link: LinkProfile,
    links: BTreeMap<(NodeId, NodeId), LinkProfile>,
    /// Symmetric severed pairs, stored with `a < b`.
    severed: BTreeSet<(NodeId, NodeId)>,
    queue: Vec<Envelope<M>>,
    next_id: u64,
    stats: NetStats,
}

impl<M> fmt::Debug for SimNet<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("nodes", &self.nodes)
            .field("in_flight", &self.queue.len())
            .field("severed_pairs", &self.severed.len())
            .field("stats", &self.stats)
            .finish()
    }
}

fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<M: Clone> SimNet<M> {
    /// A fabric over `nodes` nodes whose every sample is a pure
    /// function of `seed` and the call sequence. All links start on
    /// `default_link`.
    pub fn new(seed: u64, nodes: usize, default_link: LinkProfile) -> Self {
        SimNet {
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_4E75_0000_0000),
            nodes,
            default_link,
            links: BTreeMap::new(),
            severed: BTreeSet::new(),
            queue: Vec::new(),
            next_id: 0,
            stats: NetStats::default(),
        }
    }

    /// Nodes this fabric connects.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Overrides the profile of the (symmetric) link between `a` and
    /// `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, profile: LinkProfile) {
        self.links.insert(pair(a, b), profile);
    }

    /// Restores the link between `a` and `b` to the fabric default.
    pub fn reset_link(&mut self, a: NodeId, b: NodeId) {
        self.links.remove(&pair(a, b));
    }

    fn link(&self, a: NodeId, b: NodeId) -> &LinkProfile {
        self.links.get(&pair(a, b)).unwrap_or(&self.default_link)
    }

    /// Severs the (symmetric) link between `a` and `b`: sends die at
    /// the cut, in-flight messages are held until [`SimNet::heal_pair`].
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.severed.insert(pair(a, b));
    }

    /// Severs every link crossing the cut between `group` and the rest
    /// of the fabric — a full partition when `group` is one node, a
    /// split-brain when it is several.
    pub fn partition_group(&mut self, group: &[NodeId]) {
        for &a in group {
            for b in 0..self.nodes {
                if !group.contains(&b) {
                    self.severed.insert(pair(a, b));
                }
            }
        }
    }

    /// Heals the cut between `a` and `b`; held messages become
    /// deliverable again at their original schedule.
    pub fn heal_pair(&mut self, a: NodeId, b: NodeId) {
        self.severed.remove(&pair(a, b));
    }

    /// Heals every cut.
    pub fn heal_all(&mut self) {
        self.severed.clear();
    }

    /// `true` while `a` and `b` cannot exchange messages.
    pub fn is_severed(&self, a: NodeId, b: NodeId) -> bool {
        self.severed.contains(&pair(a, b))
    }

    /// Sends `payload` from `src` to `dst` at fabric time `now`,
    /// applying the link's drop/duplicate/reorder processes. Returns
    /// what happened (tests assert on it; simulations usually ignore
    /// it — a datagram send has no ack).
    pub fn send(&mut self, now: u64, src: NodeId, dst: NodeId, payload: M) -> SendOutcome {
        debug_assert!(src < self.nodes && dst < self.nodes, "node out of range");
        if self.is_severed(src, dst) {
            self.stats.severed += 1;
            return SendOutcome::Severed;
        }
        let profile = self.link(src, dst).clone();
        if profile.drop > 0.0 && self.rng.random::<f64>() < profile.drop {
            self.stats.dropped += 1;
            return SendOutcome::Dropped;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.stats.sent += 1;
        let deliver_at_ms = now + self.sample_delay(&profile);
        self.queue.push(Envelope {
            id,
            src,
            dst,
            sent_at_ms: now,
            deliver_at_ms,
            duplicated: false,
            payload: payload.clone(),
        });
        if profile.duplicate > 0.0 && self.rng.random::<f64>() < profile.duplicate {
            let dup_at = now + self.sample_delay(&profile);
            self.stats.duplicated += 1;
            self.queue.push(Envelope {
                id,
                src,
                dst,
                sent_at_ms: now,
                deliver_at_ms: dup_at,
                duplicated: true,
                payload,
            });
        }
        SendOutcome::Queued { deliver_at_ms }
    }

    fn sample_delay(&mut self, profile: &LinkProfile) -> u64 {
        let lo = profile.delay_min_ms;
        let hi = profile.delay_max_ms.max(lo);
        let base = if hi > lo {
            self.rng.random_range(lo..hi + 1)
        } else {
            lo
        };
        if profile.reorder > 0.0 && self.rng.random::<f64>() < profile.reorder {
            base + profile.reorder_jitter_ms
        } else {
            base
        }
    }

    /// Delivers the next due envelope for `dst` at fabric time `now`:
    /// the queued message with the earliest `(deliver_at_ms, id)`
    /// whose delivery time has arrived and whose link is not severed.
    /// Returns `None` when nothing is deliverable — a cut holds
    /// cross-partition traffic in the fabric until healed.
    pub fn poll(&mut self, dst: NodeId, now: u64) -> Option<Envelope<M>> {
        let mut best: Option<usize> = None;
        for (i, e) in self.queue.iter().enumerate() {
            if e.dst != dst || e.deliver_at_ms > now || self.is_severed(e.src, e.dst) {
                continue;
            }
            let better = match best {
                None => true,
                Some(j) => {
                    let b = &self.queue[j];
                    (e.deliver_at_ms, e.id) < (b.deliver_at_ms, b.id)
                }
            };
            if better {
                best = Some(i);
            }
        }
        let idx = best?;
        self.stats.delivered += 1;
        Some(self.queue.remove(idx))
    }

    /// Earliest delivery time of any *deliverable* (un-severed)
    /// in-flight message for `dst`, for executor wake scheduling.
    pub fn next_wake(&self, dst: NodeId) -> Option<u64> {
        self.queue
            .iter()
            .filter(|e| e.dst == dst && !self.is_severed(e.src, e.dst))
            .map(|e| e.deliver_at_ms)
            .min()
    }

    /// Discards every in-flight message addressed to `node` — its NIC
    /// buffer dies with the process. Call this when simulating a node
    /// crash.
    pub fn drop_pending_for(&mut self, node: NodeId) {
        let before = self.queue.len();
        self.queue.retain(|e| e.dst != node);
        self.stats.died_with_node += (before - self.queue.len()) as u64;
    }

    /// Messages currently in flight (held ones included).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Fabric counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_in_order_with_zero_delay() {
        let mut net: SimNet<u32> = SimNet::new(1, 2, LinkProfile::ideal());
        net.send(10, 0, 1, 7);
        net.send(10, 0, 1, 8);
        assert_eq!(net.poll(1, 10).unwrap().payload, 7);
        assert_eq!(net.poll(1, 10).unwrap().payload, 8);
        assert!(net.poll(1, 10).is_none());
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn delay_window_gates_delivery() {
        let mut net: SimNet<u32> = SimNet::new(2, 2, LinkProfile::lan());
        let out = net.send(100, 0, 1, 1);
        let at = match out {
            SendOutcome::Queued { deliver_at_ms } => deliver_at_ms,
            other => panic!("{other:?}"),
        };
        assert!((101..=105).contains(&at), "lan delay 1..=5, got {at}");
        assert!(net.poll(1, at - 1).is_none(), "not due yet");
        assert!(net.poll(1, at).is_some(), "due exactly at schedule");
    }

    #[test]
    fn same_seed_same_fabric_behavior() {
        let run = |seed: u64| {
            let mut net: SimNet<u64> = SimNet::new(seed, 3, LinkProfile::flaky());
            let mut log = Vec::new();
            for i in 0..200u64 {
                let out = net.send(i, (i % 2) as usize, 2, i);
                log.push(format!("{out:?}"));
            }
            let mut t = 0;
            while net.in_flight() > 0 && t < 10_000 {
                if let Some(e) = net.poll(2, t) {
                    log.push(format!("{}@{}dup{}", e.payload, t, e.duplicated));
                } else {
                    t += 1;
                }
            }
            (log, net.stats())
        };
        assert_eq!(run(7), run(7), "identical seed must replay identically");
        assert_ne!(
            run(7).1,
            run(8).1,
            "different seeds explore different fault draws"
        );
    }

    #[test]
    fn partition_holds_traffic_until_heal() {
        let mut net: SimNet<u32> = SimNet::new(3, 2, LinkProfile::ideal());
        net.send(0, 0, 1, 42);
        net.partition_pair(0, 1);
        assert!(net.poll(1, 100).is_none(), "cut holds in-flight traffic");
        assert_eq!(net.send(100, 0, 1, 43), SendOutcome::Severed);
        assert_eq!(net.next_wake(1), None, "held messages do not schedule");
        net.heal_pair(0, 1);
        let e = net.poll(1, 100).expect("heal releases held traffic");
        assert_eq!(e.payload, 42);
        assert_eq!(e.sent_at_ms, 0, "the held message is the stale one");
        assert_eq!(net.stats().severed, 1);
    }

    #[test]
    fn group_partition_severs_exactly_the_cut() {
        let mut net: SimNet<()> = SimNet::new(4, 4, LinkProfile::ideal());
        net.partition_group(&[0, 1]);
        assert!(net.is_severed(0, 2) && net.is_severed(1, 3));
        assert!(!net.is_severed(0, 1), "inside the group stays connected");
        assert!(!net.is_severed(2, 3), "outside the group stays connected");
        net.heal_all();
        assert!(!net.is_severed(0, 2));
    }

    #[test]
    fn dead_node_loses_its_inbox() {
        let mut net: SimNet<u32> = SimNet::new(5, 3, LinkProfile::ideal());
        net.send(0, 0, 1, 1);
        net.send(0, 2, 1, 2);
        net.send(0, 0, 2, 3);
        net.drop_pending_for(1);
        assert!(net.poll(1, 10).is_none(), "inbox died with the node");
        assert_eq!(net.poll(2, 10).unwrap().payload, 3, "others unaffected");
        assert_eq!(net.stats().died_with_node, 2);
    }

    #[test]
    fn duplicates_share_id_and_both_arrive() {
        let mut profile = LinkProfile::ideal();
        profile.duplicate = 1.0; // always duplicate
        let mut net: SimNet<u32> = SimNet::new(6, 2, profile);
        net.send(0, 0, 1, 9);
        let a = net.poll(1, 50).expect("original");
        let b = net.poll(1, 50).expect("duplicate");
        assert_eq!(a.id, b.id, "copies share the message id");
        assert!(!a.duplicated && b.duplicated);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn always_drop_link_never_delivers() {
        let mut profile = LinkProfile::ideal();
        profile.drop = 1.0;
        let mut net: SimNet<u32> = SimNet::new(7, 2, profile);
        for i in 0..50 {
            assert_eq!(net.send(i, 0, 1, 0), SendOutcome::Dropped);
        }
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.stats().dropped, 50);
    }
}
