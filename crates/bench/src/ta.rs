//! T-A — in-text claim: transistor-level optimization brings the
//! non-linearity error below 0.2 % over −50…150 °C.
//!
//! A golden-section search refines the optimal `Wp/Wn` ratio and the
//! resulting worst-case non-linearity is compared against the paper's
//! 0.2 % bar.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::{Gate, GateKind};
use tsense_core::linearity::NonLinearity;
use tsense_core::optimize::{best_ratio, SweepSettings};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;

use crate::write_artifact;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let (ratio, nl) =
        best_ratio(&tech, GateKind::Inv, 1e-6, 5, 1.0, 6.0, &settings).expect("search");

    // The full error trace at the optimum, for the record.
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, ratio).expect("gate");
    let ring = RingOscillator::uniform(gate, 5).expect("ring");
    let curve = ring
        .period_curve(&tech, settings.range, settings.samples)
        .expect("curve");
    let analysis = NonLinearity::of_curve(&curve, settings.fit).expect("analysis");
    let mut csv = String::from("temp_c,nl_pct,err_c\n");
    for i in 0..analysis.temps().len() {
        let _ = writeln!(
            csv,
            "{:.1},{:.6},{:.6}",
            analysis.temps()[i].get(),
            analysis.error_percent()[i],
            analysis.error_celsius()[i]
        );
    }
    write_artifact(out_dir, "ta_optimum_trace.csv", &csv);

    let mut report = String::new();
    report.push_str("T-A — transistor-level optimum of the 5xINV ring\n\n");
    let _ = writeln!(report, "optimal Wp/Wn ratio        : {ratio:.3}");
    let _ = writeln!(report, "worst-case |NL| at optimum : {nl:.4} %FS");
    let _ = writeln!(
        report,
        "temperature-referred error : {:.3} C",
        analysis.max_abs_celsius()
    );
    let _ = writeln!(
        report,
        "paper check (NL < 0.2 %)   : {}",
        if nl < 0.2 { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(report, "optimum trace CSV          : ta_optimum_trace.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ta_report_passes() {
        let dir = std::env::temp_dir().join("tsense_ta_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
