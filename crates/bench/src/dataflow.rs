//! `dataflow` — the parallel incremental netlist-lint driver as a
//! benchmark: lints every shipped certify bundle's full gate-level
//! surface (smart unit, digitizer, 4-channel mux scan) through
//! `netcheck::run_targets` and records what the cache and the worker
//! pool buy.
//!
//! Three questions, three sections:
//!
//! 1. **Coverage**: every `examples/certify/*.toml` bundle must lint
//!    clean under all four dataflow families (NC11xx–NC14xx) — zero
//!    errors, zero warnings.
//! 2. **Cache**: a warm run (every target answered from the on-disk
//!    cache) must be at least 5× faster than the cold run, and the
//!    merged report must stay byte-identical across no-cache, cold,
//!    and warm modes and across worker counts.
//! 3. **Scheduling**: `--jobs N` wall-clock scaling. CPU-bound scaling
//!    is only observable with ≥4 hardware threads, so the JSON records
//!    the core count next to the measured ratio; a latency-bound probe
//!    (targets that wait, as cache-miss I/O does) demonstrates the
//!    pool overlaps stalls on any machine.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use netcheck::{
    check_netlist_dataflow, check_sensor_config, AnalysisTarget, CertifyBundle, DriverOptions,
    Report,
};
use tsense_core::units::{Celsius, Seconds};

use crate::{render_table, write_artifact};

/// Number of timing repetitions; the minimum is reported.
const REPS: usize = 3;

/// Synthetic latency-bound targets for the scheduling probe.
const PROBE_TARGETS: usize = 8;
const PROBE_STALL: Duration = Duration::from_millis(4);

/// One certify bundle linted over its full gate-level surface: the
/// smart unit, the standalone digitizer, and a 4-channel mux scan at
/// slightly spread ring periods.
struct BundleTarget {
    name: String,
    text: String,
}

impl BundleTarget {
    /// The lint period: the bundle's nominal 25 °C ring period, clamped
    /// to the divider toggle-loop floor exactly as the CLI does — the
    /// dataflow families are structural, so the period only picks the
    /// clock-domain roots.
    fn lint_period(&self, bundle: &CertifyBundle) -> Seconds {
        let cfg = &bundle.config;
        let period = cfg
            .ring
            .period(&cfg.tech, Celsius::new(25.0))
            .expect("shipped ring evaluates at nominal temperature");
        let floor_ps =
            2.0 * (dsim::builders::DFF_DELAY_FS + dsim::builders::GATE_DELAY_FS) as f64 * 1e-3;
        Seconds::from_picos(period.as_picos().max(floor_ps))
    }
}

impl AnalysisTarget for BundleTarget {
    fn path(&self) -> &str {
        &self.name
    }

    fn fingerprint_payload(&self) -> Vec<u8> {
        self.text.clone().into_bytes()
    }

    fn rule_set(&self) -> &str {
        "bench-bundle-surface"
    }

    fn analyze(&self) -> Report {
        let bundle = CertifyBundle::parse(&self.text, &self.name).expect("shipped bundle parses");
        let cfg = &bundle.config;
        let mut report = check_sensor_config(cfg);
        let p = self.lint_period(&bundle);
        let unit = sensor::gateunit::GateLevelUnit::new(
            p,
            cfg.ref_clock,
            cfg.settle_cycles,
            cfg.window_cycles,
        )
        .expect("shipped unit builds");
        report.extend(check_netlist_dataflow(unit.netlist()));
        let dig = sensor::digitizer::GateLevelDigitizer::new(p, cfg.ref_clock, cfg.window_cycles)
            .expect("shipped digitizer builds");
        report.extend(check_netlist_dataflow(&dig.netlist()));
        let periods: Vec<Seconds> = (0..4)
            .map(|i| Seconds::from_picos(p.as_picos() * (1.0 + 0.1 * i as f64)))
            .collect();
        let scan =
            sensor::muxscan::GateLevelMuxScan::new(&periods, cfg.ref_clock, cfg.window_cycles)
                .expect("shipped mux scan builds");
        report.extend(check_netlist_dataflow(scan.netlist()));
        report
    }
}

/// A target that stalls instead of computing — the shape of a cache
/// miss waiting on storage. Lets the probe show worker overlap even on
/// a single hardware thread.
struct StallTarget {
    name: String,
}

impl AnalysisTarget for StallTarget {
    fn path(&self) -> &str {
        &self.name
    }

    fn fingerprint_payload(&self) -> Vec<u8> {
        self.name.clone().into_bytes()
    }

    fn rule_set(&self) -> &str {
        "bench-stall-probe"
    }

    fn analyze(&self) -> Report {
        std::thread::sleep(PROBE_STALL);
        Report::new()
    }
}

fn example_bundles() -> Vec<BundleTarget> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/certify");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/certify exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|p| BundleTarget {
            name: p.file_stem().unwrap().to_string_lossy().into_owned(),
            text: std::fs::read_to_string(&p).expect("bundle readable"),
        })
        .collect()
}

fn opts(jobs: usize, cache: Option<&Path>) -> DriverOptions {
    DriverOptions {
        jobs,
        cache_dir: cache.map(Path::to_path_buf),
        ..DriverOptions::default()
    }
}

/// Runs `run_targets` and returns (elapsed, outcome).
fn timed(
    targets: &[&dyn AnalysisTarget],
    o: &DriverOptions,
) -> (Duration, netcheck::DriverOutcome) {
    let t = Instant::now();
    let out = netcheck::run_targets(targets, o);
    (t.elapsed(), out)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if a shipped bundle fails to parse or its gate-level
/// topologies fail to build — the harness is a diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let owned = example_bundles();
    let targets: Vec<&dyn AnalysisTarget> = owned.iter().map(|t| t as _).collect();
    assert!(!targets.is_empty(), "no certify bundles found");

    let scratch = std::env::temp_dir().join("tsense_bench_dataflow_cache");
    let _ = std::fs::remove_dir_all(&scratch);

    // ---- coverage + byte-identity reference (no cache, 1 job) --------
    let (_, reference) = timed(&targets, &opts(1, None));
    let errors = reference.report.count(netcheck::Severity::Error);
    let warnings = reference.report.count(netcheck::Severity::Warning);
    let clean = errors == 0 && warnings == 0;

    // ---- cold / warm / jobs timings (best of REPS) --------------------
    let mut cold_1 = Duration::MAX;
    let mut cold_4 = Duration::MAX;
    let mut identical = true;
    for rep in 0..REPS {
        let d1 = scratch.join(format!("cold1-{rep}"));
        let (t1, o1) = timed(&targets, &opts(1, Some(&d1)));
        cold_1 = cold_1.min(t1);
        let d4 = scratch.join(format!("cold4-{rep}"));
        let (t4, o4) = timed(&targets, &opts(4, Some(&d4)));
        cold_4 = cold_4.min(t4);
        identical &= o1.report.render_text() == reference.report.render_text();
        identical &= o4.report.render_text() == reference.report.render_text();
    }
    let warm_dir = scratch.join("cold1-0");
    let mut warm = Duration::MAX;
    let mut warm_hits = 0usize;
    for _ in 0..REPS {
        let (t, o) = timed(&targets, &opts(1, Some(&warm_dir)));
        warm = warm.min(t);
        warm_hits = o.stats.hits;
        identical &= o.report.render_text() == reference.report.render_text();
    }
    let warm_speedup = ms(cold_1) / ms(warm).max(1e-6);
    let jobs_speedup = ms(cold_1) / ms(cold_4).max(1e-6);

    // ---- latency-bound scheduling probe (no cache) --------------------
    let probe_owned: Vec<StallTarget> = (0..PROBE_TARGETS)
        .map(|i| StallTarget {
            name: format!("stall-{i}"),
        })
        .collect();
    let probe: Vec<&dyn AnalysisTarget> = probe_owned.iter().map(|t| t as _).collect();
    let (probe_1, _) = timed(&probe, &opts(1, None));
    let (probe_4, _) = timed(&probe, &opts(4, None));
    let probe_speedup = ms(probe_1) / ms(probe_4).max(1e-6);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = std::fs::remove_dir_all(&scratch);

    // ---- pass/fail ----------------------------------------------------
    // CPU-bound jobs scaling is only claimable with ≥4 hardware
    // threads; below that the latency probe carries the scheduling
    // claim.
    let scaling_ok = if cores >= 4 {
        jobs_speedup > 1.5
    } else {
        probe_speedup > 1.5
    };
    let pass =
        clean && identical && warm_hits == targets.len() && warm_speedup >= 5.0 && scaling_ok;

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"targets\": {},", targets.len());
    let _ = writeln!(
        json,
        "  \"bundles\": [{}],",
        owned
            .iter()
            .map(|t| format!("\"{}\"", t.name))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"errors\": {errors},");
    let _ = writeln!(json, "  \"warnings\": {warnings},");
    let _ = writeln!(json, "  \"clean\": {clean},");
    let _ = writeln!(json, "  \"cold_ms_jobs1\": {:.3},", ms(cold_1));
    let _ = writeln!(json, "  \"cold_ms_jobs4\": {:.3},", ms(cold_4));
    let _ = writeln!(json, "  \"warm_ms_jobs1\": {:.3},", ms(warm));
    let _ = writeln!(json, "  \"warm_cache_hits\": {warm_hits},");
    let _ = writeln!(json, "  \"warm_speedup\": {warm_speedup:.2},");
    let _ = writeln!(json, "  \"jobs_speedup\": {jobs_speedup:.2},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"latency_probe\": {{\"targets\": {PROBE_TARGETS}, \"stall_ms\": {}, \
         \"jobs1_ms\": {:.3}, \"jobs4_ms\": {:.3}, \"speedup\": {probe_speedup:.2}}},",
        PROBE_STALL.as_millis(),
        ms(probe_1),
        ms(probe_4)
    );
    let _ = writeln!(json, "  \"byte_identical\": {identical},");
    let _ = writeln!(json, "  \"pass\": {pass}");
    json.push_str("}\n");
    write_artifact(out_dir, "BENCH_netcheck_dataflow.json", &json);

    // ---- report -------------------------------------------------------
    let rows = vec![
        vec![
            "cold, 1 job".to_string(),
            format!("{:.2}", ms(cold_1)),
            "-".to_string(),
        ],
        vec![
            "cold, 4 jobs".to_string(),
            format!("{:.2}", ms(cold_4)),
            format!("{jobs_speedup:.2}x"),
        ],
        vec![
            "warm, 1 job".to_string(),
            format!("{:.2}", ms(warm)),
            format!("{warm_speedup:.2}x"),
        ],
        vec![
            format!(
                "stall probe, 1 job ({PROBE_TARGETS}x{}ms)",
                PROBE_STALL.as_millis()
            ),
            format!("{:.2}", ms(probe_1)),
            "-".to_string(),
        ],
        vec![
            "stall probe, 4 jobs".to_string(),
            format!("{:.2}", ms(probe_4)),
            format!("{probe_speedup:.2}x"),
        ],
    ];
    let mut report = String::from("dataflow: parallel incremental netlist-lint driver\n\n");
    report.push_str(&render_table(&["mode", "wall ms", "speedup"], &rows));
    let _ = writeln!(
        report,
        "\n{} bundles x 3 topologies: {errors} error(s), {warnings} warning(s)",
        targets.len()
    );
    let _ = writeln!(
        report,
        "reports byte-identical across modes/jobs: {identical}; warm hits {warm_hits}/{}",
        targets.len()
    );
    let _ = writeln!(report, "hardware threads: {cores}");
    let _ = writeln!(report, "overall: {}", if pass { "PASS" } else { "FAIL" });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_bench_is_clean_cached_and_deterministic() {
        let dir = std::env::temp_dir().join("tsense_bench_dataflow_test");
        let report = run(&dir);
        assert!(report.contains("overall: PASS"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_netcheck_dataflow.json")).unwrap();
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"byte_identical\": true"), "{json}");
        assert!(json.contains("\"pass\": true"), "{json}");
    }
}
