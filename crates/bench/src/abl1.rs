//! Abl-1 — calibration scheme versus accuracy under process variation.
//!
//! Monte-Carlo over die-to-die (threshold, drive) and within-die (width
//! mismatch) variation: how much worst-case temperature error survives
//! two-point calibration (which absorbs offset *and* slope) compared to
//! one-point calibration (offset only, typical slope)?

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::TempRange;
use tsense_core::variation::{MonteCarloStudy, VariationSpec};

use crate::{render_table, write_artifact};

/// Trials per sigma setting (deterministic seed).
pub const TRIALS: usize = 60;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");

    let sigma_scales = [0.5, 1.0, 2.0];
    let mut rows = Vec::new();
    let mut csv = String::from(
        "sigma_scale,two_point_mean_c,two_point_p95_c,one_point_mean_c,one_point_p95_c\n",
    );
    let mut pass = true;
    for &scale in &sigma_scales {
        let base = VariationSpec::default();
        let spec = VariationSpec {
            sigma_vth: base.sigma_vth * scale,
            sigma_kdrive_rel: base.sigma_kdrive_rel * scale,
            sigma_width_rel: base.sigma_width_rel * scale,
        };
        let study = MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 21, TRIALS, 2005)
            .expect("monte carlo");
        let (two_mean, _) = study.two_point_stats();
        let (one_mean, _) = study.one_point_stats();
        let two_p95 = study.percentile_95(|t| t.two_point_err_c);
        let one_p95 = study.percentile_95(|t| t.one_point_err_c);
        pass &= two_mean < one_mean;
        let _ = writeln!(
            csv,
            "{scale},{two_mean:.4},{two_p95:.4},{one_mean:.4},{one_p95:.4}"
        );
        rows.push(vec![
            format!("{scale:.1}x"),
            format!("{two_mean:.3}"),
            format!("{two_p95:.3}"),
            format!("{one_mean:.3}"),
            format!("{one_p95:.3}"),
        ]);
    }
    write_artifact(out_dir, "abl1_calibration.csv", &csv);

    let mut report = String::new();
    report.push_str(&format!(
        "Abl-1 — calibration scheme under process variation ({TRIALS} dies per row)\n\n"
    ));
    report.push_str(&render_table(
        &[
            "sigma",
            "2pt mean C",
            "2pt p95 C",
            "1pt mean C",
            "1pt p95 C",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\ntwo-point beats one-point at every sigma: {}",
        if pass { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(report, "series CSV: abl1_calibration.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl1_report_passes() {
        let dir = std::env::temp_dir().join("tsense_abl1_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
