//! T-D — the introduction's motivation claims, reproduced on the
//! thermal substrate: a 64-bit RISC-class die reaching ≈135 °C, and the
//! junction-temperature rise growing ≈3.2× from 0.35 µm to 0.13 µm
//! under equivalent conditions.

use std::fmt::Write as _;
use std::path::Path;

use thermal::scenario::{default_node_ladder, risc_hotspot, scaling_study};

use crate::{render_table, write_artifact};

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let mut report = String::new();
    report.push_str("T-D — introduction claims on the thermal substrate\n");

    // RISC hotspot.
    let grid = risc_hotspot().expect("hotspot scenario");
    let _ = writeln!(
        report,
        "\n1) 64-bit RISC-class die (16 W, 1.44 cm2, theta_JA = 6 K/W):"
    );
    let _ = writeln!(
        report,
        "   peak junction temperature : {:.1} C",
        grid.max_temp()
    );
    let _ = writeln!(
        report,
        "   die gradient              : {:.1} C",
        grid.max_temp() - grid.min_temp()
    );
    let _ = writeln!(
        report,
        "   paper check (~135 C junction): {}",
        if grid.max_temp() > 110.0 && grid.max_temp() < 170.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // Scaling study.
    let rows_data = scaling_study(0.01, 5.0, &default_node_ladder()).expect("scaling study");
    let mut csv = String::from("node,feature_um,die_edge_mm,power_w,density_w_cm2,peak_c,rise_k\n");
    let mut rows = Vec::new();
    for r in &rows_data {
        let _ = writeln!(
            csv,
            "{},{:.2},{:.2},{:.2},{:.1},{:.1},{:.1}",
            r.node,
            r.feature_um,
            r.die_edge_m * 1e3,
            r.power_w,
            r.power_density_w_cm2,
            r.peak_temp_c,
            r.peak_rise_k
        );
        rows.push(vec![
            r.node.clone(),
            format!("{:.2}", r.die_edge_m * 1e3),
            format!("{:.2}", r.power_w),
            format!("{:.1}", r.power_density_w_cm2),
            format!("{:.1}", r.peak_temp_c),
            format!("{:.1}", r.peak_rise_k),
        ]);
    }
    write_artifact(out_dir, "td_scaling.csv", &csv);
    report.push_str("\n2) same design shrunk across nodes (same package):\n");
    report.push_str(&render_table(
        &[
            "node",
            "edge (mm)",
            "power (W)",
            "W/cm2",
            "peak C",
            "rise K",
        ],
        &rows,
    ));
    let ratio =
        rows_data.last().expect("rows").peak_rise_k / rows_data.first().expect("rows").peak_rise_k;
    let _ = writeln!(
        report,
        "\n0.13 um / 0.35 um junction-rise ratio: {ratio:.2} (paper cites 3.2x) -> {}",
        if ratio > 2.2 && ratio < 4.5 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "series CSV: td_scaling.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn td_report_passes() {
        let dir = std::env::temp_dir().join("tsense_td_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
