//! `sta` — STA-vs-transient temperature sweep: same transfer function,
//! two independent engines, and the wall-clock ratio between them.
//!
//! A Fig. 2-style 5-point sweep of a 5-inverter ring is evaluated
//! twice:
//!
//! * **transient** — the transistor-level route: build the spicelite
//!   ring, run a transient at every temperature, measure crossings
//!   (`stdcell::ring::TransistorRing::period_curve`);
//! * **STA** — the timing-graph route: price each stage's delay pair
//!   analytically and sum Eq. 1 around the loop (`sta::transfer`), no
//!   simulation anywhere.
//!
//! The report records both period curves, both wall times, the speedup,
//! and the worst relative period difference. The two engines rest on
//! *different* device models (Level-1 SPICE vs alpha-power), so the
//! difference is recorded as context, not asserted — the exactness
//! claim lives in the `sta`-vs-`dsim` cross-validation suite, where
//! both sides share one delay model.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use sta::AnalyticalModel;
use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;

use crate::{render_table, write_artifact};

/// The sweep temperatures, °C (Fig. 2 pitch at 5 points).
pub const SWEEP_TEMPS_C: [f64; 5] = [-50.0, 0.0, 50.0, 100.0, 150.0];

/// The `Wp/Wn` sizing ratio both engines use.
pub const RATIO: f64 = 2.0;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if either engine fails — the harness is a diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let kinds = [GateKind::Inv; 5];

    // ---- transient path (transistor-level) ----------------------------
    let lib = CellLibrary::um350(RATIO);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("ring");
    let t0 = Instant::now();
    let sim_curve = ring.period_curve(&SWEEP_TEMPS_C).expect("transient sweep");
    let transient_s = t0.elapsed().as_secs_f64();

    // ---- STA path (timing graph) --------------------------------------
    let model = AnalyticalModel::um350(RATIO);
    let t0 = Instant::now();
    let sta_periods: Vec<f64> = SWEEP_TEMPS_C
        .iter()
        .map(|&t| sta::period_at(&kinds, &model, t).expect("sta period"))
        .collect();
    let sta_s = t0.elapsed().as_secs_f64();

    let speedup = transient_s / sta_s.max(1e-9);
    let max_rel_diff = sim_curve
        .iter()
        .zip(&sta_periods)
        .map(|(&(_, sim), &sta)| ((sta - sim) / sim).abs())
        .fold(0.0_f64, f64::max);

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"ring\": \"5xINV\",");
    let _ = writeln!(json, "  \"ratio\": {RATIO},");
    let _ = writeln!(
        json,
        "  \"temps_c\": [{}],",
        SWEEP_TEMPS_C.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(
        json,
        "  \"transient_periods_s\": [{}],",
        sim_curve
            .iter()
            .map(|&(_, p)| format!("{p:e}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"sta_periods_s\": [{}],",
        sta_periods
            .iter()
            .map(|p| format!("{p:e}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"transient_wall_s\": {transient_s:.6},");
    let _ = writeln!(json, "  \"sta_wall_s\": {sta_s:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.1},");
    let _ = writeln!(json, "  \"max_rel_period_diff\": {max_rel_diff:.6}");
    json.push('}');
    json.push('\n');
    write_artifact(out_dir, "BENCH_sta_sweep.json", &json);

    // ---- report -------------------------------------------------------
    let rows: Vec<Vec<String>> = SWEEP_TEMPS_C
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let sim = sim_curve[i].1;
            let sta = sta_periods[i];
            vec![
                format!("{t:.0}"),
                format!("{:.4}", sim * 1e9),
                format!("{:.4}", sta * 1e9),
                format!("{:+.2}", 100.0 * (sta - sim) / sim),
            ]
        })
        .collect();
    let mut report = String::new();
    report.push_str("sta — STA vs transient 5-point temperature sweep (5xINV ring)\n\n");
    report.push_str(&render_table(
        &["temp C", "transient ns", "STA ns", "diff %"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\ntransient sweep: {transient_s:.3} s   STA sweep: {sta_s:.6} s   speedup: {speedup:.0}x"
    );
    let _ = writeln!(
        report,
        "speedup check (STA at least 10x faster): {}",
        if speedup >= 10.0 { "PASS" } else { "FAIL" }
    );
    // Sanity, not equality: different device models, same physics.
    let _ = writeln!(
        report,
        "shape check (period grows with T in both engines): {}",
        if sim_curve.windows(2).all(|w| w[1].1 > w[0].1)
            && sta_periods.windows(2).all(|w| w[1] > w[0])
        {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "max relative period difference: {max_rel_diff:.4}");
    let _ = writeln!(report, "artifact: BENCH_sta_sweep.json");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sta_sweep_report_passes_its_checks() {
        let dir = std::env::temp_dir().join("tsense_sta_sweep_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("BENCH_sta_sweep.json").exists());
    }
}
