//! Fig. 1 — transient simulation of a 5-stage inverter ring oscillator.
//!
//! The paper shows an HSPICE waveform of the ring output over a
//! 0–1500 ps window. We elaborate the same circuit from the 0.35 µm
//! standard-cell library, run the spicelite transient, dump the waveform
//! as CSV and render a coarse ASCII oscillogram, and report the measured
//! period/frequency.

use std::fmt::Write as _;
use std::path::Path;

use stdcell::library::CellLibrary;
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::units::Celsius;

use crate::write_artifact;

/// ASCII rendering of one signal over time (rows = voltage bins).
fn ascii_scope(times: &[f64], values: &[f64], vdd: f64, width: usize, height: usize) -> String {
    let t_max = times.last().copied().unwrap_or(1.0);
    let mut grid = vec![vec![' '; width]; height];
    for (t, v) in times.iter().zip(values) {
        let col = ((t / t_max) * (width - 1) as f64).round() as usize;
        let row = (((vdd - v) / vdd).clamp(0.0, 1.0) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{vdd:4.1}V |")
        } else if i == height - 1 {
            " 0.0V |".to_string()
        } else {
            "      |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "       0 ps{:>width$}",
        format!("{:.0} ps", t_max * 1e12),
        width = width - 4
    );
    out
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if the simulation or measurement fails (harness policy:
/// failures are loud).
pub fn run(out_dir: &Path) -> String {
    let lib = CellLibrary::um350(2.0);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("5-stage ring");
    let wave = ring.simulate(27.0, 1.5e-9, 1e-12).expect("transient");
    write_artifact(out_dir, "fig1_waveform.csv", &wave.to_csv());

    let period = wave.period("n0", 0.5 * ring.vdd(), 2).expect("period");
    let freq = 1.0 / period;
    let (lo, hi) = wave.extrema("n0").expect("extrema");

    // Measured ring power: average supply current over the settled part
    // of the run (the branch current of a sourcing supply is negative in
    // the SPICE convention).
    let i_avg = wave
        .average("i(VDD)", 0.3e-9, 1.5e-9)
        .expect("supply current");
    let measured_power_mw = -i_avg * ring.vdd() * 1e3;
    // The analytical layer's estimate for the same topology.
    let tech = lib.analytical_technology();
    let ana_ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let ana_power_mw = ana_ring
        .dynamic_power(&tech, Celsius::new(27.0))
        .expect("power")
        .get()
        * 1e3;

    let times = wave.times().to_vec();
    let values = wave.signal("n0").expect("probe node").to_vec();
    let scope = ascii_scope(&times, &values, ring.vdd(), 100, 16);

    let mut report = String::new();
    report.push_str("Fig. 1 — transient of a 5-stage inverter ring (0.35 um, 3.3 V, 27 C)\n\n");
    report.push_str(&scope);
    let _ = writeln!(report);
    let _ = writeln!(report, "measured period     : {:.1} ps", period * 1e12);
    let _ = writeln!(report, "measured frequency  : {:.2} GHz", freq / 1e9);
    let _ = writeln!(report, "output swing        : {lo:.2} V .. {hi:.2} V");
    let _ = writeln!(
        report,
        "measured ring power : {measured_power_mw:.2} mW (analytical estimate {ana_power_mw:.2} mW)"
    );
    let _ = writeln!(
        report,
        "paper check         : several full periods inside the 1500 ps window -> {}",
        if 1.5e-9 / period >= 3.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "waveform CSV        : fig1_waveform.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_report_passes_its_own_check() {
        let dir = std::env::temp_dir().join("tsense_fig1_test");
        let report = run(&dir);
        assert!(report.contains("PASS"), "{report}");
        assert!(dir.join("fig1_waveform.csv").exists());
    }

    #[test]
    fn ascii_scope_draws_both_rails() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 1e-12).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| {
                if (t * 1e12) as u64 % 20 < 10 {
                    0.0
                } else {
                    3.3
                }
            })
            .collect();
        let s = ascii_scope(&times, &values, 3.3, 60, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('*'), "high rail drawn");
        assert!(lines[7].contains('*'), "low rail drawn");
    }
}
