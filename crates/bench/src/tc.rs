//! T-C — the smart unit of Section 3: period-to-digital conversion,
//! oscillator disable, busy flag, and multiplexed thermal mapping.
//!
//! Four sub-demonstrations:
//! 1. a calibrated unit converting junction temperatures to digital
//!    words across the range;
//! 2. the behavioural digitizer cross-checked against the gate-level
//!    counter design simulated on `dsim`;
//! 3. the self-heating benefit of the disable feature;
//! 4. a 3×3 multiplexed array mapping a RISC-class hotspot die.

use std::fmt::Write as _;
use std::path::Path;

use sensor::digitizer::GateLevelDigitizer;
use sensor::muxscan::GateLevelMuxScan;
use sensor::selfheat::{study, SelfHeatModel};
use sensor::unit::{SensorConfig, SmartSensorUnit};
use sensor::SensorArray;
use thermal::scenario::risc_hotspot;
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Seconds, TempRange};

use crate::{render_table, write_artifact};

fn calibrated_unit() -> SmartSensorUnit {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech)).expect("unit");
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
        .expect("cal");
    unit
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let mut report = String::new();
    report.push_str("T-C — the smart temperature-sensor unit (paper Section 3)\n");

    // 1. Conversion sweep.
    let mut unit = calibrated_unit();
    let mut rows = Vec::new();
    let mut csv = String::from("true_c,code,measured_c,error_c,conversion_us\n");
    let mut worst = 0.0_f64;
    for t in TempRange::paper().samples(9) {
        let m = unit.measure(t).expect("measure");
        let err = m.temperature.get() - t.get();
        worst = worst.max(err.abs());
        let _ = writeln!(
            csv,
            "{:.1},{},{:.3},{:.4},{:.3}",
            t.get(),
            m.code,
            m.temperature.get(),
            err,
            m.conversion_time.get() * 1e6
        );
        rows.push(vec![
            format!("{:.0}", t.get()),
            m.code.to_string(),
            format!("{:.2}", m.temperature.get()),
            format!("{:+.3}", err),
        ]);
    }
    write_artifact(out_dir, "tc_conversion_sweep.csv", &csv);
    report.push_str("\n1) calibrated conversions across the range:\n");
    report.push_str(&render_table(
        &["true C", "code", "measured C", "error C"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "worst-case conversion error: {worst:.3} C -> {}",
        if worst < 1.0 { "PASS" } else { "FAIL" }
    );

    // 2. Gate-level digitizer cross-check (slower emulated ring so the
    //    counter's flip-flop timing closes).
    report.push_str("\n2) behavioural vs gate-level digitizer (dsim):\n");
    let ref_clock = Hertz::from_mega(1000.0);
    let mut rows = Vec::new();
    let mut worst_lsb = 0i64;
    for &ns in &[1.2, 1.5, 1.8] {
        let d = GateLevelDigitizer::new(Seconds::from_nanos(ns), ref_clock, 64).expect("plan");
        let gate = d.run().expect("gate-level run");
        let expect = d.expected_count();
        worst_lsb = worst_lsb.max((gate.count as i64 - expect as i64).abs());
        rows.push(vec![
            format!("{ns:.1} ns"),
            expect.to_string(),
            gate.count.to_string(),
            gate.events.to_string(),
        ]);
    }
    report.push_str(&render_table(
        &["ring period", "behavioural", "gate-level", "sim events"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "max disagreement: {worst_lsb} LSB -> {}",
        if worst_lsb <= 2 { "PASS" } else { "FAIL" }
    );

    // 2b. The multiplexer at gate level: one digitizer scanning four
    //     emulated ring oscillators.
    report.push_str(
        "
2b) gate-level 4-channel mux scan (shared digitizer):
",
    );
    let mut mux = GateLevelMuxScan::new(
        &[
            Seconds::from_nanos(1.2),
            Seconds::from_nanos(1.5),
            Seconds::from_nanos(1.8),
            Seconds::from_nanos(2.1),
        ],
        ref_clock,
        64,
    )
    .expect("mux scan");
    let readings = mux.scan_all().expect("scan");
    let mut rows = Vec::new();
    let mut mux_ok = true;
    for r in &readings {
        let expect = mux.expected_count(r.channel);
        mux_ok &= (r.count as i64 - expect as i64).abs() <= 3;
        rows.push(vec![
            r.channel.to_string(),
            expect.to_string(),
            r.count.to_string(),
        ]);
    }
    report.push_str(&render_table(
        &["channel", "behavioural", "gate-level"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "all four channels within the async LSB budget -> {}",
        if mux_ok { "PASS" } else { "FAIL" }
    );

    // 3. Self-heating / disable feature.
    report.push_str("\n3) oscillator-disable benefit (self-heating):\n");
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let s = study(
        &ring,
        &tech,
        SelfHeatModel::default_macro(),
        Celsius::new(85.0),
        Seconds::from_micros(20.0),
        Seconds::new(1e-3),
    )
    .expect("study");
    let _ = writeln!(
        report,
        "ring power               : {:.3} mW",
        s.ring_power_w * 1e3
    );
    let _ = writeln!(
        report,
        "continuous self-heating  : {:.3} C",
        s.continuous_error_k
    );
    let _ = writeln!(
        report,
        "duty-cycled ({:.1} % duty) : {:.3} C",
        s.duty * 100.0,
        s.duty_cycled_error_k
    );
    let _ = writeln!(
        report,
        "disable feature helps    : {}",
        if s.duty_cycled_error_k < 0.5 * s.continuous_error_k {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // 4. Multiplexed thermal mapping of the RISC hotspot die.
    report.push_str("\n4) multiplexed 3x3 thermal map of the RISC-class die:\n");
    let grid = risc_hotspot().expect("thermal scenario");
    let mut array = SensorArray::new();
    for iy in 0..3 {
        for ix in 0..3 {
            let x = 0.002 + 0.004 * ix as f64;
            let y = 0.002 + 0.004 * iy as f64;
            array = array.with_site(format!("s{ix}{iy}"), x, y, calibrated_unit());
        }
    }
    let map = array.scan_grid(&grid).expect("scan");
    let mut csv = String::from("site,x_mm,y_mm,true_c,measured_c,error_c\n");
    let mut rows = Vec::new();
    for p in map.points() {
        let _ = writeln!(
            csv,
            "{},{:.2},{:.2},{:.2},{:.2},{:+.3}",
            p.name,
            p.x_m * 1e3,
            p.y_m * 1e3,
            p.true_c,
            p.measured_c,
            p.error_c()
        );
        rows.push(vec![
            p.name.clone(),
            format!("{:.1},{:.1}", p.x_m * 1e3, p.y_m * 1e3),
            format!("{:.1}", p.true_c),
            format!("{:.1}", p.measured_c),
            format!("{:+.2}", p.error_c()),
        ]);
    }
    write_artifact(out_dir, "tc_thermal_map.csv", &csv);
    report.push_str(&render_table(
        &["site", "pos (mm)", "true C", "measured C", "err C"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "hottest site: {} at {:.1} C (die peak {:.1} C); map max error {:.2} C -> {}",
        map.hottest().name,
        map.hottest().measured_c,
        grid.max_temp(),
        map.max_abs_error_c(),
        if map.max_abs_error_c() < 2.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        report,
        "sequential scan time through the mux: {:.1} us",
        map.scan_time.get() * 1e6
    );
    let _ = writeln!(
        report,
        "artifacts: tc_conversion_sweep.csv, tc_thermal_map.csv"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc_report_passes_all_four_checks() {
        let dir = std::env::temp_dir().join("tsense_tc_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert_eq!(report.matches("PASS").count(), 5, "{report}");
    }
}
