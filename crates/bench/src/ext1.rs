//! Ext-1 — extension study: do complex inverting cells (AOI21/OAI21)
//! improve the cell-mix search?
//!
//! The paper's Section 3 motivates exploiting "the higher flexibility
//! related to the standard-cell style"; real libraries carry inverting
//! cells beyond NAND/NOR. This study reruns the Fig. 3 exhaustive search
//! with the extended cell set at several fixed library sizings and
//! compares the best achievable non-linearity and the number of
//! sub-0.1 % configurations.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::GateKind;
use tsense_core::optimize::{exhaustive_config_search, SweepSettings};
use tsense_core::tech::Technology;

use crate::{render_table, write_artifact};

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let ratios = [1.25, 1.5, 2.0, 3.0];

    let mut rows = Vec::new();
    let mut csv = String::from(
        "ratio,paper_best_nl_pct,paper_sub01_count,ext_best_nl_pct,ext_sub01_count,ext_best_config\n",
    );
    let mut ext_ever_better = false;
    for &ratio in &ratios {
        let paper =
            exhaustive_config_search(&tech, &GateKind::PAPER_SET, 5, 1e-6, ratio, &settings)
                .expect("paper search");
        let ext =
            exhaustive_config_search(&tech, &GateKind::EXTENDED_SET, 5, 1e-6, ratio, &settings)
                .expect("extended search");
        let paper_best = paper[0].max_nl_percent;
        let ext_best = ext[0].max_nl_percent;
        let paper_sub01 = paper.iter().filter(|p| p.max_nl_percent < 0.1).count();
        let ext_sub01 = ext.iter().filter(|p| p.max_nl_percent < 0.1).count();
        ext_ever_better |= ext_best < paper_best - 1e-9;
        let _ = writeln!(
            csv,
            "{ratio},{paper_best:.4},{paper_sub01},{ext_best:.4},{ext_sub01},{}",
            ext[0].config
        );
        rows.push(vec![
            format!("{ratio:.2}"),
            format!("{paper_best:.4}"),
            paper_sub01.to_string(),
            format!("{ext_best:.4}"),
            ext_sub01.to_string(),
            format!("{}", ext[0].config),
        ]);
    }
    write_artifact(out_dir, "ext1_extended_cells.csv", &csv);

    // Stage-budget follow-up: does a 7-stage ring (1716 extended
    // multisets) unlock better mixes than a 5-stage one?
    let best5 = exhaustive_config_search(&tech, &GateKind::EXTENDED_SET, 5, 1e-6, 1.5, &settings)
        .expect("5-stage")[0]
        .max_nl_percent;
    let seven = exhaustive_config_search(&tech, &GateKind::EXTENDED_SET, 7, 1e-6, 1.5, &settings)
        .expect("7-stage");
    let best7 = seven[0].max_nl_percent;
    let seven_desc = format!("{}", seven[0].config);

    let mut report = String::new();
    report.push_str("Ext-1 — extended cell set (+AOI21/OAI21) vs the paper's INV/NAND/NOR set\n\n");
    report.push_str(&render_table(
        &[
            "Wp/Wn",
            "paper best %",
            "#<0.1%",
            "ext best %",
            "#<0.1%",
            "ext best mix",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\ncomplex cells widen the design space (more sub-0.1 % options at every sizing)\n\
         and {} the best achievable non-linearity.",
        if ext_ever_better {
            "sometimes improve"
        } else {
            "never worsen"
        }
    );
    let _ = writeln!(
        report,
        "\nstage budget at Wp/Wn = 1.5: best 5-stage {best5:.4} % vs best 7-stage \
         {best7:.4} % ({seven_desc})\n-> two extra stages buy {}",
        if best7 < 0.9 * best5 {
            "a real linearity improvement (finer mixing granularity)"
        } else {
            "little; the 5-stage granularity already saturates the knob"
        }
    );
    let _ = writeln!(report, "series CSV: ext1_extended_cells.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext1_extended_set_never_worse() {
        // The extended search space contains the paper's space, so its
        // best can only match or beat it — verified at one sizing here
        // (the full sweep runs in the figures binary).
        let tech = Technology::um350();
        let settings = SweepSettings::default();
        let paper = exhaustive_config_search(&tech, &GateKind::PAPER_SET, 5, 1e-6, 1.5, &settings)
            .expect("paper");
        let ext = exhaustive_config_search(&tech, &GateKind::EXTENDED_SET, 5, 1e-6, 1.5, &settings)
            .expect("ext");
        assert!(ext[0].max_nl_percent <= paper[0].max_nl_percent + 1e-12);
        // The extended enumeration is strictly larger: C(11,6) = 462 vs
        // C(9,4) = 126.
        assert_eq!(ext.len(), 462);
        assert_eq!(paper.len(), 126);
    }

    #[test]
    fn ext1_report_writes_artifact() {
        let dir = std::env::temp_dir().join("tsense_ext1_test");
        let report = run(&dir);
        assert!(report.contains("Ext-1"));
        assert!(dir.join("ext1_extended_cells.csv").exists());
    }
}
