//! Abl-2 — digitizer window length versus resolution and conversion
//! time.
//!
//! The counting window is the smart unit's main design knob: doubling it
//! halves the temperature quantum but doubles the conversion (and the
//! oscillator-on, i.e. self-heating) time. This sweep tabulates the
//! trade-off from the closed-form design equations, verifies the 1/M
//! scaling, and combines quantization with the duty-cycled self-heating
//! error into a total error — which has an interior optimum: the window
//! should be made longer only until self-heating takes over.

use std::fmt::Write as _;
use std::path::Path;

use sensor::selfheat::{study, SelfHeatModel};
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::sensitivity::window_tradeoff;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Seconds, TempRange};

use crate::{render_table, write_artifact};

/// Window lengths swept (ring cycles).
pub const WINDOWS: [u32; 8] = [
    1 << 6,
    1 << 8,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
];

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let rows_data = window_tradeoff(
        &ring,
        &tech,
        Hertz::from_mega(100.0),
        &WINDOWS,
        TempRange::paper(),
    )
    .expect("tradeoff");

    // Self-heating per window at a 1 ms measurement repeat interval.
    let repeat = Seconds::new(1e-3);
    let mut csv =
        String::from("window_cycles,resolution_c_per_lsb,conversion_us,selfheat_c,total_err_c\n");
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for (m, res, tconv) in &rows_data {
        let sh = study(
            &ring,
            &tech,
            SelfHeatModel::default_macro(),
            Celsius::new(85.0),
            *tconv,
            Seconds::new(repeat.get().max(tconv.get())),
        )
        .expect("self-heat study");
        // Total worst-case error: half an LSB of quantization plus the
        // oscillator's own heating at readout time.
        let total = 0.5 * res + sh.duty_cycled_error_k;
        totals.push((*m, total));
        let _ = writeln!(
            csv,
            "{m},{res:.5},{:.3},{:.4},{total:.4}",
            tconv.get() * 1e6,
            sh.duty_cycled_error_k
        );
        rows.push(vec![
            format!("2^{}", m.trailing_zeros()),
            format!("{res:.4}"),
            format!("{:.2}", tconv.get() * 1e6),
            format!("{:.4}", sh.duty_cycled_error_k),
            format!("{total:.4}"),
        ]);
    }
    write_artifact(out_dir, "abl2_window.csv", &csv);

    // 1/M scaling check between the first and last rows.
    let m_ratio = WINDOWS[WINDOWS.len() - 1] as f64 / WINDOWS[0] as f64;
    let res_ratio = rows_data[0].1 / rows_data[rows_data.len() - 1].1;
    let scaling_ok = (res_ratio / m_ratio - 1.0).abs() < 1e-6;

    let (best_window, best_total) = totals
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let interior = best_window != WINDOWS[0] && best_window != WINDOWS[WINDOWS.len() - 1];

    let mut report = String::new();
    report.push_str(
        "Abl-2 — digitizer window vs resolution / self-heating (100 MHz ref, 1 ms repeat)\n\n",
    );
    report.push_str(&render_table(
        &[
            "window",
            "resolution (C/LSB)",
            "conversion (us)",
            "self-heat (C)",
            "total (C)",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nresolution scales as 1/M: {} (x{m_ratio:.0} window -> x{res_ratio:.0} finer)",
        if scaling_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "total-error optimum: 2^{} cycles at {best_total:.3} C -> {} (quantization and \
         self-heating trade off)",
        best_window.trailing_zeros(),
        if interior {
            "interior optimum PASS"
        } else {
            "boundary (no interior optimum)"
        }
    );
    let _ = writeln!(report, "series CSV: abl2_window.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl2_report_passes() {
        let dir = std::env::temp_dir().join("tsense_abl2_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
