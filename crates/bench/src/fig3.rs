//! Fig. 3 — non-linearity error for different ring-oscillator cell
//! configurations.
//!
//! The paper's central experiment: keep the library sizing fixed and
//! replace inverters with other inverting cells. We evaluate the six
//! configurations the figure plots at a deliberately suboptimal library
//! ratio (`Wp/Wn = 1.5`, a typical area-optimized library), then run the
//! full exhaustive search over every 5-stage multiset of the paper's
//! cell set to find the best achievable mix — demonstrating the claim
//! that cell selection recovers the linearity that fixed sizing loses.

use std::fmt::Write as _;
use std::path::Path;

use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;
use tsense_core::linearity::{FitKind, NonLinearity};
use tsense_core::optimize::{config_search, exhaustive_config_search, SweepSettings};
use tsense_core::ring::{CellConfig, PeriodCurve};
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Seconds};

use crate::{render_table, write_artifact};

/// Worst-case non-linearity of a transistor-level ring built from a
/// cell configuration, from simulated periods at `n_temps` points.
fn transistor_level_nl(config: &CellConfig, n_temps: usize) -> f64 {
    let lib = CellLibrary::um350(LIBRARY_RATIO);
    let ring = lib.ring_from_config(config).expect("ring");
    let temps: Vec<f64> = (0..n_temps)
        .map(|i| -50.0 + 200.0 * i as f64 / (n_temps - 1) as f64)
        .collect();
    let curve = ring.period_curve(&temps).expect("simulated curve");
    let pc = PeriodCurve::new(
        curve.iter().map(|&(t, _)| Celsius::new(t)).collect(),
        curve.iter().map(|&(_, p)| Seconds::new(p)).collect(),
    );
    NonLinearity::of_curve(&pc, FitKind::LeastSquares)
        .expect("NL analysis")
        .max_abs_percent()
}

/// The fixed library sizing ratio for this experiment.
pub const LIBRARY_RATIO: f64 = 1.5;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let paper_set = CellConfig::paper_fig3_set();
    let ranked =
        config_search(&tech, &paper_set, 1e-6, LIBRARY_RATIO, &settings).expect("config search");

    // CSV of the paper-set traces.
    let mut csv = String::from("temp_c");
    for p in &ranked {
        let _ = write!(
            csv,
            ",nl_pct_{}",
            format!("{}", p.config).replace([' ', '×'], "")
        );
    }
    csv.push('\n');
    let n = ranked[0].nonlinearity.temps().len();
    for i in 0..n {
        let _ = write!(csv, "{:.1}", ranked[0].nonlinearity.temps()[i].get());
        for p in &ranked {
            let _ = write!(csv, ",{:.6}", p.nonlinearity.error_percent()[i]);
        }
        csv.push('\n');
    }
    write_artifact(out_dir, "fig3_nonlinearity.csv", &csv);

    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.config),
                format!("{:.4}", p.max_nl_percent),
                format!("{:.3}", p.nonlinearity.max_abs_celsius()),
            ]
        })
        .collect();

    // Exhaustive search over every odd 5-multiset of the paper's cells.
    let full = exhaustive_config_search(
        &tech,
        &GateKind::PAPER_SET,
        5,
        1e-6,
        LIBRARY_RATIO,
        &settings,
    )
    .expect("exhaustive search");
    let pure_inv = full
        .iter()
        .find(|p| p.config == CellConfig::uniform(GateKind::Inv, 5).expect("valid"))
        .expect("pure ring in enumeration");
    let best = &full[0];
    let top_rows: Vec<Vec<String>> = full
        .iter()
        .take(5)
        .map(|p| vec![format!("{}", p.config), format!("{:.4}", p.max_nl_percent)])
        .collect();

    // Transistor-level cross-check. The analytical layer's curvature
    // balance point differs in detail from the Level-1 transient's, so
    // the analytical ranking is used the way such models are used in
    // practice: as a *candidate generator*. The top analytical mixes are
    // re-simulated at transistor level and the simulated winner must
    // beat the simulated 5xINV baseline.
    let shortlist: Vec<&CellConfig> = full.iter().take(8).map(|p| &p.config).collect();
    let mut sim_rows = Vec::new();
    let mut best_sim_nl = f64::INFINITY;
    let mut best_sim_config = String::new();
    for config in &shortlist {
        let nl = transistor_level_nl(config, 9);
        if nl < best_sim_nl {
            best_sim_nl = nl;
            best_sim_config = format!("{config}");
        }
        sim_rows.push(vec![format!("{config}"), format!("{nl:.4}")]);
    }
    let inv_config = CellConfig::uniform(GateKind::Inv, 5).expect("config");
    let inv_sim_nl = transistor_level_nl(&inv_config, 9);

    let mut report = String::new();
    report.push_str(&format!(
        "Fig. 3 — non-linearity per cell configuration (5 stages, library Wp/Wn = {LIBRARY_RATIO})\n\n",
    ));
    report.push_str("paper's six configurations, ranked:\n");
    report.push_str(&render_table(
        &["configuration", "max |NL| %FS", "max |err| C"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nexhaustive search over all {} odd multisets of {{INV, NAND2, NAND3, NOR2, NOR3}}:",
        full.len()
    );
    report.push_str(&render_table(&["configuration", "max |NL| %FS"], &top_rows));
    let _ = writeln!(
        report,
        "\n5xINV baseline at this sizing : {:.4} %FS",
        pure_inv.max_nl_percent
    );
    let _ = writeln!(
        report,
        "best cell mix                 : {:.4} %FS ({})",
        best.max_nl_percent, best.config
    );
    let _ = writeln!(
        report,
        "paper check (cell selection reduces the error, like resizing would): {}",
        if best.max_nl_percent < 0.5 * pure_inv.max_nl_percent && best.max_nl_percent < 0.2 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    report.push_str(
        "\ntransistor-level re-simulation of the analytical top-8 (spicelite, 9 temps):\n",
    );
    report.push_str(&render_table(&["candidate mix", "sim NL %FS"], &sim_rows));
    let _ = writeln!(
        report,
        "\nsim winner {best_sim_config} at {best_sim_nl:.4} % vs 5xINV {inv_sim_nl:.4} % -> {}",
        if best_sim_nl < inv_sim_nl {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "series CSV: fig3_nonlinearity.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_report_passes_its_check() {
        let dir = std::env::temp_dir().join("tsense_fig3_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("fig3_nonlinearity.csv").exists());
    }
}
