//! `wire` — the real wire-protocol fleet tier as a benchmark: paired
//! open-loop soaks over live TCP, clean and through the seeded chaos
//! proxy, recording throughput, tail latency, and the four fleet
//! invariants.
//!
//! This is the network-boundary analogue of the in-process `soak`
//! experiment: the same supervised cores now sit behind the
//! length-prefixed frame codec, a threaded server with deadlines and
//! backpressure, and a retrying client — so the question becomes
//! *"does the deadline/staleness contract survive a hostile network
//! (latency spikes, truncation, resets, garbage injection) plus a
//! mid-soak crash-recover and a decommission?"*. Both runs must hold
//! all four invariants: honest staleness, no decommissioned shard
//! served, no resurrected cache, at-most-once effects.

use std::fmt::Write as _;
use std::path::Path;

use runtime::{run_wire_soak, RetryPolicy, WireSoakConfig, WireSoakReport};
use wire::chaos::ChaosProfile;

use crate::{render_table, write_artifact};

/// Seed shared by both runs (and CI's seeded chaos smoke soak).
pub const WIRE_SEED: u64 = 42;

/// In-process baseline from `BENCH_runtime_soak.json`, quoted in the
/// report so the wire tier's TCP cost reads against something real.
const BASELINE_QUIET_RPS: f64 = 1287.7;
const BASELINE_CHAOS_RPS: f64 = 1319.5;

fn wire_config(tag: &str, chaos: bool) -> WireSoakConfig {
    // Snapshots are scratch state for the crash-recover leg, not an
    // artifact: keep them out of the results directory.
    let snap_dir = std::env::temp_dir().join(format!(
        "tsense_bench_wire_snap_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&snap_dir).ok();
    let mut cfg = WireSoakConfig {
        seed: WIRE_SEED,
        duration_ms: 2_500,
        rate_hz: 200.0,
        clients: 4,
        chaos: chaos.then(ChaosProfile::hostile),
        client_retry: RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 2,
            max_delay_ms: 40,
            ..RetryPolicy::default()
        },
        crash: Some((1, 1_000)),
        decommission: Some((2, 1_800)),
        ..WireSoakConfig::default()
    };
    cfg.server.snapshot_root = Some(snap_dir);
    cfg
}

fn row(tag: &str, r: &WireSoakReport) -> Vec<String> {
    vec![
        tag.to_string(),
        r.requests.to_string(),
        format!("{:.0}", r.throughput_rps),
        format!("<{}", r.histogram.quantile_ms(0.50)),
        format!("<{}", r.histogram.quantile_ms(0.99)),
        format!("<{}", r.histogram.quantile_ms(0.999)),
        r.server.shed.to_string(),
        r.server.deduped.to_string(),
        r.server.failovers.to_string(),
        r.chaos_faults.map_or("-".into(), |f| f.to_string()),
    ]
}

fn json_block(tag: &str, r: &WireSoakReport) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "  \"{tag}\": {{");
    let _ = writeln!(j, "    \"requests\": {},", r.requests);
    let _ = writeln!(j, "    \"completed\": {},", r.completed);
    let _ = writeln!(j, "    \"failed\": {},", r.failed);
    let _ = writeln!(j, "    \"exhausted\": {},", r.exhausted);
    let _ = writeln!(j, "    \"throughput_rps\": {:.1},", r.throughput_rps);
    let _ = writeln!(j, "    \"mean_latency_ms\": {:.2},", r.histogram.mean_ms());
    let _ = writeln!(j, "    \"p50_ms\": {},", r.histogram.quantile_ms(0.50));
    let _ = writeln!(j, "    \"p99_ms\": {},", r.histogram.quantile_ms(0.99));
    let _ = writeln!(j, "    \"p999_ms\": {},", r.histogram.quantile_ms(0.999));
    let _ = writeln!(j, "    \"max_latency_ms\": {},", r.histogram.max_ms());
    let _ = writeln!(j, "    \"shed\": {},", r.server.shed);
    let _ = writeln!(j, "    \"deduped\": {},", r.server.deduped);
    let _ = writeln!(
        j,
        "    \"duplicate_effects\": {},",
        r.server.duplicate_effects
    );
    let _ = writeln!(j, "    \"failovers\": {},", r.server.failovers);
    let _ = writeln!(j, "    \"bad_frames\": {},", r.server.bad_frames);
    let _ = writeln!(j, "    \"crashes\": {},", r.server.crashes);
    let _ = writeln!(j, "    \"resurrected\": {},", r.server.resurrected);
    let _ = writeln!(
        j,
        "    \"chaos_faults\": {},",
        r.chaos_faults.map_or("null".into(), |f| f.to_string())
    );
    let _ = writeln!(j, "    \"violations\": {},", r.violations.len());
    let _ = writeln!(j, "    \"invariants_ok\": {}", r.invariants_ok());
    j.push_str("  }");
    j
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if a soak cannot start — the harness is a diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let clean = run_wire_soak(&wire_config("clean", false)).expect("clean wire soak");
    let chaos = run_wire_soak(&wire_config("chaos", true)).expect("chaos wire soak");

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {WIRE_SEED},");
    let _ = writeln!(
        json,
        "  \"baseline_in_process\": {{\"quiet_rps\": {BASELINE_QUIET_RPS}, \
         \"chaos_rps\": {BASELINE_CHAOS_RPS}}},"
    );
    json.push_str(&json_block("clean", &clean));
    json.push_str(",\n");
    json.push_str(&json_block("chaos", &chaos));
    json.push_str("\n}\n");
    write_artifact(out_dir, "BENCH_wire_fleet.json", &json);
    write_artifact(
        out_dir,
        "wire_fleet_clean_hist.txt",
        &clean.histogram.render(),
    );
    write_artifact(
        out_dir,
        "wire_fleet_chaos_hist.txt",
        &chaos.histogram.render(),
    );

    // ---- report -------------------------------------------------------
    let mut report = String::new();
    report
        .push_str("wire — fleet tier over live TCP, clean and through the seeded chaos proxy\n\n");
    report.push_str(&render_table(
        &[
            "run",
            "requests",
            "req/s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "shed",
            "deduped",
            "failovers",
            "faults",
        ],
        &[row("clean", &clean), row("chaos", &chaos)],
    ));
    report.push('\n');
    for (tag, r) in [("clean", &clean), ("chaos", &chaos)] {
        let _ = writeln!(
            report,
            "{tag}: four fleet invariants (honest staleness, no decommissioned serve, \
             no resurrected cache, at-most-once): {}",
            if r.invariants_ok() { "PASS" } else { "FAIL" }
        );
        for v in &r.violations {
            let _ = writeln!(report, "{tag}:   violation: {v}");
        }
    }
    let _ = writeln!(
        report,
        "chaos: {} network fault(s) injected, {} retried request(s) deduplicated, \
         {} duplicate effect(s): {}",
        chaos.chaos_faults.unwrap_or(0),
        chaos.server.deduped,
        chaos.server.duplicate_effects,
        if chaos.server.duplicate_effects == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        report,
        "wire tier vs in-process soak baseline: {:.0} req/s clean over TCP vs {:.0} \
         in-process quiet; {:.0} req/s under chaos vs {:.0} in-process chaos",
        clean.throughput_rps, BASELINE_QUIET_RPS, chaos.throughput_rps, BASELINE_CHAOS_RPS,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_report_passes_its_own_checks() {
        let dir = std::env::temp_dir().join("tsense_bench_wire_test");
        std::fs::remove_dir_all(&dir).ok();
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_wire_fleet.json")).unwrap();
        assert!(json.contains("\"invariants_ok\": true"));
        assert!(json.contains("\"duplicate_effects\": 0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
