//! `figures` — regenerate the paper's figures and claims.
//!
//! ```text
//! figures [--out <dir>] <experiment>...|all
//! ```
//!
//! Experiments: fig1 fig2 fig3 ta tb tc td abl1 abl2 abl3 (see DESIGN.md).

use std::path::PathBuf;
use std::process::ExitCode;

use bench::{run_experiment, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out requires a directory argument");
            return ExitCode::FAILURE;
        }
        out_dir = PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--out <dir>] [--list] <experiment>...|all");
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut full = String::new();
    let save_full = ids.len() == ALL_EXPERIMENTS.len();
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(id) {
            eprintln!(
                "unknown experiment `{id}`; known: {}",
                ALL_EXPERIMENTS.join(" ")
            );
            return ExitCode::FAILURE;
        }
        let report = run_experiment(id, &out_dir);
        println!("=== {id} ===");
        println!("{report}");
        if save_full {
            full.push_str(&format!("=== {id} ===\n{report}\n"));
        }
    }
    if save_full {
        bench::write_artifact(&out_dir, "full_report.txt", &full);
        eprintln!(
            "combined report written to {}",
            out_dir.join("full_report.txt").display()
        );
    }
    ExitCode::SUCCESS
}
