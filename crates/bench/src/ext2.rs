//! Ext-2 — extension study: supply-voltage sensitivity of the sensor.
//!
//! Delay-based sensing couples to `V_DD`: supply droop reads as a
//! temperature change. This study tabulates the cross-sensitivity
//! (°C of apparent error per mV of supply error) across sizing ratios
//! and stage counts, and reports the supply-regulation budget needed to
//! keep the droop error below the sensor's own non-linearity.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::{Gate, GateKind};
use tsense_core::linearity::{FitKind, NonLinearity};
use tsense_core::optimize::SweepSettings;
use tsense_core::ring::RingOscillator;
use tsense_core::supply::SupplySensitivity;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Volts};

use crate::{render_table, write_artifact};

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();

    let mut rows = Vec::new();
    let mut csv = String::from("ratio,stages,err_per_mv_c,nl_c,budget_mv_for_nl_equivalent\n");
    for &(ratio, stages) in &[(1.5, 5usize), (2.0, 5), (3.0, 5), (2.0, 9), (2.0, 21)] {
        let gate = Gate::with_ratio(GateKind::Inv, 1e-6, ratio).expect("gate");
        let ring = RingOscillator::uniform(gate, stages).expect("ring");
        let s = SupplySensitivity::at(&ring, &tech, Celsius::new(85.0)).expect("sens");
        let curve = ring
            .period_curve(&tech, settings.range, settings.samples)
            .expect("curve");
        let nl_c = NonLinearity::of_curve(&curve, FitKind::LeastSquares)
            .expect("nl")
            .max_abs_celsius();
        let err_per_mv = s.temp_error_per_mv.abs();
        let budget_mv = nl_c / err_per_mv;
        let _ = writeln!(
            csv,
            "{ratio},{stages},{err_per_mv:.4},{nl_c:.4},{budget_mv:.2}"
        );
        rows.push(vec![
            format!("{ratio:.1}"),
            stages.to_string(),
            format!("{err_per_mv:.3}"),
            format!("{nl_c:.3}"),
            format!("{budget_mv:.2}"),
        ]);
    }
    write_artifact(out_dir, "ext2_supply.csv", &csv);

    // Headline number at the nominal design point.
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate");
    let ring = RingOscillator::uniform(gate, 5).expect("ring");
    let s = SupplySensitivity::at(&ring, &tech, Celsius::new(85.0)).expect("sens");
    let droop_1pct = s.temp_error_for(Volts::new(0.01 * tech.vdd.get())).abs();

    let mut report = String::new();
    report.push_str("Ext-2 — supply-voltage cross-sensitivity of the ring sensor (85 C)\n\n");
    report.push_str(&render_table(
        &["Wp/Wn", "stages", "err (C/mV)", "NL (C)", "budget (mV)"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\na 1 % supply droop at the nominal point reads as {droop_1pct:.1} C of \
         apparent temperature"
    );
    report.push_str(
        "-> the sensor rail must be regulated to a few mV (or droop calibrated out)\n\
         for the cell-mix linearity gains of Fig. 3 to matter in practice.\n",
    );
    let _ = writeln!(report, "series CSV: ext2_supply.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext2_budget_is_tight() {
        // The study's point: the droop budget is millivolts, far tighter
        // than typical digital-supply tolerances.
        let dir = std::env::temp_dir().join("tsense_ext2_test");
        let report = run(&dir);
        assert!(report.contains("Ext-2"));
        assert!(dir.join("ext2_supply.csv").exists());
        let csv = std::fs::read_to_string(dir.join("ext2_supply.csv")).expect("csv");
        for line in csv.lines().skip(1) {
            let budget: f64 = line
                .split(',')
                .nth(4)
                .expect("column")
                .parse()
                .expect("number");
            assert!(budget < 20.0, "budget {budget} mV stays tight");
        }
    }
}
