//! Abl-5 — ablation: accuracy-spec yield under process variation.
//!
//! A thermal-test flow ships every die whose calibrated sensor meets an
//! accuracy spec. This study turns the Monte-Carlo population into the
//! number a product engineer asks for: the fraction of dies within
//! ±X °C, per calibration scheme, as the spec tightens — the yield curve
//! that prices the second tester insertion.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::TempRange;
use tsense_core::variation::{MonteCarloStudy, VariationSpec};

use crate::{render_table, write_artifact};

/// Dies per population.
pub const DIES: usize = 200;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let study = MonteCarloStudy::run(
        &ring,
        &tech,
        &VariationSpec::default(),
        TempRange::paper(),
        21,
        DIES,
        2005,
    )
    .expect("monte carlo");

    let yield_at = |limit: f64, one_point: bool| -> f64 {
        let pass = study
            .trials()
            .iter()
            .filter(|t| {
                let err = if one_point {
                    t.one_point_err_c
                } else {
                    t.two_point_err_c
                };
                err <= limit
            })
            .count();
        100.0 * pass as f64 / study.len() as f64
    };

    let specs = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0];
    let mut rows = Vec::new();
    let mut csv = String::from("spec_c,yield_two_point_pct,yield_one_point_pct\n");
    for &spec in &specs {
        let y2 = yield_at(spec, false);
        let y1 = yield_at(spec, true);
        let _ = writeln!(csv, "{spec},{y2:.1},{y1:.1}");
        rows.push(vec![
            format!("±{spec:.2}"),
            format!("{y2:.1} %"),
            format!("{y1:.1} %"),
        ]);
    }
    write_artifact(out_dir, "abl5_yield.csv", &csv);

    let two_full = yield_at(0.5, false);
    let one_full = yield_at(0.5, true);
    let mut report = String::new();
    report.push_str(&format!(
        "Abl-5 — accuracy-spec yield over {DIES} Monte-Carlo dies (-50..150 C)\n\n"
    ));
    report.push_str(&render_table(
        &["spec (C)", "two-point yield", "one-point yield"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nat a +/-0.5 C spec: two-point ships {two_full:.0} % of dies, one-point {one_full:.0} %"
    );
    let _ = writeln!(
        report,
        "check (two-point saturates yield at a spec where one-point collapses): {}",
        if two_full > 95.0 && one_full < 50.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "series CSV: abl5_yield.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl5_report_passes() {
        let dir = std::env::temp_dir().join("tsense_abl5_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("abl5_yield.csv").exists());
    }
}
