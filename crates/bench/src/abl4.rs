//! Abl-4 — ablation: calibration order versus residual error.
//!
//! How much accuracy does each tester insertion buy, and how does that
//! interact with the ring's intrinsic linearity? One-point (offset
//! only), two-point (offset + slope) and three-point (quadratic)
//! calibrations are evaluated on rings at several `Wp/Wn` ratios: for a
//! curvature-balanced ring the second insertion is enough (the paper's
//! design goal); for a bowed ring the third insertion substitutes for
//! the missing physical linearization.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::calibration::{CalibrationReport, OnePoint, ThreePoint, TwoPoint};
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::TempRange;

use crate::{render_table, write_artifact};

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let range = TempRange::paper();
    let mut rows = Vec::new();
    let mut csv = String::from("ratio,one_point_c,two_point_c,three_point_c\n");
    let mut balanced_two = f64::NAN;
    let mut bowed_two = f64::NAN;
    let mut bowed_three = f64::NAN;
    for &ratio in &[1.5, 2.0, 3.0, 4.0] {
        let ring = RingOscillator::uniform(
            Gate::with_ratio(GateKind::Inv, 1e-6, ratio).expect("gate"),
            5,
        )
        .expect("ring");
        let curve = ring.period_curve(&tech, range, 41).expect("curve");
        let one = OnePoint::fit_ring(&ring, &tech, range.midpoint(), &ring, &tech, range)
            .expect("one-point");
        let two = TwoPoint::fit_ring(&ring, &tech, range.low(), range.high()).expect("two");
        let three = ThreePoint::fit_ring(&ring, &tech, range.low(), range.midpoint(), range.high())
            .expect("three");
        let e1 = CalibrationReport::evaluate(&one, &curve).max_abs_celsius();
        let e2 = CalibrationReport::evaluate(&two, &curve).max_abs_celsius();
        let e3 = CalibrationReport::evaluate(&three, &curve).max_abs_celsius();
        if (ratio - 2.0).abs() < 1e-9 {
            balanced_two = e2;
        }
        if (ratio - 4.0).abs() < 1e-9 {
            bowed_two = e2;
            bowed_three = e3;
        }
        let _ = writeln!(csv, "{ratio},{e1:.4},{e2:.4},{e3:.4}");
        rows.push(vec![
            format!("{ratio:.1}"),
            format!("{e1:.3}"),
            format!("{e2:.3}"),
            format!("{e3:.3}"),
        ]);
    }
    write_artifact(out_dir, "abl4_calibration_order.csv", &csv);

    let mut report = String::new();
    report.push_str("Abl-4 — calibration order vs residual error (worst case over -50..150 C)\n\n");
    report.push_str(&render_table(
        &["Wp/Wn", "1-pt (C)", "2-pt (C)", "3-pt (C)"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nbalanced ring (ratio 2): two-point already reaches {balanced_two:.3} C;"
    );
    let _ = writeln!(
        report,
        "bowed ring (ratio 4): the quadratic recovers {bowed_two:.3} -> {bowed_three:.3} C."
    );
    let _ = writeln!(
        report,
        "check (3-pt rescues the bowed ring by >2x): {}",
        if bowed_three < 0.5 * bowed_two {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        report,
        "check (balanced ring needs no 3rd insertion, already <0.25 C): {}",
        if balanced_two < 0.25 { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(report, "series CSV: abl4_calibration_order.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl4_report_passes() {
        let dir = std::env::temp_dir().join("tsense_abl4_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
