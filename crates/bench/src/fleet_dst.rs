//! `fleet` — the distributed-fleet deterministic simulator as a
//! benchmark: a large seed sweep of the multi-node topology (shards +
//! consistent-hash router + clients over a faulty message fabric),
//! the parallel sweep driver's wall-clock scaling, and the known-bad
//! router mutation's catch/shrink/replay pipeline.
//!
//! Four questions, four sections:
//!
//! 1. **Cleanliness at scale**: ≥1000 fleet seeds — partitions, lossy
//!    and slow links, duplicated datagrams, shard crashes mid-storm,
//!    decommissions, clock skew — with zero fleet-invariant
//!    violations.
//! 2. **Parallel sweep scaling**: `fleet_sweep` at 4 jobs vs serial,
//!    with the merged outcome byte-identical. CPU-bound scaling is
//!    only observable with ≥4 hardware threads, so the JSON records
//!    the core count next to the measured ratio; a latency-bound
//!    probe (sleeping tasks through the same `run_indexed` pool)
//!    demonstrates ≥3× overlap on any machine.
//! 3. **Mutation catch**: the no-decommission-check router must be
//!    caught within 1000 seeds, shrunk to a minimal event scenario,
//!    and the failing seed must replay byte-for-byte.
//! 4. **Honest degradation**: across a sampled slice of the sweep the
//!    router actually failed over, shards actually absorbed duplicated
//!    datagrams, and clients were still served — the counters prove
//!    the fault paths fired rather than idling (stale discards are
//!    also counted, but not gated: the router's timeout-failover
//!    usually abandons a request before a held-stale response lands).

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use runtime::{
    fleet_sweep, run_fleet, shrink_fleet_failure, FleetConfig, FleetInvariant, FleetMutation,
};

use crate::{render_table, write_artifact};

/// Seeds in the headline clean sweep.
const SWEEP_SEEDS: u64 = 1_000;

/// Seeds in each timed scaling run (smaller so REPS stay cheap).
const TIMED_SEEDS: u64 = 120;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 2;

/// Latency-bound probe shape: tasks that sleep instead of computing.
const PROBE_TASKS: usize = 16;
const PROBE_STALL: Duration = Duration::from_millis(4);

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if the simulated fleet cannot be built — the harness is a
/// diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let base = FleetConfig::default();

    // ---- 1. headline clean sweep -------------------------------------
    let t = Instant::now();
    let clean = fleet_sweep(&base, 0, SWEEP_SEEDS, false, 1);
    let clean_elapsed = t.elapsed();
    let clean_ok = clean.violations.is_empty();

    // ---- 2. parallel scaling (byte-identity + wall clock) ------------
    let mut serial_t = Duration::MAX;
    let mut jobs4_t = Duration::MAX;
    let mut identical = true;
    let reference = fleet_sweep(&base, 0, TIMED_SEEDS, false, 1);
    for _ in 0..REPS {
        let t = Instant::now();
        let s = fleet_sweep(&base, 0, TIMED_SEEDS, false, 1);
        serial_t = serial_t.min(t.elapsed());
        identical &= s == reference;
        let t = Instant::now();
        let p = fleet_sweep(&base, 0, TIMED_SEEDS, false, 4);
        jobs4_t = jobs4_t.min(t.elapsed());
        identical &= p == reference;
    }
    let sweep_speedup = ms(serial_t) / ms(jobs4_t).max(1e-6);

    // Latency-bound probe through the same worker pool: sleeping jobs
    // model seeds blocked on anything other than this machine's cores.
    let probe = |jobs: usize| {
        let t = Instant::now();
        let done = dst::run_indexed(PROBE_TASKS, jobs, |i| {
            std::thread::sleep(PROBE_STALL);
            i
        });
        assert_eq!(done.len(), PROBE_TASKS);
        t.elapsed()
    };
    let probe_1 = probe(1);
    let probe_4 = probe(4);
    let probe_speedup = ms(probe_1) / ms(probe_4).max(1e-6);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scaling_ok = if cores >= 4 {
        sweep_speedup >= 3.0
    } else {
        probe_speedup >= 3.0
    };

    // ---- 3. mutation catch / shrink / replay -------------------------
    let mutated = FleetConfig {
        mutation: FleetMutation::NoDecommissionCheck,
        ..base.clone()
    };
    let hunt = fleet_sweep(&mutated, 0, SWEEP_SEEDS, true, 1);
    let caught = hunt.violations.first();
    let caught_ok = caught.is_some_and(|r| {
        r.violation.as_ref().map(|v| v.invariant) == Some(FleetInvariant::RoutedDecommissioned)
    });
    let (caught_seed, seeds_to_catch) = match caught {
        Some(r) => (r.seed, hunt.seeds),
        None => (0, hunt.seeds),
    };
    let (shrunk_events, replay_identical) = match caught {
        Some(r) => {
            let failing = FleetConfig {
                seed: r.seed,
                ..mutated.clone()
            };
            let a = run_fleet(&failing);
            let b = run_fleet(&failing);
            let shrunk = shrink_fleet_failure(&failing)
                .map(|s| s.config.events.map_or(0, |e| e.len()))
                .unwrap_or(usize::MAX);
            (shrunk, a == b)
        }
        None => (usize::MAX, false),
    };
    let shrink_ok = shrunk_events != usize::MAX;

    // ---- 4. honest degradation counters ------------------------------
    // Fabric weather plus crashes must actually have exercised the
    // failover and staleness-discard paths across the clean sweep.
    let mut stale_discarded = 0u64;
    let mut failovers = 0u64;
    let mut duplicates_absorbed = 0u64;
    let mut served = 0u64;
    for seed in 0..40 {
        let r = run_fleet(&FleetConfig {
            seed,
            ..base.clone()
        });
        stale_discarded += r.stale_discarded;
        failovers += r.failovers;
        duplicates_absorbed += r.duplicates_absorbed;
        served += r.served_fresh + r.served_degraded;
    }
    let exercised_ok = failovers > 0 && duplicates_absorbed > 0 && served > 0;

    let pass = clean_ok
        && identical
        && scaling_ok
        && caught_ok
        && shrink_ok
        && replay_identical
        && exercised_ok;

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sweep_seeds\": {},", clean.seeds);
    let _ = writeln!(json, "  \"sweep_steps\": {},", clean.steps);
    let _ = writeln!(json, "  \"sweep_requests\": {},", clean.requests);
    let _ = writeln!(json, "  \"sweep_crashes\": {},", clean.crashes);
    let _ = writeln!(json, "  \"sweep_violations\": {},", clean.violations.len());
    let _ = writeln!(json, "  \"sweep_ms\": {:.1},", ms(clean_elapsed));
    let _ = writeln!(json, "  \"timed_seeds\": {TIMED_SEEDS},");
    let _ = writeln!(json, "  \"serial_ms\": {:.1},", ms(serial_t));
    let _ = writeln!(json, "  \"jobs4_ms\": {:.1},", ms(jobs4_t));
    let _ = writeln!(json, "  \"sweep_speedup\": {sweep_speedup:.2},");
    let _ = writeln!(json, "  \"byte_identical\": {identical},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"latency_probe\": {{\"tasks\": {PROBE_TASKS}, \"stall_ms\": {}, \
         \"jobs1_ms\": {:.3}, \"jobs4_ms\": {:.3}, \"speedup\": {probe_speedup:.2}}},",
        PROBE_STALL.as_millis(),
        ms(probe_1),
        ms(probe_4)
    );
    let _ = writeln!(
        json,
        "  \"mutation\": {{\"name\": \"no-decommission-check\", \"caught\": {caught_ok}, \
         \"caught_seed\": {caught_seed}, \"seeds_scanned\": {seeds_to_catch}, \
         \"shrunk_events\": {}, \"replay_identical\": {replay_identical}}},",
        if shrink_ok {
            shrunk_events.to_string()
        } else {
            "null".to_string()
        }
    );
    let _ = writeln!(json, "  \"stale_discarded\": {stale_discarded},");
    let _ = writeln!(json, "  \"failovers\": {failovers},");
    let _ = writeln!(json, "  \"duplicates_absorbed\": {duplicates_absorbed},");
    let _ = writeln!(json, "  \"served\": {served},");
    let _ = writeln!(json, "  \"pass\": {pass}");
    json.push_str("}\n");
    write_artifact(out_dir, "BENCH_fleet_dst.json", &json);

    // ---- report -------------------------------------------------------
    let rows = vec![
        vec![
            format!("clean sweep ({SWEEP_SEEDS} seeds)"),
            format!("{:.0}", ms(clean_elapsed)),
            format!("{} violation(s)", clean.violations.len()),
        ],
        vec![
            format!("timed sweep, 1 job ({TIMED_SEEDS} seeds)"),
            format!("{:.0}", ms(serial_t)),
            "-".to_string(),
        ],
        vec![
            "timed sweep, 4 jobs".to_string(),
            format!("{:.0}", ms(jobs4_t)),
            format!("{sweep_speedup:.2}x"),
        ],
        vec![
            format!(
                "stall probe, 1 job ({PROBE_TASKS}x{}ms)",
                PROBE_STALL.as_millis()
            ),
            format!("{:.0}", ms(probe_1)),
            "-".to_string(),
        ],
        vec![
            "stall probe, 4 jobs".to_string(),
            format!("{:.0}", ms(probe_4)),
            format!("{probe_speedup:.2}x"),
        ],
    ];
    let mut report = String::from("fleet: distributed-fleet deterministic simulation\n\n");
    report.push_str(&render_table(&["mode", "wall ms", "result"], &rows));
    let _ = writeln!(
        report,
        "\nclean sweep: {} seed(s), {} step(s), {} request(s), {} crash(es)",
        clean.seeds, clean.steps, clean.requests, clean.crashes
    );
    let _ = writeln!(
        report,
        "mutation no-decommission-check: caught={caught_ok} seed={caught_seed} \
         after {seeds_to_catch} seed(s), shrunk to {shrunk_events} event(s), \
         replay byte-identical={replay_identical}"
    );
    let _ = writeln!(
        report,
        "degradation exercised: {failovers} failover(s), {stale_discarded} stale discard(s), \
         {duplicates_absorbed} duplicate(s) absorbed, {served} reading(s) served"
    );
    let _ = writeln!(report, "parallel sweeps byte-identical: {identical}");
    let _ = writeln!(report, "hardware threads: {cores}");
    let _ = writeln!(report, "overall: {}", if pass { "PASS" } else { "FAIL" });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_bench_passes_end_to_end() {
        let dir = std::env::temp_dir().join("tsense_bench_fleet_test");
        let report = run(&dir);
        assert!(report.contains("overall: PASS"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_fleet_dst.json")).unwrap();
        assert!(json.contains("\"sweep_violations\": 0"), "{json}");
        assert!(json.contains("\"caught\": true"), "{json}");
        assert!(json.contains("\"pass\": true"), "{json}");
    }
}
