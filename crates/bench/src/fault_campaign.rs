//! `fault` — the seeded fault-injection campaign as a benchmark: runs
//! the full reference universe plus the CI smoke sample, and records
//! throughput (faults per second) and per-class coverage.
//!
//! The campaign is the robustness analogue of the accuracy figures: it
//! quantifies how much of the modelled defect space the hardened read
//! path either catches (typed error, quarantine, watchdog) or shrugs
//! off (reading stays within tolerance), and proves the two failure
//! modes the hardening exists to eliminate — silent corruption and
//! hangs — stay at zero.

use std::fmt::Write as _;
use std::path::Path;

use faultsim::{reference_universe, run_campaign, CampaignConfig};

use crate::{render_table, write_artifact};

/// The CI smoke sample size (matches the workflow's `--faults`).
pub const SMOKE_FAULTS: usize = 100;

/// The acceptance floor on fault coverage.
pub const COVERAGE_FLOOR: f64 = 0.9;

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if the campaign engine fails — the harness is a diagnostic
/// tool.
pub fn run(out_dir: &Path) -> String {
    // Full enumeration of the reference universe…
    let full = run_campaign(&CampaignConfig {
        faults: 0,
        ..CampaignConfig::default()
    });
    // …and the seeded smoke sample CI runs.
    let smoke = run_campaign(&CampaignConfig {
        faults: SMOKE_FAULTS,
        ..CampaignConfig::default()
    });

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"universe\": {},", reference_universe(false).len());
    let _ = writeln!(json, "  \"seed\": {},", full.config.seed);
    for (tag, r) in [("full", &full), ("smoke", &smoke)] {
        let _ = writeln!(json, "  \"{tag}\": {{");
        let _ = writeln!(json, "    \"faults\": {},", r.runs.len());
        let _ = writeln!(json, "    \"detected\": {},", r.detected());
        let _ = writeln!(json, "    \"benign\": {},", r.benign());
        let _ = writeln!(json, "    \"silent\": {},", r.silent());
        let _ = writeln!(json, "    \"hang\": {},", r.hung());
        let _ = writeln!(json, "    \"panics\": {},", r.panics);
        let _ = writeln!(json, "    \"coverage\": {:.4},", r.coverage());
        let _ = writeln!(json, "    \"elapsed_s\": {:.6},", r.elapsed_s);
        let _ = writeln!(json, "    \"throughput_per_s\": {:.1},", r.throughput());
        let classes: Vec<String> = r
            .per_class()
            .iter()
            .map(|(class, n, det, ben, sil, hung)| {
                format!(
                    "      {{\"class\": \"{class}\", \"total\": {n}, \"detected\": {det}, \
                     \"benign\": {ben}, \"silent\": {sil}, \"hang\": {hung}}}"
                )
            })
            .collect();
        let _ = writeln!(json, "    \"classes\": [\n{}\n    ]", classes.join(",\n"));
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"coverage_floor\": {COVERAGE_FLOOR}");
    json.push('}');
    json.push('\n');
    write_artifact(out_dir, "BENCH_fault_campaign.json", &json);

    // ---- report -------------------------------------------------------
    let rows: Vec<Vec<String>> = full
        .per_class()
        .iter()
        .map(|(class, n, det, ben, sil, hung)| {
            vec![
                class.to_string(),
                n.to_string(),
                det.to_string(),
                ben.to_string(),
                sil.to_string(),
                hung.to_string(),
                format!("{:.1}", 100.0 * (det + ben) as f64 / *n as f64),
            ]
        })
        .collect();
    let mut report = String::new();
    report.push_str("fault — seeded fault-injection campaign over the reference stack\n\n");
    report.push_str(&render_table(
        &[
            "class",
            "total",
            "detected",
            "benign",
            "silent",
            "hang",
            "coverage %",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nfull universe: {} faults in {:.2} s ({:.0} faults/s)",
        full.runs.len(),
        full.elapsed_s,
        full.throughput(),
    );
    let _ = writeln!(
        report,
        "smoke sample:  {} faults in {:.2} s ({:.0} faults/s)",
        smoke.runs.len(),
        smoke.elapsed_s,
        smoke.throughput(),
    );
    for (tag, r) in [("full", &full), ("smoke", &smoke)] {
        let _ = writeln!(
            report,
            "{tag}: zero silent corruption: {}",
            if r.silent() == 0 { "PASS" } else { "FAIL" }
        );
        let _ = writeln!(
            report,
            "{tag}: zero hangs/panics: {}",
            if r.hung() == 0 && r.panics == 0 {
                "PASS"
            } else {
                "FAIL"
            }
        );
        let _ = writeln!(
            report,
            "{tag}: coverage {:.1} % >= {:.0} %: {}",
            r.coverage() * 100.0,
            COVERAGE_FLOOR * 100.0,
            if r.coverage() >= COVERAGE_FLOOR {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_campaign_report_passes_its_own_checks() {
        let dir = std::env::temp_dir().join("tsense_bench_fault_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_fault_campaign.json")).unwrap();
        assert!(json.contains("\"coverage\": 1.0000"));
        assert!(json.contains("\"panics\": 0"));
    }
}
