//! `soak` — the supervised monitoring runtime as a benchmark: paired
//! short soaks with and without a chaos storm, recording throughput,
//! tail latency, and the recovery path's behavior.
//!
//! The soak is the robustness analogue of the accuracy figures one
//! level up the stack from the fault campaign: instead of asking *"is
//! one faulty reading caught?"*, it asks *"does a long-running service
//! keep its deadline/staleness contract while faults strike, clear,
//! and the process itself is killed and recovered mid-storm?"*. The
//! liveness invariants (zero late replies, zero silent-stale reads,
//! breakers re-closed, checkpoint recovery) must PASS in both runs.

use std::fmt::Write as _;
use std::path::Path;

use runtime::{run_soak, RuntimeConfig, SoakConfig, SoakReport};

use crate::{render_table, write_artifact};

/// Seed shared by both runs (and CI's 60-second smoke soak).
pub const SOAK_SEED: u64 = 42;

fn soak_config(tag: &str, chaos: bool) -> SoakConfig {
    // Checkpoints are scratch state, not an artifact: keep them out of
    // the results directory.
    let ckpt_dir = std::env::temp_dir().join(format!(
        "tsense_bench_soak_ckpt_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&ckpt_dir).ok();
    SoakConfig {
        seed: SOAK_SEED,
        duration_ms: 2_000,
        drain_ms: 3_000,
        sites: 9,
        faults: if chaos { 8 } else { 0 },
        clients: 3,
        request_interval_ms: 2,
        restart_at_ms: chaos.then_some(1_000),
        ambient_c: 85.0,
        runtime: RuntimeConfig {
            scan_interval_ms: 25,
            checkpoint_interval_ms: 100,
            snapshot_dir: Some(ckpt_dir),
            ..RuntimeConfig::default()
        },
    }
}

fn row(tag: &str, r: &SoakReport) -> Vec<String> {
    vec![
        tag.to_string(),
        r.requests.to_string(),
        format!("{:.0}", r.throughput_per_s),
        r.p50_latency_ms.to_string(),
        r.p99_latency_ms.to_string(),
        r.served_fresh.to_string(),
        r.served_degraded.to_string(),
        r.typed_errors.to_string(),
        r.breaker_trips.to_string(),
        r.restarts.to_string(),
    ]
}

fn json_block(tag: &str, r: &SoakReport, restart: bool) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "  \"{tag}\": {{");
    let _ = writeln!(j, "    \"requests\": {},", r.requests);
    let _ = writeln!(j, "    \"throughput_per_s\": {:.1},", r.throughput_per_s);
    let _ = writeln!(j, "    \"p50_latency_ms\": {},", r.p50_latency_ms);
    let _ = writeln!(j, "    \"p99_latency_ms\": {},", r.p99_latency_ms);
    let _ = writeln!(j, "    \"max_latency_ms\": {},", r.max_latency_ms);
    let _ = writeln!(j, "    \"served_fresh\": {},", r.served_fresh);
    let _ = writeln!(j, "    \"served_degraded\": {},", r.served_degraded);
    let _ = writeln!(j, "    \"served_shed\": {},", r.served_shed);
    let _ = writeln!(j, "    \"typed_errors\": {},", r.typed_errors);
    let _ = writeln!(j, "    \"deadline_misses\": {},", r.deadline_misses);
    let _ = writeln!(j, "    \"late_replies\": {},", r.late_replies);
    let _ = writeln!(j, "    \"silent_stale\": {},", r.silent_stale);
    let _ = writeln!(j, "    \"injected\": {},", r.injected);
    let _ = writeln!(j, "    \"cleared\": {},", r.cleared);
    let _ = writeln!(j, "    \"breaker_trips\": {},", r.breaker_trips);
    let _ = writeln!(j, "    \"restarts\": {},", r.restarts);
    let _ = writeln!(
        j,
        "    \"recovered_seq\": {},",
        r.recovered_seq.map_or("null".into(), |s| s.to_string())
    );
    let _ = writeln!(
        j,
        "    \"corrupt_snapshots_skipped\": {},",
        r.corrupt_snapshots_skipped
    );
    let _ = writeln!(j, "    \"checkpoints\": {},", r.checkpoints);
    let _ = writeln!(j, "    \"breakers_all_closed\": {},", r.breakers_all_closed);
    let _ = writeln!(j, "    \"quarantined_at_end\": {},", r.quarantined_at_end);
    let _ = writeln!(j, "    \"elapsed_s\": {:.2},", r.elapsed_s);
    let _ = writeln!(j, "    \"liveness_ok\": {}", r.liveness_ok(restart));
    j.push_str("  }");
    j
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if a soak cannot start — the harness is a diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let quiet = run_soak(&soak_config("quiet", false)).expect("quiet soak");
    let chaos = run_soak(&soak_config("chaos", true)).expect("chaos soak");

    // ---- artifacts ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {SOAK_SEED},");
    json.push_str(&json_block("quiet", &quiet, false));
    json.push_str(",\n");
    json.push_str(&json_block("chaos", &chaos, true));
    json.push_str("\n}\n");
    write_artifact(out_dir, "BENCH_runtime_soak.json", &json);

    // ---- report -------------------------------------------------------
    let mut report = String::new();
    report.push_str(
        "soak — supervised runtime under load, with and without a seeded chaos storm\n\n",
    );
    report.push_str(&render_table(
        &[
            "run", "requests", "req/s", "p50 ms", "p99 ms", "fresh", "degraded", "errors", "trips",
            "restarts",
        ],
        &[row("quiet", &quiet), row("chaos", &chaos)],
    ));
    report.push('\n');
    for (tag, r, restart) in [("quiet", &quiet, false), ("chaos", &chaos, true)] {
        let _ = writeln!(
            report,
            "{tag}: zero late replies + zero silent-stale: {}",
            if r.late_replies == 0 && r.silent_stale == 0 {
                "PASS"
            } else {
                "FAIL"
            }
        );
        let _ = writeln!(
            report,
            "{tag}: breakers re-closed, liveness invariants hold: {}",
            if r.liveness_ok(restart) {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    let _ = writeln!(
        report,
        "chaos: kill-and-recover restored checkpoint seq {:?}, skipped {} corrupt snapshot(s): {}",
        chaos.recovered_seq,
        chaos.corrupt_snapshots_skipped,
        if chaos.restarts == 1 && chaos.recovered_seq.is_some() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let slowdown = if chaos.throughput_per_s > 0.0 {
        quiet.throughput_per_s / chaos.throughput_per_s
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        report,
        "throughput under chaos: {:.0} vs {:.0} req/s quiet ({slowdown:.2}x slowdown)",
        chaos.throughput_per_s, quiet.throughput_per_s,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_report_passes_its_own_checks() {
        let dir = std::env::temp_dir().join("tsense_bench_soak_test");
        std::fs::remove_dir_all(&dir).ok();
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_runtime_soak.json")).unwrap();
        assert!(json.contains("\"liveness_ok\": true"));
        assert!(json.contains("\"silent_stale\": 0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
