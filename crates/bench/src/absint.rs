//! `absint` — the abstract-interpretation certifier as a benchmark:
//! certifies the paper's six Fig. 3 cell-mix configurations plus the
//! fully-specified quickstart bundle, and records the derived interval
//! envelopes and the cost of proving them.
//!
//! Two questions, two sections:
//!
//! 1. **Coverage**: every shipped configuration must certify clean
//!    (`PROVEN`, zero error-severity findings) over the full
//!    −50…150 °C × ±5 % supply envelope — the static analogue of the
//!    Fig. 3 accuracy sweep.
//! 2. **Cost**: how long one end-to-end certification takes
//!    (sampling grid → interval chain → rules), and how large the
//!    derivation graph is — the price of the proof, amortized over
//!    every runtime start that can now skip its dynamic preflight.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use netcheck::absint::{certify, CertifyBundle, NodeKind};

use crate::{render_table, write_artifact};

/// The certified configurations: name, `[ring]` mix expression.
pub const CONFIGS: [(&str, &str); 7] = [
    ("quickstart", "5xINV"),
    ("fig3-5inv", "5xINV"),
    ("fig3-3inv-2nand3", "3xINV+2xNAND3"),
    ("fig3-3nand3-2nor2", "3xNAND3+2xNOR2"),
    ("fig3-2inv-3nand3", "2xINV+3xNAND3"),
    ("fig3-5nand2", "5xNAND2"),
    ("fig3-2inv-3nor2", "2xINV+3xNOR2"),
];

/// Builds the bundle text for one configuration (the quickstart entry
/// additionally pins every digitizer knob, mirroring
/// `examples/certify/quickstart.toml`).
fn bundle_text(name: &str, mix: &str) -> String {
    let mut text = format!("[ring]\nname = {name}\nmix = {mix}\n");
    if name == "quickstart" {
        text.push_str(
            "wn_um = 1.0\nratio = 2.0\n\n[tech]\nnode = um350\nsupply_tolerance = 0.05\n\n\
             [digitizer]\nref_clock_mhz = 100\nwindow_cycles = 65536\nsettle_cycles = 64\n\
             counter_bits = 16\nword_bits = 16\n",
        );
    }
    text.push_str("\n[runtime]\ndeadline_ms = 250\nstaleness_bound_ms = 600\n");
    text.push_str("checkpoint_interval_ms = 500\n");
    text
}

/// One certified configuration's measured row.
struct Row {
    name: String,
    proven: bool,
    warnings: usize,
    nodes: usize,
    count_hi: f64,
    step_hi_c: f64,
    conversion_hi_ms: f64,
    elapsed_ms: f64,
}

fn certify_one(name: &str, mix: &str) -> Row {
    let bundle = CertifyBundle::parse(&bundle_text(name, mix), name).expect("bundle parses");
    let started = Instant::now();
    let cert = certify(&bundle).expect("model evaluates");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let node_hi = |kind: NodeKind| {
        cert.graph
            .nodes()
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.interval.hi())
            .fold(f64::NEG_INFINITY, f64::max)
    };
    Row {
        name: name.to_string(),
        proven: cert.is_proven(),
        warnings: cert.report.diagnostics().len(),
        nodes: cert.graph.nodes().len(),
        count_hi: node_hi(NodeKind::CounterCount),
        step_hi_c: node_hi(NodeKind::QuantizationStep),
        conversion_hi_ms: node_hi(NodeKind::ConversionTime) * 1e3,
        elapsed_ms,
    }
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if a shipped bundle fails to parse or the ring model fails
/// to evaluate — the harness is a diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    let rows: Vec<Row> = CONFIGS
        .iter()
        .map(|(name, mix)| certify_one(name, mix))
        .collect();

    // ---- artifacts ----------------------------------------------------
    let mut csv =
        String::from("config,proven,findings,graph_nodes,count_hi_lsb,step_hi_c,conv_hi_ms\n");
    for r in &rows {
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.1},{:.4},{:.4}",
            r.name, r.proven, r.warnings, r.nodes, r.count_hi, r.step_hi_c, r.conversion_hi_ms
        );
    }
    write_artifact(out_dir, "absint_certify.csv", &csv);

    let total_ms: f64 = rows.iter().map(|r| r.elapsed_ms).sum();
    let mut json = String::from("{\n  \"configs\": [\n");
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"proven\": {}, \"findings\": {}, \
                 \"graph_nodes\": {}, \"count_hi_lsb\": {:.1}, \"step_hi_c\": {:.4}, \
                 \"conversion_hi_ms\": {:.4}, \"certify_ms\": {:.3}}}",
                r.name,
                r.proven,
                r.warnings,
                r.nodes,
                r.count_hi,
                r.step_hi_c,
                r.conversion_hi_ms,
                r.elapsed_ms
            )
        })
        .collect();
    let _ = writeln!(json, "{}\n  ],", entries.join(",\n"));
    let _ = writeln!(json, "  \"total_certify_ms\": {total_ms:.3},");
    let _ = writeln!(json, "  \"all_proven\": {}", rows.iter().all(|r| r.proven));
    json.push_str("}\n");
    write_artifact(out_dir, "BENCH_absint_certify.json", &json);

    // ---- report -------------------------------------------------------
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                if r.proven { "PROVEN" } else { "REFUTED" }.to_string(),
                r.warnings.to_string(),
                r.nodes.to_string(),
                format!("{:.0}", r.count_hi),
                format!("{:.3}", r.step_hi_c),
                format!("{:.3}", r.conversion_hi_ms),
                format!("{:.2}", r.elapsed_ms),
            ]
        })
        .collect();
    let mut report = String::from("absint: end-to-end interval certification\n\n");
    report.push_str(&render_table(
        &[
            "config",
            "verdict",
            "findings",
            "nodes",
            "count_hi",
            "step_hi °C",
            "conv_hi ms",
            "certify ms",
        ],
        &table_rows,
    ));
    let all_proven = rows.iter().all(|r| r.proven);
    let _ = writeln!(
        report,
        "\nall {} shipped configurations proven: {}",
        rows.len(),
        if all_proven { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(report, "total certification time: {total_ms:.1} ms");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_config_certifies_clean() {
        let dir = std::env::temp_dir().join("tsense_bench_absint_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_absint_certify.json")).unwrap();
        assert!(json.contains("\"all_proven\": true"), "{json}");
    }
}
