//! Ext-4 — extension study: does the method port across technology
//! nodes?
//!
//! The paper works in one 0.35 µm-class process; its introduction argues
//! the problem *worsens* with scaling. This study reruns the two
//! optimization knobs on every built-in node preset (0.35 → 0.13 µm):
//! the optimal `Wp/Wn` ratio, the non-linearity it achieves, and the
//! best cell mix at a fixed library sizing.
//!
//! Finding: the recipe holds at 0.35/0.25 µm but *degrades* at
//! 0.18/0.13 µm — the lower supply inflates the threshold-compensation
//! term `α·κ/V_ov`, the curvature balance escapes the practical sizing
//! range (the optimum pegs at the search boundary), and even the best
//! cell mix no longer reaches the 0.2 % bar at 0.13 µm. That matches
//! history: deep-submicron on-die sensors moved to other architectures
//! (dual-slope, subthreshold, TDC-based) rather than plain rings.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::GateKind;
use tsense_core::optimize::{best_ratio, exhaustive_config_search, SweepSettings};
use tsense_core::ring::CellConfig;
use tsense_core::tech::Technology;

use crate::{render_table, write_artifact};

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let settings = SweepSettings::default();
    let mut rows = Vec::new();
    let mut csv =
        String::from("node,opt_ratio,opt_nl_pct,inv_nl_at_1p5,best_mix_nl_at_1p5,best_mix\n");
    let mut all_pass = true;
    for tech in Technology::presets() {
        let (ratio, nl) =
            best_ratio(&tech, GateKind::Inv, 1e-6, 5, 1.0, 10.0, &settings).expect("search");
        let ranked = exhaustive_config_search(&tech, &GateKind::PAPER_SET, 5, 1e-6, 1.5, &settings)
            .expect("config search");
        let inv_cfg = CellConfig::uniform(GateKind::Inv, 5).expect("config");
        let inv_nl = ranked
            .iter()
            .find(|p| p.config == inv_cfg)
            .expect("inverter in enumeration")
            .max_nl_percent;
        let best = &ranked[0];
        // The paper's own claims concern its process class; the deep
        // submicron rows document the degradation.
        if tech.node_nm >= 250 {
            all_pass &= nl < 0.2 && best.max_nl_percent < inv_nl;
        }
        let _ = writeln!(
            csv,
            "{},{ratio:.3},{nl:.4},{inv_nl:.4},{:.4},{}",
            tech.name, best.max_nl_percent, best.config
        );
        rows.push(vec![
            tech.name.clone(),
            format!("{ratio:.2}"),
            format!("{nl:.4}"),
            format!("{inv_nl:.4}"),
            format!("{:.4}", best.max_nl_percent),
            format!("{}", best.config),
        ]);
    }
    write_artifact(out_dir, "ext4_nodes.csv", &csv);

    let mut report = String::new();
    report.push_str("Ext-4 — node portability of the two optimization knobs\n\n");
    report.push_str(&render_table(
        &[
            "node",
            "opt W p/Wn",
            "opt NL %",
            "5xINV@1.5 %",
            "best mix %",
            "best mix",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\npaper recipe holds in its process class (0.35/0.25 um: optimum < 0.2 %,\n\
         cell mix beats the fixed-sizing ring): {}",
        if all_pass { "PASS" } else { "FAIL" }
    );
    report.push_str(
        "finding: at 0.18/0.13 um the lower supply inflates alpha*kappa/V_ov, the\n\
         curvature balance escapes the practical sizing range, and even the best\n\
         mix misses 0.2 % at 0.13 um -- consistent with deep-submicron sensors\n\
         moving beyond plain delay-based rings.\n",
    );
    let _ = writeln!(report, "series CSV: ext4_nodes.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_report_passes_on_all_nodes() {
        let dir = std::env::temp_dir().join("tsense_ext4_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("ext4_nodes.csv").exists());
    }
}
