//! Fig. 2 — non-linearity error versus temperature for different `Wp/Wn`
//! channel-width ratios of a 5-inverter ring.
//!
//! Reproduces the paper's sweep over ratios `{1.5, 1.75, 2.25, 3, 4}` on
//! the analytical model (41 samples over −50…150 °C), and cross-checks
//! the *shape* at three ratios against the transistor-level simulator:
//! the ordering of worst-case non-linearity across ratios must agree
//! between the two independent paths.

use std::fmt::Write as _;
use std::path::Path;

use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;
use tsense_core::linearity::{FitKind, NonLinearity};
use tsense_core::optimize::{ratio_sweep, SweepSettings};
use tsense_core::ring::PeriodCurve;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Seconds};

use crate::{render_table, write_artifact};

/// The ratios the paper's Fig. 2 plots.
pub const PAPER_RATIOS: [f64; 5] = [1.5, 1.75, 2.25, 3.0, 4.0];

/// Worst-case non-linearity of a transistor-level ring at `ratio`,
/// evaluated from simulated periods at `n_temps` points.
fn transistor_level_nl(ratio: f64, n_temps: usize) -> f64 {
    let lib = CellLibrary::um350(ratio);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("ring");
    let temps: Vec<f64> = (0..n_temps)
        .map(|i| -50.0 + 200.0 * i as f64 / (n_temps - 1) as f64)
        .collect();
    let curve = ring.period_curve(&temps).expect("simulated curve");
    let pc = PeriodCurve::new(
        curve.iter().map(|&(t, _)| Celsius::new(t)).collect(),
        curve.iter().map(|&(_, p)| Seconds::new(p)).collect(),
    );
    NonLinearity::of_curve(&pc, FitKind::LeastSquares)
        .expect("NL analysis")
        .max_abs_percent()
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let points =
        ratio_sweep(&tech, GateKind::Inv, 1e-6, 5, &PAPER_RATIOS, &settings).expect("ratio sweep");

    // CSV: temperature column then one error column per ratio.
    let mut csv = String::from("temp_c");
    for p in &points {
        let _ = write!(csv, ",nl_pct_r{}", p.ratio);
    }
    csv.push('\n');
    let n = points[0].nonlinearity.temps().len();
    for i in 0..n {
        let _ = write!(csv, "{:.1}", points[0].nonlinearity.temps()[i].get());
        for p in &points {
            let _ = write!(csv, ",{:.6}", p.nonlinearity.error_percent()[i]);
        }
        csv.push('\n');
    }
    write_artifact(out_dir, "fig2_nonlinearity.csv", &csv);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.ratio),
                format!("{:.4}", p.max_nl_percent),
                format!("{:.3}", p.nonlinearity.max_abs_celsius()),
                format!("{:.6}", p.nonlinearity.fit().r_squared),
            ]
        })
        .collect();

    // Transistor-level cross-check at the extremes and near the optimum.
    let check_ratios = [1.5, 2.25, 4.0];
    let sim_nl: Vec<f64> = check_ratios
        .iter()
        .map(|&r| transistor_level_nl(r, 9))
        .collect();
    let ana_nl: Vec<f64> = check_ratios
        .iter()
        .map(|&r| {
            points
                .iter()
                .find(|p| (p.ratio - r).abs() < 1e-9)
                .expect("ratio in sweep")
                .max_nl_percent
        })
        .collect();
    // Shape agreement: the middle ratio must be the best in both paths.
    let best_sim = sim_nl
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;
    let best_ana = ana_nl
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;

    let mut report = String::new();
    report.push_str(
        "Fig. 2 — non-linearity vs temperature for Wp/Wn ratios (5xINV ring, -50..150 C)\n\n",
    );
    report.push_str(&render_table(
        &["Wp/Wn", "max |NL| %FS", "max |err| C", "R^2"],
        &rows,
    ));
    report.push_str("\ntransistor-level cross-check (spicelite, 9 temps):\n");
    let check_rows: Vec<Vec<String>> = check_ratios
        .iter()
        .zip(sim_nl.iter().zip(&ana_nl))
        .map(|(&r, (&s, &a))| vec![format!("{r:.2}"), format!("{s:.4}"), format!("{a:.4}")])
        .collect();
    report.push_str(&render_table(
        &["Wp/Wn", "sim NL %", "model NL %"],
        &check_rows,
    ));
    let _ = writeln!(
        report,
        "\nshape agreement (same best ratio in both paths): {}",
        if best_sim == best_ana { "PASS" } else { "FAIL" }
    );
    let min_nl = points
        .iter()
        .map(|p| p.max_nl_percent)
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(
        report,
        "paper check (optimized ratio brings NL below 0.2 %): {} (min {:.4} %)",
        if min_nl < 0.2 { "PASS" } else { "FAIL" },
        min_nl
    );
    let _ = writeln!(report, "series CSV: fig2_nonlinearity.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_passes_both_checks() {
        let dir = std::env::temp_dir().join("tsense_fig2_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("fig2_nonlinearity.csv").exists());
    }
}
