//! T-B — in-text claim: "ring-oscillators with 5, 9 or 21 stages have
//! similar characteristics in terms of linearity".
//!
//! The per-stage delay temperature shape is what matters; the stage
//! count only scales the period. We verify both halves: the non-
//! linearity is nearly identical across {5, 9, 21} stages, while the
//! period itself scales with the count.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::gate::{Gate, GateKind};
use tsense_core::linearity::NonLinearity;
use tsense_core::optimize::SweepSettings;
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::Celsius;

use crate::{render_table, write_artifact};

/// Stage counts the paper mentions.
pub const STAGE_COUNTS: [usize; 3] = [5, 9, 21];

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate");

    let mut rows = Vec::new();
    let mut nls = Vec::new();
    let mut csv = String::from("stages,period_27c_ps,max_nl_pct,max_err_c\n");
    for &n in &STAGE_COUNTS {
        let ring = RingOscillator::uniform(gate, n).expect("ring");
        let period = ring.period(&tech, Celsius::new(27.0)).expect("period");
        let curve = ring
            .period_curve(&tech, settings.range, settings.samples)
            .expect("curve");
        let nl = NonLinearity::of_curve(&curve, settings.fit).expect("analysis");
        nls.push(nl.max_abs_percent());
        let _ = writeln!(
            csv,
            "{n},{:.2},{:.6},{:.6}",
            period.as_picos(),
            nl.max_abs_percent(),
            nl.max_abs_celsius()
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", period.as_picos()),
            format!("{:.4}", nl.max_abs_percent()),
            format!("{:.3}", nl.max_abs_celsius()),
        ]);
    }
    write_artifact(out_dir, "tb_stage_count.csv", &csv);

    let spread = nls.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - nls.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = nls.iter().sum::<f64>() / nls.len() as f64;

    let mut report = String::new();
    report.push_str("T-B — linearity versus stage count (INV ring, Wp/Wn = 2.0)\n\n");
    report.push_str(&render_table(
        &["stages", "period @27C (ps)", "max |NL| %FS", "max |err| C"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nNL spread across stage counts : {spread:.4} %FS (mean {mean:.4} %FS)"
    );
    let _ = writeln!(
        report,
        "paper check (similar linearity for 5/9/21 stages): {}",
        if spread < 0.2 * mean.max(0.05) {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "series CSV: tb_stage_count.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tb_report_passes() {
        let dir = std::env::temp_dir().join("tsense_tb_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
