//! # bench — regeneration harness for every figure and claim of the paper
//!
//! Each module reproduces one artifact of *"Smart Temperature Sensor for
//! Thermal Testing of Cell-Based ICs"* (DATE 2005) and returns a plain
//! text report; CSV series are written next to it for plotting. The
//! `figures` binary dispatches on experiment ids (see DESIGN.md §4):
//!
//! | id | artifact |
//! |----|----------|
//! | `fig1` | transient waveform of a 5-stage inverter ring |
//! | `fig2` | non-linearity vs temperature per `Wp/Wn` ratio |
//! | `fig3` | non-linearity vs temperature per cell configuration |
//! | `ta`   | "adequate ratio brings NL below 0.2 %" |
//! | `tb`   | "5, 9, 21 stages have similar linearity" |
//! | `tc`   | smart-unit features: conversion, busy, disable, mapping |
//! | `td`   | intro claims: 135 °C RISC die, 3.2× scaling of the rise |
//! | `abl1` | ablation: calibration scheme under process variation |
//! | `abl2` | ablation: digitizer window vs resolution/conversion time |
//! | `abl3` | ablation: integrator and timestep vs simulated period |
//! | `abl4` | ablation: calibration order (1/2/3-point) vs residual |
//! | `abl5` | ablation: accuracy-spec yield over a Monte-Carlo population |
//! | `ext1` | extension: AOI21/OAI21 complex cells in the mix search |
//! | `ext2` | extension: supply-droop cross-sensitivity budget |
//! | `ext3` | extension: dual-ring ratiometric droop rejection |
//! | `ext4` | extension: node portability (0.35 → 0.13 µm presets) |
//! | `sta`  | STA vs transient temperature sweep: same curve, wall-clock speedup |
//! | `fault` | fault-injection campaign: coverage per class, zero silent/hang |
//! | `soak` | supervised runtime soak: throughput/p99 with and without chaos |
//! | `dst`  | deterministic simulation: seeded schedule sweep + mutation detection |
//! | `absint` | interval certification of every shipped configuration: envelopes + proof cost |
//! | `dataflow` | parallel incremental netlist-lint driver: cache + `--jobs` wall-clock |
//! | `fleet` | distributed-fleet DST: 1000-seed sweep, parallel scaling, mutation catch |

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;

pub mod abl1;
pub mod abl2;
pub mod abl3;
pub mod abl4;
pub mod abl5;
pub mod absint;
pub mod dataflow;
pub mod dst_sweep;
pub mod ext1;
pub mod ext2;
pub mod ext3;
pub mod ext4;
pub mod fault_campaign;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fleet_dst;
pub mod runtime_soak;
pub mod sta_sweep;
pub mod ta;
pub mod tb;
pub mod tc;
pub mod td;
pub mod wire_fleet;

/// Writes `contents` to `<out_dir>/<name>`, creating the directory.
///
/// # Panics
///
/// Panics on I/O failure — the harness cannot proceed without its
/// output directory.
pub fn write_artifact(out_dir: &Path, name: &str, contents: &str) {
    fs::create_dir_all(out_dir).expect("create output directory");
    fs::write(out_dir.join(name), contents).expect("write artifact");
}

/// Renders a simple aligned two-dimensional table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// All experiment ids, in DESIGN.md order.
pub const ALL_EXPERIMENTS: [&str; 24] = [
    "fig1", "fig2", "fig3", "ta", "tb", "tc", "td", "abl1", "abl2", "abl3", "abl4", "abl5", "ext1",
    "ext2", "ext3", "ext4", "sta", "fault", "soak", "dst", "absint", "dataflow", "fleet", "wire",
];

/// Runs one experiment by id, writing artifacts into `out_dir` and
/// returning the text report.
///
/// # Panics
///
/// Panics on an unknown id or if the experiment itself fails — the
/// harness is a diagnostic tool, so failures should be loud.
pub fn run_experiment(id: &str, out_dir: &Path) -> String {
    match id {
        "fig1" => fig1::run(out_dir),
        "fig2" => fig2::run(out_dir),
        "fig3" => fig3::run(out_dir),
        "ta" => ta::run(out_dir),
        "tb" => tb::run(out_dir),
        "tc" => tc::run(out_dir),
        "td" => td::run(out_dir),
        "abl1" => abl1::run(out_dir),
        "abl2" => abl2::run(out_dir),
        "abl3" => abl3::run(out_dir),
        "abl4" => abl4::run(out_dir),
        "abl5" => abl5::run(out_dir),
        "ext1" => ext1::run(out_dir),
        "ext2" => ext2::run(out_dir),
        "ext3" => ext3::run(out_dir),
        "ext4" => ext4::run(out_dir),
        "sta" => sta_sweep::run(out_dir),
        "fault" => fault_campaign::run(out_dir),
        "soak" => runtime_soak::run(out_dir),
        "dst" => dst_sweep::run(out_dir),
        "absint" => absint::run(out_dir),
        "dataflow" => dataflow::run(out_dir),
        "fleet" => fleet_dst::run(out_dir),
        "wire" => wire_fleet::run(out_dir),
        other => panic!("unknown experiment id `{other}`; known: {ALL_EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with('2') || lines[2].contains('2'));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("nope", Path::new("/tmp/unused"));
    }
}
