//! `dst` — the deterministic-simulation harness as a benchmark: a
//! large seeded sweep of the shipped monitoring service (expected
//! clean), plus a mutation-detection run proving the invariant sweep
//! has teeth.
//!
//! Two questions, two sections:
//!
//! 1. **Coverage**: sweep many seeds of the full simulation — client
//!    load, fault storm, torn-write disk, a mid-run crash — and count
//!    invariant violations (the shipped service must show zero) and
//!    seeds/second (how cheap a schedule is to explore).
//! 2. **Sensitivity**: re-introduce a known-bad change (recovery
//!    trusting checkpointed breaker deadlines verbatim) and measure how
//!    many seeds the sweep needs to catch it, that the failing seed
//!    replays deterministically, and how small the shrunk reproducer
//!    gets.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use runtime::{resolve_sim_events, run_sim, shrink_failure, sweep, Invariant, Mutation, SimConfig};

use crate::{render_table, write_artifact};

/// First seed of the sweep (CI replays the same window).
pub const SEED_BASE: u64 = 0;
/// Seeds swept by the full benchmark run.
pub const FULL_SEEDS: u64 = 1_000;
/// Seed budget the mutation must be caught within (the acceptance
/// bound from DESIGN.md §12).
pub const CATCH_BUDGET: u64 = 200;

fn run_with(seeds: u64, out_dir: &Path) -> String {
    let base = SimConfig::default();

    // ---- coverage sweep: the shipped service ---------------------------
    let started = Instant::now();
    let clean = sweep(&base, SEED_BASE, seeds, false);
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let seeds_per_s = clean.seeds as f64 / elapsed;

    // ---- sensitivity: a known-bad mutation must be caught --------------
    let mutated = SimConfig {
        mutation: Mutation::NoCooldownRebase,
        ..base.clone()
    };
    let hunt = sweep(&mutated, SEED_BASE, CATCH_BUDGET, true);
    let caught = hunt.violations.first();
    let (seeds_to_catch, invariant, replay_ok, shrunk_events, shrunk_crashes) = match caught {
        Some(report) => {
            let failing = SimConfig {
                seed: report.seed,
                ..mutated.clone()
            };
            let replay_ok = run_sim(&failing) == run_sim(&failing);
            let (ev, cr) = shrink_failure(&failing).map_or((0, 0), |s| {
                (
                    s.config.events.as_ref().map_or(0, Vec::len),
                    s.config.crashes.len(),
                )
            });
            let v = report.violation.as_ref().expect("violating report");
            (
                report.seed - SEED_BASE + 1,
                Some(v.invariant),
                replay_ok,
                ev,
                cr,
            )
        }
        None => (0, None, false, 0, 0),
    };

    // ---- artifacts -----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed_base\": {SEED_BASE},");
    let _ = writeln!(json, "  \"seeds\": {},", clean.seeds);
    let _ = writeln!(json, "  \"steps\": {},", clean.steps);
    let _ = writeln!(json, "  \"requests\": {},", clean.requests);
    let _ = writeln!(json, "  \"crashes\": {},", clean.crashes);
    let _ = writeln!(json, "  \"violations\": {},", clean.violations.len());
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.2},");
    let _ = writeln!(json, "  \"seeds_per_s\": {seeds_per_s:.1},");
    let _ = writeln!(json, "  \"mutation\": {{");
    let _ = writeln!(json, "    \"name\": \"{}\",", Mutation::NoCooldownRebase);
    let _ = writeln!(json, "    \"budget\": {CATCH_BUDGET},");
    let _ = writeln!(json, "    \"seeds_to_catch\": {seeds_to_catch},");
    let _ = writeln!(
        json,
        "    \"invariant\": {},",
        invariant.map_or("null".to_string(), |i| format!("\"{i}\""))
    );
    let _ = writeln!(json, "    \"replay_deterministic\": {replay_ok},");
    let _ = writeln!(json, "    \"shrunk_fault_events\": {shrunk_events},");
    let _ = writeln!(json, "    \"shrunk_crashes\": {shrunk_crashes}");
    json.push_str("  }\n}\n");
    write_artifact(out_dir, "BENCH_dst_sweep.json", &json);

    // ---- report --------------------------------------------------------
    let mut report = String::new();
    report
        .push_str("dst — deterministic simulation: seeded schedule sweep + mutation detection\n\n");
    report.push_str(&render_table(
        &[
            "run",
            "seeds",
            "steps",
            "requests",
            "crashes",
            "violations",
            "seeds/s",
        ],
        &[vec![
            "shipped".into(),
            clean.seeds.to_string(),
            clean.steps.to_string(),
            clean.requests.to_string(),
            clean.crashes.to_string(),
            clean.violations.len().to_string(),
            format!("{seeds_per_s:.1}"),
        ]],
    ));
    report.push('\n');
    let _ = writeln!(
        report,
        "shipped service clean across {} seed(s): {}",
        clean.seeds,
        if clean.violations.is_empty() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        report,
        "mutation `{}` caught within {CATCH_BUDGET} seed(s): {} (seed #{seeds_to_catch}, {})",
        Mutation::NoCooldownRebase,
        if seeds_to_catch > 0 { "PASS" } else { "FAIL" },
        invariant.map_or("no violation".to_string(), |i| i.to_string()),
    );
    let _ = writeln!(
        report,
        "failing seed replays byte-for-byte: {}",
        if replay_ok { "PASS" } else { "FAIL" }
    );
    if let Some(first) = caught {
        let original = resolve_sim_events(&SimConfig {
            seed: first.seed,
            ..mutated
        })
        .len();
        let _ = writeln!(
            report,
            "shrunk reproducer: {original} fault event(s) -> {shrunk_events}, \
             {shrunk_crashes} crash(es): {}",
            if invariant == Some(Invariant::CooldownOverhang) {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    report
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics on I/O failure writing artifacts — the harness is a
/// diagnostic tool.
pub fn run(out_dir: &Path) -> String {
    run_with(FULL_SEEDS, out_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_sweep_passes_its_own_checks() {
        let dir = std::env::temp_dir().join("tsense_bench_dst_test");
        std::fs::remove_dir_all(&dir).ok();
        // A reduced sweep keeps the test cheap; the mutation hunt and
        // shrink run at full fidelity either way.
        let report = run_with(40, &dir);
        assert!(!report.contains("FAIL"), "{report}");
        let json = std::fs::read_to_string(dir.join("BENCH_dst_sweep.json")).unwrap();
        assert!(json.contains("\"violations\": 0"), "{json}");
        assert!(json.contains("\"replay_deterministic\": true"), "{json}");
        assert!(
            json.contains("\"invariant\": \"cooldown-overhang\""),
            "{json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
