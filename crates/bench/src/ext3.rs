//! Ext-3 — extension study: dual-ring ratiometric read-out versus
//! supply droop.
//!
//! Follows directly from Ext-2: instead of regulating the sensor rail
//! to millivolts, digitize the *ratio* of two co-located rings with
//! different cell mixes. The shared supply dependence divides out; the
//! differential temperature slope remains. This study tabulates the
//! droop rejection and its price (smaller signal, slightly worse
//! linearity) for several ring pairs.

use std::fmt::Write as _;
use std::path::Path;

use tsense_core::dualring::DualRingSensor;
use tsense_core::gate::GateKind;
use tsense_core::ring::{CellConfig, RingOscillator};
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, TempRange};

use crate::{render_table, write_artifact};

fn uniform_ring(kind: GateKind, ratio: f64) -> RingOscillator {
    RingOscillator::from_config(&CellConfig::uniform(kind, 5).expect("config"), 1e-6, ratio)
        .expect("ring")
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let tech = Technology::um350();
    use GateKind::*;
    let pairs: [(&str, GateKind, f64, GateKind, f64); 4] = [
        ("NAND2(1.5)/NAND3(3.0)", Nand2, 1.5, Nand3, 3.0),
        ("INV(3.0)/NAND3(1.5)", Inv, 3.0, Nand3, 1.5),
        ("INV(2.0)/OAI21(2.0)", Inv, 2.0, Oai21, 2.0),
        ("NAND3(2.0)/NOR3(2.0)", Nand3, 2.0, Nor3, 2.0),
    ];

    let mut rows = Vec::new();
    let mut csv = String::from("pair,rejection_x,ratio_err_c_per_mv,temp_slope_per_k,r2\n");
    let mut best_rejection = 0.0_f64;
    for (label, ka, ra, kb, rb) in pairs {
        let dual = DualRingSensor::new(uniform_ring(ka, ra), uniform_ring(kb, rb)).expect("pair");
        let t = Celsius::new(85.0);
        let rejection = dual.supply_rejection(&tech, t).expect("rejection");
        let err = dual.temp_error_per_mv(&tech, t).expect("err").abs();
        let slope = dual.temp_slope(&tech, t).expect("slope");
        let fit = dual
            .ratio_linearity(&tech, TempRange::paper(), 21)
            .expect("fit");
        best_rejection = best_rejection.max(rejection);
        let _ = writeln!(
            csv,
            "{label},{rejection:.2},{err:.5},{slope:.3e},{:.6}",
            fit.r_squared
        );
        rows.push(vec![
            label.to_string(),
            format!("{rejection:.1}x"),
            format!("{err:.4}"),
            format!("{slope:.2e}"),
            format!("{:.5}", fit.r_squared),
        ]);
    }
    write_artifact(out_dir, "ext3_dualring.csv", &csv);

    let mut report = String::new();
    report.push_str("Ext-3 — dual-ring ratiometric read-out vs supply droop (85 C)\n\n");
    report.push_str(&render_table(
        &["pair", "rejection", "err (C/mV)", "dlnR/dT (1/K)", "R^2"],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nbest pair rejects supply droop {best_rejection:.0}x better than a single ring\n\
         (Ext-2's ~0.1 C/mV becomes <0.01 C/mV), paid for with a ~10x smaller\n\
         temperature signal and slightly higher relative curvature."
    );
    let _ = writeln!(
        report,
        "check (usable pair with >5x rejection exists): {}",
        if best_rejection > 5.0 { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(report, "series CSV: ext3_dualring.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext3_report_passes() {
        let dir = std::env::temp_dir().join("tsense_ext3_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
        assert!(dir.join("ext3_dualring.csv").exists());
    }
}
