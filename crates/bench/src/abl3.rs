//! Abl-3 — integrator choice and timestep versus simulated period.
//!
//! How much does the transistor-level ring period depend on the
//! numerical settings of the simulator? Backward Euler's first-order
//! damping slows convergence in the step size; trapezoidal converges
//! faster. Both must agree in the fine-step limit — this is the
//! numerical-hygiene check behind every spicelite-derived number in the
//! repository.

use std::fmt::Write as _;
use std::path::Path;

use spicelite::transient::{run_transient, Integrator, TranOptions};
use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;

use crate::{render_table, write_artifact};

fn measured_period(dt_ps: f64, integrator: Integrator) -> f64 {
    let lib = CellLibrary::um350(2.0);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("ring");
    let ckt = ring.elaborate(27.0).expect("circuit");
    let dt = dt_ps * 1e-12;
    let opts = TranOptions::to_time(2e-9)
        .with_uic()
        .with_steps(dt, dt)
        .with_integrator(integrator);
    let wave = run_transient(&ckt, &opts).expect("transient");
    wave.period("n0", 1.65, 2).expect("period")
}

/// Runs the experiment; see module docs.
///
/// # Panics
///
/// Panics if any evaluation fails.
pub fn run(out_dir: &Path) -> String {
    let steps_ps = [4.0, 2.0, 1.0, 0.5];
    let mut csv = String::from("dt_ps,period_be_ps,period_trap_ps\n");
    let mut rows = Vec::new();
    let mut be = Vec::new();
    let mut tr = Vec::new();
    for &dt in &steps_ps {
        let p_be = measured_period(dt, Integrator::BackwardEuler) * 1e12;
        let p_tr = measured_period(dt, Integrator::Trapezoidal) * 1e12;
        be.push(p_be);
        tr.push(p_tr);
        let _ = writeln!(csv, "{dt},{p_be:.3},{p_tr:.3}");
        rows.push(vec![
            format!("{dt:.1}"),
            format!("{p_be:.2}"),
            format!("{p_tr:.2}"),
        ]);
    }
    write_artifact(out_dir, "abl3_integrator.csv", &csv);

    // Convergence: both integrators approach the same fine-step answer,
    // and trapezoidal moves less over the sweep (higher order).
    let ref_period = tr[tr.len() - 1];
    let be_drift = (be[0] - be[be.len() - 1]).abs();
    let tr_drift = (tr[0] - tr[tr.len() - 1]).abs();
    let agree = ((be[be.len() - 1] - ref_period) / ref_period).abs() < 0.02;

    let mut report = String::new();
    report.push_str("Abl-3 — simulated ring period vs integrator and timestep (27 C)\n\n");
    report.push_str(&render_table(
        &["dt (ps)", "BE period (ps)", "trap period (ps)"],
        &rows,
    ));
    let _ = writeln!(report, "\nBE drift over the sweep    : {be_drift:.3} ps");
    let _ = writeln!(report, "trap drift over the sweep  : {tr_drift:.3} ps");
    let _ = writeln!(
        report,
        "integrators agree at fine dt: {}",
        if agree { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "trapezoidal converges faster: {}",
        if tr_drift <= be_drift + 1e-9 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(report, "series CSV: abl3_integrator.csv");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl3_report_passes() {
        let dir = std::env::temp_dir().join("tsense_abl3_test");
        let report = run(&dir);
        assert!(!report.contains("FAIL"), "{report}");
    }
}
