//! Fig. 2 bench: the analytical Wp/Wn ratio sweep (five ratios, 41
//! temperatures each) and the golden-section ratio optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsense_core::gate::GateKind;
use tsense_core::optimize::{best_ratio, ratio_sweep, SweepSettings};
use tsense_core::tech::Technology;

fn bench_fig2(c: &mut Criterion) {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let ratios = [1.5, 1.75, 2.25, 3.0, 4.0];

    let mut group = c.benchmark_group("fig2");
    group.bench_function("ratio_sweep_5x41", |b| {
        b.iter(|| {
            let pts = ratio_sweep(
                black_box(&tech),
                GateKind::Inv,
                1e-6,
                5,
                black_box(&ratios),
                &settings,
            )
            .expect("sweep");
            black_box(pts.len())
        })
    });
    group.bench_function("best_ratio_golden_section", |b| {
        b.iter(|| {
            black_box(
                best_ratio(
                    black_box(&tech),
                    GateKind::Inv,
                    1e-6,
                    5,
                    1.0,
                    6.0,
                    &settings,
                )
                .expect("search"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
