//! Fig. 1 bench: transistor-level transient of the 5-stage inverter
//! ring (the paper's waveform) and the period measurement on top of it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;

fn bench_fig1(c: &mut Criterion) {
    let lib = CellLibrary::um350(2.0);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("ring");

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("transient_1500ps", |b| {
        b.iter(|| {
            let wave = ring
                .simulate(black_box(27.0), 1.5e-9, 2e-12)
                .expect("transient");
            black_box(wave.len())
        })
    });
    group.bench_function("measure_period_27c", |b| {
        b.iter(|| black_box(ring.measure_period(black_box(27.0)).expect("period")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
