//! Fig. 3 bench: ranking the paper's six cell configurations and the
//! exhaustive search over all 126 five-stage multisets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsense_core::gate::GateKind;
use tsense_core::optimize::{config_search, exhaustive_config_search, SweepSettings};
use tsense_core::ring::CellConfig;
use tsense_core::tech::Technology;

fn bench_fig3(c: &mut Criterion) {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let paper = CellConfig::paper_fig3_set();

    let mut group = c.benchmark_group("fig3");
    group.bench_function("paper_set_6_configs", |b| {
        b.iter(|| {
            black_box(
                config_search(black_box(&tech), &paper, 1e-6, 1.5, &settings).expect("search"),
            )
            .len()
        })
    });
    group.bench_function("exhaustive_126_configs", |b| {
        b.iter(|| {
            black_box(
                exhaustive_config_search(
                    black_box(&tech),
                    &GateKind::PAPER_SET,
                    5,
                    1e-6,
                    1.5,
                    &settings,
                )
                .expect("search"),
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
