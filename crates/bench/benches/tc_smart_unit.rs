//! T-C bench: one behavioural conversion, one gate-level digitizer run,
//! and a full 3x3 multiplexed map scan.

use criterion::{criterion_group, criterion_main, Criterion};
use sensor::digitizer::GateLevelDigitizer;
use sensor::unit::{SensorConfig, SmartSensorUnit};
use sensor::SensorArray;
use std::hint::black_box;
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Seconds};

fn calibrated_unit() -> SmartSensorUnit {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech)).expect("unit");
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
        .expect("cal");
    unit
}

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_smart_unit");

    let mut unit = calibrated_unit();
    group.bench_function("behavioural_measure", |b| {
        b.iter(|| {
            black_box(
                unit.measure(black_box(Celsius::new(85.0)))
                    .expect("measure"),
            )
        })
    });

    group.sample_size(10);
    group.bench_function("gate_level_digitizer_64cyc", |b| {
        let d = GateLevelDigitizer::new(Seconds::from_nanos(1.5), Hertz::from_mega(1000.0), 64)
            .expect("plan");
        b.iter(|| black_box(d.run().expect("run")).count)
    });

    group.bench_function("scan_3x3_array", |b| {
        let mut array = SensorArray::new();
        for iy in 0..3 {
            for ix in 0..3 {
                array = array.with_site(
                    format!("s{ix}{iy}"),
                    0.002 + 0.003 * ix as f64,
                    0.002 + 0.003 * iy as f64,
                    calibrated_unit(),
                );
            }
        }
        b.iter(|| {
            black_box(array.scan(&|x, y| 25.0 + 2000.0 * (x + y)).expect("scan"))
                .points()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);
