//! T-B bench: analytical period curves for 5-, 9- and 21-stage rings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::TempRange;

fn bench_tb(c: &mut Criterion) {
    let tech = Technology::um350();
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate");

    let mut group = c.benchmark_group("tb_stage_count");
    for n in [5usize, 9, 21] {
        let ring = RingOscillator::uniform(gate, n).expect("ring");
        group.bench_with_input(BenchmarkId::new("period_curve_41", n), &ring, |b, ring| {
            b.iter(|| {
                black_box(
                    ring.period_curve(black_box(&tech), TempRange::paper(), 41)
                        .expect("curve"),
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tb);
criterion_main!(benches);
