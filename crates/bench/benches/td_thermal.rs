//! T-D bench: steady-state and transient thermal solves of the die grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thermal::{DieSpec, Floorplan, ThermalGrid};

fn bench_td(c: &mut Criterion) {
    let mut group = c.benchmark_group("td_thermal");
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::new("steady_sor", n), &n, |b, &n| {
            b.iter(|| {
                let mut grid = ThermalGrid::new(DieSpec::default_1cm2(n, n)).expect("grid");
                Floorplan::processor_like(0.01, 0.01, 5.0)
                    .apply(&mut grid)
                    .expect("plan");
                let sweeps = grid.solve_steady(1e-6, 50_000).expect("solve");
                black_box((grid.max_temp(), sweeps))
            })
        });
    }
    group.bench_function("transient_100_steps_24x24", |b| {
        b.iter(|| {
            let mut grid = ThermalGrid::new(DieSpec::default_1cm2(24, 24)).expect("grid");
            Floorplan::processor_like(0.01, 0.01, 5.0)
                .apply(&mut grid)
                .expect("plan");
            let dt = grid.global_time_constant() / 100.0;
            grid.run_transient(dt, 100).expect("transient");
            black_box(grid.mean_temp())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_td);
criterion_main!(benches);
