//! Abl-3 bench: backward-Euler vs trapezoidal transient cost on the
//! same ring circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spicelite::transient::{run_transient, Integrator, TranOptions};
use std::hint::black_box;
use stdcell::library::CellLibrary;
use tsense_core::gate::GateKind;

fn bench_abl3(c: &mut Criterion) {
    let lib = CellLibrary::um350(2.0);
    let ring = lib.uniform_ring(GateKind::Inv, 5).expect("ring");
    let ckt = ring.elaborate(27.0).expect("circuit");

    let mut group = c.benchmark_group("abl3");
    group.sample_size(10);
    for (name, integ) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("trapezoidal", Integrator::Trapezoidal),
    ] {
        group.bench_with_input(
            BenchmarkId::new("tran_2ns_1ps", name),
            &integ,
            |b, &integ| {
                b.iter(|| {
                    let opts = TranOptions::to_time(2e-9)
                        .with_uic()
                        .with_steps(1e-12, 1e-12)
                        .with_integrator(integ);
                    black_box(run_transient(black_box(&ckt), &opts).expect("tran")).len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_abl3);
criterion_main!(benches);
