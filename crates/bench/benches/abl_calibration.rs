//! Abl-1 bench: the Monte-Carlo variation study behind the calibration
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::TempRange;
use tsense_core::variation::{MonteCarloStudy, VariationSpec};

fn bench_abl1(c: &mut Criterion) {
    let tech = Technology::um350();
    let ring =
        RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate"), 5)
            .expect("ring");

    let mut group = c.benchmark_group("abl1");
    group.bench_function("monte_carlo_16_dies", |b| {
        b.iter(|| {
            let study = MonteCarloStudy::run(
                black_box(&ring),
                &tech,
                &VariationSpec::default(),
                TempRange::paper(),
                21,
                16,
                42,
            )
            .expect("study");
            black_box(study.two_point_stats())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_abl1);
criterion_main!(benches);
