//! Benches for the extension studies: extended-set search (Ext-1),
//! supply-sensitivity evaluation (Ext-2/3), sensor placement, and the
//! gate-level mux scan.

use criterion::{criterion_group, criterion_main, Criterion};
use sensor::gateunit::GateLevelUnit;
use sensor::muxscan::GateLevelMuxScan;
use std::hint::black_box;
use thermal::placement::{all_cells, greedy_placement, ScenarioSet};
use thermal::{DieSpec, Floorplan};
use tsense_core::dualring::DualRingSensor;
use tsense_core::gate::GateKind;
use tsense_core::optimize::{exhaustive_config_search, SweepSettings};
use tsense_core::ring::{CellConfig, RingOscillator};
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Seconds};

fn bench_ext(c: &mut Criterion) {
    let tech = Technology::um350();
    let settings = SweepSettings::default();

    let mut group = c.benchmark_group("ext");
    group.bench_function("ext1_extended_search_462", |b| {
        b.iter(|| {
            black_box(
                exhaustive_config_search(
                    black_box(&tech),
                    &GateKind::EXTENDED_SET,
                    5,
                    1e-6,
                    1.5,
                    &settings,
                )
                .expect("search"),
            )
            .len()
        })
    });

    group.bench_function("ext3_dual_ring_rejection", |b| {
        let sense = RingOscillator::from_config(
            &CellConfig::uniform(GateKind::Nand2, 5).expect("config"),
            1e-6,
            1.5,
        )
        .expect("ring");
        let reference = RingOscillator::from_config(
            &CellConfig::uniform(GateKind::Nand3, 5).expect("config"),
            1e-6,
            3.0,
        )
        .expect("ring");
        let dual = DualRingSensor::new(sense, reference).expect("pair");
        b.iter(|| {
            black_box(
                dual.supply_rejection(&tech, Celsius::new(85.0))
                    .expect("rej"),
            )
        })
    });

    group.sample_size(10);
    group.bench_function("placement_greedy_k4_16x16", |b| {
        let spec = DieSpec::default_1cm2(16, 16);
        let plans: Vec<Floorplan> = [(0.0005, 0.0005), (0.0075, 0.0005), (0.0035, 0.0075)]
            .iter()
            .map(|&(x, y)| Floorplan::new().block("hot", x, y, 0.002, 0.002, 4.0))
            .collect();
        let scen = ScenarioSet::solve(&spec, &plans).expect("scenarios");
        let candidates = all_cells(16, 16);
        b.iter(|| black_box(greedy_placement(&scen, &candidates, 4).expect("placement")).len())
    });

    group.bench_function("gateunit_full_conversion", |b| {
        b.iter(|| {
            let mut unit =
                GateLevelUnit::new(Seconds::from_nanos(1.5), Hertz::from_mega(1000.0), 16, 128)
                    .expect("unit");
            black_box(unit.convert().expect("convert")).count
        })
    });

    group.bench_function("muxscan_4ch_gate_level", |b| {
        b.iter(|| {
            let mut scan = GateLevelMuxScan::new(
                &[
                    Seconds::from_nanos(1.2),
                    Seconds::from_nanos(1.5),
                    Seconds::from_nanos(1.8),
                    Seconds::from_nanos(2.1),
                ],
                Hertz::from_mega(1000.0),
                64,
            )
            .expect("scan");
            black_box(scan.scan_all().expect("readings")).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ext);
criterion_main!(benches);
