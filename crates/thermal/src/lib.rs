//! # thermal — a 2-D die thermal RC-grid simulator
//!
//! The thermal substrate of the smart-sensor reproduction: on-die
//! temperature fields for the *thermal mapping* application of the
//! paper's Section 3, and the scaling trends its introduction cites.
//!
//! * [`grid`] — the discretized die: lateral silicon conduction,
//!   vertical package conductance, SOR steady-state and implicit
//!   transient solvers;
//! * [`floorplan`] — named power blocks, including a processor-like
//!   preset with two hot cores;
//! * [`placement`] — greedy sensor-placement optimization against a
//!   scenario library (which die points should carry the multiplexed
//!   oscillators);
//! * [`trace`] — time-varying workload playback (burst/idle phases)
//!   with probe sampling;
//! * [`scenario`] — the introduction's claims as runnable studies
//!   (135 °C RISC hotspot, 3.2× scaling of the junction-temperature
//!   rise from 0.35 µm to 0.13 µm).
//!
//! ```
//! use thermal::grid::{DieSpec, ThermalGrid};
//!
//! let mut grid = ThermalGrid::new(DieSpec::default_1cm2(16, 16))?;
//! grid.add_power_rect(0.0, 0.0, 0.01, 0.01, 5.0)?;
//! grid.solve_steady(1e-9, 10_000)?;
//! assert!(grid.mean_temp() > 100.0); // 5 W × 20 K/W over 25 °C ambient
//! # Ok::<(), thermal::ThermalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Validation deliberately writes `!(x > 0.0)` instead of `x <= 0.0`:
// the negated form also rejects NaN, which the comparison form lets
// through silently.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod error;
pub mod floorplan;
pub mod grid;
pub mod placement;
pub mod scenario;
pub mod trace;

pub use error::{Result, ThermalError};
pub use floorplan::{Block, Floorplan};
pub use grid::{DieSpec, ThermalGrid};
pub use placement::{greedy_placement, ScenarioSet, Site};
pub use trace::{play, Phase, PowerTrace, TraceSample};
