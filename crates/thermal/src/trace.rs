//! Time-varying workload playback: power traces on the thermal grid.
//!
//! Real dies do not dissipate constant power; thermal testing exercises
//! workload *phases* (boot, burst, idle, throttle). A [`PowerTrace`] is a
//! schedule of floorplans with durations; [`play`] steps the transient
//! solver through it and samples the temperature at chosen probe points,
//! producing the time series a sensor scan would chase.

use crate::error::{Result, ThermalError};
use crate::floorplan::Floorplan;
use crate::grid::ThermalGrid;

/// One phase of a workload: a power map held for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase label (e.g. `"burst"`).
    pub name: String,
    /// The power map active during the phase.
    pub floorplan: Floorplan,
    /// Phase duration, seconds.
    pub duration_s: f64,
}

/// A schedule of workload phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    phases: Vec<Phase>,
}

impl PowerTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends a phase (chainable).
    ///
    /// # Panics
    ///
    /// Panics if the duration is not positive.
    #[must_use]
    pub fn phase(mut self, name: impl Into<String>, floorplan: Floorplan, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "phase duration must be positive");
        self.phases.push(Phase {
            name: name.into(),
            floorplan,
            duration_s,
        });
        self
    }

    /// The phases in playback order.
    #[inline]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total trace duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }
}

/// One sample of the playback.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Active phase name.
    pub phase: String,
    /// Temperature at each probe, °C (probe order preserved).
    pub probes_c: Vec<f64>,
    /// Die peak temperature, °C.
    pub peak_c: f64,
}

/// Plays a trace on `grid`, sampling every `dt_s` seconds at the given
/// probe points (metres). The grid's power map is replaced per phase;
/// its temperature field carries over, so thermal history is preserved.
///
/// # Errors
///
/// Returns [`ThermalError::InvalidSpec`] for an empty trace or a
/// non-positive `dt_s`, and propagates solver/probe failures.
pub fn play(
    grid: &mut ThermalGrid,
    trace: &PowerTrace,
    probes_m: &[(f64, f64)],
    dt_s: f64,
) -> Result<Vec<TraceSample>> {
    if trace.phases().is_empty() {
        return Err(ThermalError::InvalidSpec {
            reason: "trace has no phases".to_string(),
        });
    }
    if !(dt_s > 0.0) {
        return Err(ThermalError::InvalidSpec {
            reason: format!("sample interval {dt_s} must be positive"),
        });
    }
    // Validate probes up front.
    for &(x, y) in probes_m {
        grid.temp_at(x, y)?;
    }
    let mut samples = Vec::new();
    let mut now = 0.0;
    for phase in trace.phases() {
        grid.clear_power();
        phase.floorplan.apply(grid)?;
        let steps = (phase.duration_s / dt_s).round().max(1.0) as usize;
        let step_dt = phase.duration_s / steps as f64;
        for _ in 0..steps {
            grid.step_transient(step_dt)?;
            now += step_dt;
            let probes_c = probes_m
                .iter()
                .map(|&(x, y)| grid.temp_at(x, y).expect("validated above"))
                .collect();
            samples.push(TraceSample {
                time_s: now,
                phase: phase.name.clone(),
                probes_c,
                peak_c: grid.max_temp(),
            });
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DieSpec;

    fn grid() -> ThermalGrid {
        ThermalGrid::new(DieSpec::default_1cm2(12, 12)).expect("grid")
    }

    fn uniform(power: f64) -> Floorplan {
        Floorplan::new().block("all", 0.0, 0.0, 0.01, 0.01, power)
    }

    #[test]
    fn burst_then_idle_heats_then_cools() {
        let mut g = grid();
        let tau = g.global_time_constant();
        let trace = PowerTrace::new()
            .phase("burst", uniform(6.0), 3.0 * tau)
            .phase("idle", uniform(1e-9), 3.0 * tau);
        let samples = play(&mut g, &trace, &[(0.005, 0.005)], tau / 10.0).expect("play");
        assert_eq!(samples.len(), 60);
        // Peak of the whole run sits at the end of the burst.
        let burst_end = samples
            .iter()
            .rfind(|s| s.phase == "burst")
            .expect("burst samples");
        let global_max = samples
            .iter()
            .map(|s| s.probes_c[0])
            .fold(f64::MIN, f64::max);
        assert!(
            (burst_end.probes_c[0] - global_max).abs() < 0.5,
            "peak at burst end"
        );
        // The idle tail cools monotonically back toward ambient.
        let idle: Vec<f64> = samples
            .iter()
            .filter(|s| s.phase == "idle")
            .map(|s| s.probes_c[0])
            .collect();
        for w in idle.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "cooling is monotone");
        }
        assert!(*idle.last().expect("idle samples") < burst_end.probes_c[0] - 10.0);
    }

    #[test]
    fn thermal_history_carries_across_phases() {
        // A second identical burst starts from a warm die, so it peaks
        // higher than the first burst's first instants.
        let mut g = grid();
        let tau = g.global_time_constant();
        let trace = PowerTrace::new()
            .phase("b1", uniform(5.0), tau)
            .phase("cool", uniform(1e-9), tau / 4.0)
            .phase("b2", uniform(5.0), tau);
        let samples = play(&mut g, &trace, &[(0.005, 0.005)], tau / 8.0).expect("play");
        let b2_first = samples
            .iter()
            .find(|s| s.phase == "b2")
            .expect("b2 samples")
            .probes_c[0];
        let b1_first = samples.first().expect("samples").probes_c[0];
        assert!(
            b2_first > b1_first + 5.0,
            "warm start: {b2_first} vs {b1_first}"
        );
    }

    #[test]
    fn trace_duration_and_validation() {
        let trace = PowerTrace::new()
            .phase("a", uniform(1.0), 0.5)
            .phase("b", uniform(2.0), 1.5);
        assert_eq!(trace.phases().len(), 2);
        assert!((trace.duration_s() - 2.0).abs() < 1e-12);

        let mut g = grid();
        assert!(play(&mut g, &PowerTrace::new(), &[], 0.1).is_err());
        assert!(play(&mut g, &trace, &[], -1.0).is_err());
        assert!(
            play(&mut g, &trace, &[(9.0, 9.0)], 0.1).is_err(),
            "probe off-die"
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_phase_rejected() {
        let _ = PowerTrace::new().phase("bad", uniform(1.0), 0.0);
    }
}
