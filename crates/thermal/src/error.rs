//! Error type of the thermal simulator.

use std::fmt;

/// Errors produced by the thermal grid and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A die/package specification was out of its physical domain.
    InvalidSpec {
        /// Reason the specification is rejected.
        reason: String,
    },
    /// A point or rectangle fell outside the die.
    OutOfDie {
        /// Offending x coordinate, metres.
        x_m: f64,
        /// Offending y coordinate, metres.
        y_m: f64,
    },
    /// An iterative solve did not converge.
    NoConvergence {
        /// Sweeps spent.
        sweeps: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidSpec { reason } => write!(f, "invalid die spec: {reason}"),
            ThermalError::OutOfDie { x_m, y_m } => {
                write!(f, "point ({x_m} m, {y_m} m) lies outside the die")
            }
            ThermalError::NoConvergence { sweeps } => {
                write!(f, "thermal solve did not converge within {sweeps} sweeps")
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ThermalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ThermalError::InvalidSpec {
            reason: "bad".into()
        }
        .to_string()
        .contains("bad"));
        assert!(ThermalError::OutOfDie { x_m: 1.0, y_m: 2.0 }
            .to_string()
            .contains("outside"));
        assert!(ThermalError::NoConvergence { sweeps: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn error_traits() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<ThermalError>();
    }
}
