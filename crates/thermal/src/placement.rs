//! Sensor-placement optimization for thermal mapping.
//!
//! The paper's smart unit multiplexes "ring-oscillators distributed on
//! different points" — but *which* points? A sensor only reports the
//! temperature where it sits, so the placement determines how much of
//! the true peak the readout can see. This module optimizes placements
//! against a set of representative power scenarios:
//!
//! * the **peak-tracking error** of a placement is, per scenario, the
//!   gap between the die's true hottest cell and the hottest *sensed*
//!   cell;
//! * [`greedy_placement`] adds sensors one at a time, each minimizing
//!   the **mean** gap over all scenarios (worst-case as tie-break) — the
//!   standard submodular coverage greedy. The mean is the right per-step
//!   objective: the worst-case metric is blind to progress until all but
//!   one scenario is covered, so a minimax greedy stalls.

use crate::error::{Result, ThermalError};
use crate::floorplan::Floorplan;
use crate::grid::{DieSpec, ThermalGrid};

/// A candidate or chosen sensor site, in cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    /// Cell column.
    pub ix: usize,
    /// Cell row.
    pub iy: usize,
}

/// A library of solved temperature fields (one per power scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSet {
    nx: usize,
    ny: usize,
    /// One row-major field per scenario, °C.
    fields: Vec<Vec<f64>>,
}

impl ScenarioSet {
    /// Solves one steady-state field per floorplan on a fresh grid of
    /// `spec` and collects them.
    ///
    /// # Errors
    ///
    /// Propagates grid construction/solve failures; rejects an empty
    /// scenario list.
    pub fn solve(spec: &DieSpec, floorplans: &[Floorplan]) -> Result<Self> {
        if floorplans.is_empty() {
            return Err(ThermalError::InvalidSpec {
                reason: "scenario set needs at least one floorplan".to_string(),
            });
        }
        let mut fields = Vec::with_capacity(floorplans.len());
        for fp in floorplans {
            let mut grid = ThermalGrid::new(spec.clone())?;
            fp.apply(&mut grid)?;
            grid.solve_steady(1e-7, 50_000)?;
            fields.push(grid.temps().to_vec());
        }
        Ok(ScenarioSet {
            nx: spec.nx,
            ny: spec.ny,
            fields,
        })
    }

    /// Number of scenarios.
    #[inline]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when no scenario is present (rejected at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Grid dimensions `(nx, ny)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn value(&self, scenario: usize, site: Site) -> f64 {
        self.fields[scenario][site.iy * self.nx + site.ix]
    }

    fn peak(&self, scenario: usize) -> f64 {
        self.fields[scenario]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Per-scenario gap between the true peak and the hottest sensed
    /// site, K.
    pub fn peak_gaps(&self, sites: &[Site]) -> Vec<f64> {
        (0..self.fields.len())
            .map(|s| {
                let sensed = sites
                    .iter()
                    .map(|&site| self.value(s, site))
                    .fold(f64::NEG_INFINITY, f64::max);
                self.peak(s) - sensed
            })
            .collect()
    }

    /// Worst-case peak-tracking error of a placement over all
    /// scenarios, K. An empty placement senses nothing (infinite gap).
    pub fn worst_peak_gap(&self, sites: &[Site]) -> f64 {
        if sites.is_empty() {
            return f64::INFINITY;
        }
        self.peak_gaps(sites)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Every grid cell as a candidate site.
pub fn all_cells(nx: usize, ny: usize) -> Vec<Site> {
    (0..ny)
        .flat_map(|iy| (0..nx).map(move |ix| Site { ix, iy }))
        .collect()
}

/// Greedily places `k` sensors from `candidates`, each step adding the
/// site that most reduces the mean peak-tracking gap (ties break toward
/// the lowest worst-case gap, then scan order — fully deterministic).
///
/// ```
/// use thermal::placement::{all_cells, greedy_placement, ScenarioSet};
/// use thermal::{DieSpec, Floorplan};
///
/// let spec = DieSpec::default_1cm2(8, 8);
/// let scenarios = ScenarioSet::solve(&spec, &[
///     Floorplan::new().block("hot", 0.001, 0.001, 0.003, 0.003, 3.0),
/// ])?;
/// let sites = greedy_placement(&scenarios, &all_cells(8, 8), 1)?;
/// assert!(scenarios.worst_peak_gap(&sites) < 0.5, "sensor sits on the hotspot");
/// # Ok::<(), thermal::ThermalError>(())
/// ```
///
/// # Errors
///
/// Returns [`ThermalError::InvalidSpec`] when `k` is zero or exceeds the
/// candidate count.
pub fn greedy_placement(
    scenarios: &ScenarioSet,
    candidates: &[Site],
    k: usize,
) -> Result<Vec<Site>> {
    if k == 0 || k > candidates.len() {
        return Err(ThermalError::InvalidSpec {
            reason: format!(
                "cannot place {k} sensors from {} candidates",
                candidates.len()
            ),
        });
    }
    let mut chosen: Vec<Site> = Vec::with_capacity(k);
    let mut remaining: Vec<Site> = candidates.to_vec();
    for _ in 0..k {
        let mut best_idx = 0;
        let mut best_mean = f64::INFINITY;
        let mut best_worst = f64::INFINITY;
        for (i, &cand) in remaining.iter().enumerate() {
            let mut trial = chosen.clone();
            trial.push(cand);
            let gaps = scenarios.peak_gaps(&trial);
            let worst = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean < best_mean - 1e-12 || (mean < best_mean + 1e-12 && worst < best_worst - 1e-12)
            {
                best_mean = mean;
                best_worst = worst;
                best_idx = i;
            }
        }
        chosen.push(remaining.swap_remove(best_idx));
    }
    Ok(chosen)
}

/// A uniform `rows × cols` placement (the naive baseline).
pub fn uniform_placement(nx: usize, ny: usize, cols: usize, rows: usize) -> Vec<Site> {
    let mut sites = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let ix = ((c as f64 + 0.5) / cols as f64 * nx as f64) as usize;
            let iy = ((r as f64 + 0.5) / rows as f64 * ny as f64) as usize;
            sites.push(Site {
                ix: ix.min(nx - 1),
                iy: iy.min(ny - 1),
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three scenarios: each powers a different corner block.
    fn corner_scenarios() -> ScenarioSet {
        let spec = DieSpec::default_1cm2(16, 16);
        let blocks = [(0.0005, 0.0005), (0.0075, 0.0005), (0.0035, 0.0075)];
        let plans: Vec<Floorplan> = blocks
            .iter()
            .map(|&(x, y)| Floorplan::new().block("hot", x, y, 0.002, 0.002, 4.0))
            .collect();
        ScenarioSet::solve(&spec, &plans).expect("scenarios")
    }

    #[test]
    fn greedy_covers_every_hotspot_with_enough_sensors() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        let placement = greedy_placement(&scen, &candidates, 3).expect("placement");
        assert_eq!(placement.len(), 3);
        // With one sensor per hotspot, the worst gap collapses to ~0.
        let gap = scen.worst_peak_gap(&placement);
        assert!(gap < 0.5, "worst gap {gap} K");
    }

    #[test]
    fn greedy_beats_the_uniform_baseline_at_equal_budget() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        let greedy = greedy_placement(&scen, &candidates, 4).expect("placement");
        let uniform = uniform_placement(16, 16, 2, 2);
        let g = scen.worst_peak_gap(&greedy);
        let u = scen.worst_peak_gap(&uniform);
        assert!(g < u, "greedy {g} K vs uniform {u} K");
    }

    #[test]
    fn gap_decreases_monotonically_with_budget() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let placement = greedy_placement(&scen, &candidates, k).expect("placement");
            let gap = scen.worst_peak_gap(&placement);
            assert!(gap <= last + 1e-9, "k={k}: {gap} after {last}");
            last = gap;
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        let a = greedy_placement(&scen, &candidates, 3).expect("placement");
        let b = greedy_placement(&scen, &candidates, 3).expect("placement");
        assert_eq!(a, b);
    }

    #[test]
    fn first_sensor_lands_on_a_hot_cell() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        let placement = greedy_placement(&scen, &candidates, 1).expect("placement");
        // The single best site must read within a few kelvin of the peak
        // in the scenario it covers best.
        let gaps = scen.peak_gaps(&placement);
        let best = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best < 0.1, "closest-covered scenario gap {best} K");
    }

    #[test]
    fn degenerate_requests_rejected() {
        let scen = corner_scenarios();
        let candidates = all_cells(16, 16);
        assert!(greedy_placement(&scen, &candidates, 0).is_err());
        assert!(greedy_placement(&scen, &candidates, candidates.len() + 1).is_err());
        assert!(ScenarioSet::solve(&DieSpec::default_1cm2(8, 8), &[]).is_err());
        assert_eq!(scen.worst_peak_gap(&[]), f64::INFINITY);
    }

    #[test]
    fn scenario_accessors() {
        let scen = corner_scenarios();
        assert_eq!(scen.len(), 3);
        assert!(!scen.is_empty());
        assert_eq!(scen.dims(), (16, 16));
        assert_eq!(all_cells(4, 3).len(), 12);
        assert_eq!(uniform_placement(16, 16, 2, 2).len(), 4);
    }
}
