//! Floorplans: named power blocks applied to the thermal grid.

use crate::error::Result;
use crate::grid::ThermalGrid;

/// A rectangular functional block dissipating power.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name (e.g. `"core0"`, `"cache"`).
    pub name: String,
    /// Lower-left x, metres.
    pub x_m: f64,
    /// Lower-left y, metres.
    pub y_m: f64,
    /// Width, metres.
    pub w_m: f64,
    /// Height, metres.
    pub h_m: f64,
    /// Dissipated power, watts.
    pub power_w: f64,
}

/// A set of blocks covering (part of) a die.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Floorplan {
    blocks: Vec<Block>,
}

impl Floorplan {
    /// An empty floorplan.
    pub fn new() -> Self {
        Floorplan::default()
    }

    /// Adds a block (chainable).
    #[allow(clippy::too_many_arguments)]
    pub fn block(
        mut self,
        name: impl Into<String>,
        x_m: f64,
        y_m: f64,
        w_m: f64,
        h_m: f64,
        power_w: f64,
    ) -> Self {
        self.blocks.push(Block {
            name: name.into(),
            x_m,
            y_m,
            w_m,
            h_m,
            power_w,
        });
        self
    }

    /// The blocks.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total floorplan power, watts.
    pub fn total_power(&self) -> f64 {
        self.blocks.iter().map(|b| b.power_w).sum()
    }

    /// Applies every block's power to `grid` (adds to the existing map).
    ///
    /// # Errors
    ///
    /// Propagates out-of-die errors from misplaced blocks.
    pub fn apply(&self, grid: &mut ThermalGrid) -> Result<()> {
        for b in &self.blocks {
            grid.add_power_rect(b.x_m, b.y_m, b.w_m, b.h_m, b.power_w)?;
        }
        Ok(())
    }

    /// A processor-like floorplan on a `w × h` die (metres): two hot
    /// cores along the bottom, a cooler cache band on top, I/O strip in
    /// between — the kind of layout whose hotspots motivate on-die
    /// thermal mapping.
    pub fn processor_like(w: f64, h: f64, total_power_w: f64) -> Self {
        Floorplan::new()
            .block(
                "core0",
                0.05 * w,
                0.05 * h,
                0.35 * w,
                0.40 * h,
                0.38 * total_power_w,
            )
            .block(
                "core1",
                0.60 * w,
                0.05 * h,
                0.35 * w,
                0.40 * h,
                0.38 * total_power_w,
            )
            .block(
                "io",
                0.05 * w,
                0.50 * h,
                0.90 * w,
                0.10 * h,
                0.08 * total_power_w,
            )
            .block(
                "cache",
                0.05 * w,
                0.65 * h,
                0.90 * w,
                0.30 * h,
                0.16 * total_power_w,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DieSpec;

    #[test]
    fn builder_accumulates_blocks() {
        let fp = Floorplan::new()
            .block("a", 0.0, 0.0, 0.001, 0.001, 1.0)
            .block("b", 0.002, 0.002, 0.001, 0.001, 2.0);
        assert_eq!(fp.blocks().len(), 2);
        assert!((fp.total_power() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn processor_like_power_sums_to_total() {
        let fp = Floorplan::processor_like(0.01, 0.01, 5.0);
        assert!((fp.total_power() - 5.0).abs() < 1e-9);
        assert_eq!(fp.blocks().len(), 4);
    }

    #[test]
    fn applied_floorplan_heats_the_cores_most() {
        let mut grid = ThermalGrid::new(DieSpec::default_1cm2(24, 24)).unwrap();
        let fp = Floorplan::processor_like(0.01, 0.01, 5.0);
        fp.apply(&mut grid).unwrap();
        assert!((grid.total_power() - 5.0).abs() < 1e-9);
        grid.solve_steady(1e-8, 20_000).unwrap();
        let core = grid.temp_at(0.002, 0.002).unwrap();
        let cache = grid.temp_at(0.005, 0.0085).unwrap();
        assert!(core > cache + 0.5, "core {core} hotter than cache {cache}");
    }

    #[test]
    fn misplaced_block_reported() {
        let mut grid = ThermalGrid::new(DieSpec::default_1cm2(8, 8)).unwrap();
        let fp = Floorplan::new().block("bad", 0.02, 0.02, 0.001, 0.001, 1.0);
        assert!(fp.apply(&mut grid).is_err());
    }
}
