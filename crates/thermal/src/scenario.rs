//! Canned thermal scenarios, including the paper's introduction claims.
//!
//! The introduction motivates built-in sensing with two observations:
//! a 64-bit RISC processor measured **135 °C** junction temperature, and
//! technology scaling makes it worse — a 0.13 µm chip's junction
//! temperature (rise) was estimated at **3.2×** that of a 0.35 µm chip
//! under equivalent conditions. [`scaling_study`] reproduces that trend
//! from first principles: shrinking the same design concentrates similar
//! power into a smaller area, and power density drives the rise.

use crate::error::Result;
use crate::floorplan::Floorplan;
use crate::grid::{DieSpec, ThermalGrid};

/// One row of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Node label, e.g. `"0.35um"`.
    pub node: String,
    /// Feature size, micrometres.
    pub feature_um: f64,
    /// Die edge, metres (same design, shrunk).
    pub die_edge_m: f64,
    /// Total power, watts.
    pub power_w: f64,
    /// Power density, W/cm².
    pub power_density_w_cm2: f64,
    /// Peak junction temperature, °C.
    pub peak_temp_c: f64,
    /// Peak rise over ambient, K.
    pub peak_rise_k: f64,
}

/// Scaling parameters of one technology node for the study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeScaling {
    /// Feature size in micrometres.
    pub feature_um: f64,
    /// Total chip power relative to the 0.35 µm baseline. Historically,
    /// frequency growth and leakage more than offset the per-gate energy
    /// savings, so this *rises* as the node shrinks.
    pub power_scale: f64,
}

/// The default node ladder used by the study (0.35 µm → 0.13 µm), tuned
/// to the era's published trend: total power grows while area shrinks
/// quadratically with the feature size.
pub fn default_node_ladder() -> Vec<NodeScaling> {
    vec![
        NodeScaling {
            feature_um: 0.35,
            power_scale: 1.0,
        },
        NodeScaling {
            feature_um: 0.25,
            power_scale: 1.35,
        },
        NodeScaling {
            feature_um: 0.18,
            power_scale: 1.75,
        },
        NodeScaling {
            feature_um: 0.13,
            power_scale: 2.3,
        },
    ]
}

/// Runs the scaling study: the *same* processor-like design is shrunk
/// with the feature size (die edge ∝ feature), total power follows the
/// node's `power_scale`, and the package stays the same (θ_JA scales
/// weakly, as packages improved much slower than silicon). Returns one
/// row per node.
///
/// # Errors
///
/// Propagates grid/solver failures.
pub fn scaling_study(
    base_die_edge_m: f64,
    base_power_w: f64,
    ladder: &[NodeScaling],
) -> Result<Vec<ScalingRow>> {
    let base_feature = ladder.first().map(|n| n.feature_um).unwrap_or(0.35);
    let mut rows = Vec::with_capacity(ladder.len());
    for node in ladder {
        let shrink = node.feature_um / base_feature;
        let edge = base_die_edge_m * shrink;
        let power = base_power_w * node.power_scale;
        let mut spec = DieSpec::default_1cm2(24, 24);
        spec.width_m = edge;
        spec.height_m = edge;
        // "Under equivalent conditions": the package and cooling stay the
        // same across nodes (a high-performance 6 K/W assembly), so the
        // junction rise tracks total power and its spatial concentration.
        spec.theta_ja = 6.0;
        let mut grid = ThermalGrid::new(spec)?;
        Floorplan::processor_like(edge, edge, power).apply(&mut grid)?;
        grid.solve_steady(1e-7, 50_000)?;
        let peak = grid.max_temp();
        rows.push(ScalingRow {
            node: format!("{:.2}um", node.feature_um),
            feature_um: node.feature_um,
            die_edge_m: edge,
            power_w: power,
            power_density_w_cm2: power / (edge * edge * 1e4),
            peak_temp_c: peak,
            peak_rise_k: peak - grid.spec().ambient_c,
        });
    }
    Ok(rows)
}

/// A 64-bit-RISC-class hotspot scenario on a 0.35 µm-era die: returns
/// the solved grid. With ~16 W in a 1.4 cm² die the hottest core region
/// reaches the ~135 °C the paper's introduction cites.
///
/// # Errors
///
/// Propagates grid/solver failures.
pub fn risc_hotspot() -> Result<ThermalGrid> {
    let mut spec = DieSpec::default_1cm2(32, 32);
    spec.width_m = 0.012;
    spec.height_m = 0.012;
    spec.theta_ja = 6.0; // high-performance package, forced air
    let mut grid = ThermalGrid::new(spec)?;
    Floorplan::processor_like(0.012, 0.012, 16.0).apply(&mut grid)?;
    grid.solve_steady(1e-7, 50_000)?;
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rises_monotonically() {
        let rows = scaling_study(0.01, 5.0, &default_node_ladder()).unwrap();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[1].peak_rise_k > w[0].peak_rise_k,
                "{}: {} K vs {}: {} K",
                w[1].node,
                w[1].peak_rise_k,
                w[0].node,
                w[0].peak_rise_k
            );
            assert!(w[1].power_density_w_cm2 > w[0].power_density_w_cm2);
        }
    }

    #[test]
    fn um130_rise_roughly_3x_um350() {
        // The paper's intro: 0.13 µm junction temperature (rise) ≈ 3.2×
        // that of 0.35 µm under equivalent conditions.
        let rows = scaling_study(0.01, 5.0, &default_node_ladder()).unwrap();
        let base = rows.first().unwrap().peak_rise_k;
        let scaled = rows.last().unwrap().peak_rise_k;
        let ratio = scaled / base;
        assert!(ratio > 2.2 && ratio < 4.5, "rise ratio {ratio}");
    }

    #[test]
    fn risc_hotspot_reaches_130s() {
        let grid = risc_hotspot().unwrap();
        let peak = grid.max_temp();
        assert!(peak > 110.0 && peak < 170.0, "peak {peak} °C");
        // And the die is strongly non-uniform — the reason for mapping.
        assert!(grid.max_temp() - grid.min_temp() > 5.0);
    }
}
