//! The 2-D die thermal RC grid.
//!
//! The die is discretized into `nx × ny` cells. Each cell exchanges heat
//! laterally with its 4-neighbours through silicon conduction
//! (`G_lat = k·t` per face for square cells) and vertically with the
//! ambient through the package (the total package conductance `1/θ_JA`
//! divided evenly over the cells). Each cell stores heat in
//! `C = c_v · d² · t`.
//!
//! ```text
//! C·dT/dt = P + G_lat·Σ(T_neighbour − T) + G_v·(T_amb − T)
//! ```

use crate::error::{Result, ThermalError};

/// Physical description of a die and its package.
#[derive(Debug, Clone, PartialEq)]
pub struct DieSpec {
    /// Die width, metres.
    pub width_m: f64,
    /// Die height, metres.
    pub height_m: f64,
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Die (active silicon + bulk) thickness, metres.
    pub thickness_m: f64,
    /// Silicon thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Junction-to-ambient package resistance, K/W.
    pub theta_ja: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Volumetric heat capacity, J/(m³·K).
    pub heat_capacity: f64,
}

impl DieSpec {
    /// A representative 1 cm² die in a 0.35 µm-era package on a 32×32
    /// grid: 400 µm silicon, θ_JA = 20 K/W, 25 °C ambient.
    pub fn default_1cm2(nx: usize, ny: usize) -> Self {
        DieSpec {
            width_m: 0.01,
            height_m: 0.01,
            nx,
            ny,
            thickness_m: 400e-6,
            conductivity: 150.0,
            theta_ja: 20.0,
            ambient_c: 25.0,
            heat_capacity: 1.6e6,
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidSpec`] when any dimension or
    /// property is non-positive or the grid is degenerate.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("width_m", self.width_m),
            ("height_m", self.height_m),
            ("thickness_m", self.thickness_m),
            ("conductivity", self.conductivity),
            ("theta_ja", self.theta_ja),
            ("heat_capacity", self.heat_capacity),
        ];
        for (name, v) in positive {
            if !(v > 0.0) {
                return Err(ThermalError::InvalidSpec {
                    reason: format!("{name} = {v} must be positive"),
                });
            }
        }
        if self.nx < 2 || self.ny < 2 {
            return Err(ThermalError::InvalidSpec {
                reason: format!("grid {}×{} too small; need at least 2×2", self.nx, self.ny),
            });
        }
        Ok(())
    }

    /// Cell pitch in x, metres.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.width_m / self.nx as f64
    }

    /// Cell pitch in y, metres.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.height_m / self.ny as f64
    }
}

/// The discretized die with its power map and temperature field.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGrid {
    spec: DieSpec,
    /// Power injected into each cell, watts.
    power: Vec<f64>,
    /// Cell temperatures, °C.
    temps: Vec<f64>,
    /// Lateral conductance per x-face, W/K.
    g_lat_x: f64,
    /// Lateral conductance per y-face, W/K.
    g_lat_y: f64,
    /// Vertical conductance per cell, W/K.
    g_vert: f64,
    /// Heat capacity per cell, J/K.
    cap: f64,
}

impl ThermalGrid {
    /// Builds a grid at ambient temperature with zero power everywhere.
    ///
    /// # Errors
    ///
    /// Propagates [`DieSpec::validate`] failures.
    pub fn new(spec: DieSpec) -> Result<Self> {
        spec.validate()?;
        let n = spec.nx * spec.ny;
        // Conduction through a face: k · (cross-section) / distance.
        let g_lat_x = spec.conductivity * spec.dy() * spec.thickness_m / spec.dx();
        let g_lat_y = spec.conductivity * spec.dx() * spec.thickness_m / spec.dy();
        let g_vert = 1.0 / (spec.theta_ja * n as f64);
        let cap = spec.heat_capacity * spec.dx() * spec.dy() * spec.thickness_m;
        Ok(ThermalGrid {
            power: vec![0.0; n],
            temps: vec![spec.ambient_c; n],
            g_lat_x,
            g_lat_y,
            g_vert,
            cap,
            spec,
        })
    }

    /// The die description.
    #[inline]
    pub fn spec(&self) -> &DieSpec {
        &self.spec
    }

    /// Number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.power.len()
    }

    #[inline]
    pub(crate) fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.spec.nx && iy < self.spec.ny);
        iy * self.spec.nx + ix
    }

    /// Cell indices covering the physical point `(x, y)` in metres.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfDie`] for points outside the die.
    pub fn cell_at(&self, x_m: f64, y_m: f64) -> Result<(usize, usize)> {
        if !(0.0..=self.spec.width_m).contains(&x_m) || !(0.0..=self.spec.height_m).contains(&y_m) {
            return Err(ThermalError::OutOfDie { x_m, y_m });
        }
        let ix = ((x_m / self.spec.dx()) as usize).min(self.spec.nx - 1);
        let iy = ((y_m / self.spec.dy()) as usize).min(self.spec.ny - 1);
        Ok((ix, iy))
    }

    /// Injects `watts` into the cell containing `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfDie`] for points outside the die.
    pub fn add_power_at(&mut self, x_m: f64, y_m: f64, watts: f64) -> Result<()> {
        let (ix, iy) = self.cell_at(x_m, y_m)?;
        let idx = self.index(ix, iy);
        self.power[idx] += watts;
        Ok(())
    }

    /// Spreads `watts` uniformly over the rectangle `[x, x+w] × [y, y+h]`
    /// (metres), clipped to the die.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfDie`] when the rectangle lies
    /// entirely outside the die or has non-positive size.
    pub fn add_power_rect(&mut self, x: f64, y: f64, w: f64, h: f64, watts: f64) -> Result<()> {
        if w <= 0.0 || h <= 0.0 {
            return Err(ThermalError::OutOfDie { x_m: x, y_m: y });
        }
        let mut covered = Vec::new();
        for iy in 0..self.spec.ny {
            for ix in 0..self.spec.nx {
                let cx = (ix as f64 + 0.5) * self.spec.dx();
                let cy = (iy as f64 + 0.5) * self.spec.dy();
                if cx >= x && cx <= x + w && cy >= y && cy <= y + h {
                    covered.push(self.index(ix, iy));
                }
            }
        }
        if covered.is_empty() {
            return Err(ThermalError::OutOfDie { x_m: x, y_m: y });
        }
        let share = watts / covered.len() as f64;
        for idx in covered {
            self.power[idx] += share;
        }
        Ok(())
    }

    /// Clears the power map.
    pub fn clear_power(&mut self) {
        self.power.iter_mut().for_each(|p| *p = 0.0);
    }

    /// Total injected power, watts.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Temperature of cell `(ix, iy)`, °C.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn cell_temp(&self, ix: usize, iy: usize) -> f64 {
        self.temps[self.index(ix, iy)]
    }

    /// Temperature at the physical point `(x, y)` (nearest cell), °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfDie`] for points outside the die.
    pub fn temp_at(&self, x_m: f64, y_m: f64) -> Result<f64> {
        let (ix, iy) = self.cell_at(x_m, y_m)?;
        Ok(self.cell_temp(ix, iy))
    }

    /// Hottest cell temperature, °C.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coldest cell temperature, °C.
    pub fn min_temp(&self) -> f64 {
        self.temps.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Mean die temperature, °C.
    pub fn mean_temp(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Raw temperature field (row-major, `iy·nx + ix`), °C.
    #[inline]
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Resets the field to ambient.
    pub fn reset(&mut self) {
        let amb = self.spec.ambient_c;
        self.temps.iter_mut().for_each(|t| *t = amb);
    }

    /// Solves the steady-state field with successive over-relaxation.
    /// Returns the number of sweeps used.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] when the residual does not
    /// drop below `tol_k` kelvins within `max_sweeps`.
    pub fn solve_steady(&mut self, tol_k: f64, max_sweeps: usize) -> Result<usize> {
        const OMEGA: f64 = 1.7;
        let (nx, ny) = (self.spec.nx, self.spec.ny);
        for sweep in 1..=max_sweeps {
            let mut max_delta = 0.0_f64;
            for iy in 0..ny {
                for ix in 0..nx {
                    let idx = self.index(ix, iy);
                    let mut g_sum = self.g_vert;
                    let mut flow = self.g_vert * self.spec.ambient_c + self.power[idx];
                    if ix > 0 {
                        g_sum += self.g_lat_x;
                        flow += self.g_lat_x * self.temps[idx - 1];
                    }
                    if ix + 1 < nx {
                        g_sum += self.g_lat_x;
                        flow += self.g_lat_x * self.temps[idx + 1];
                    }
                    if iy > 0 {
                        g_sum += self.g_lat_y;
                        flow += self.g_lat_y * self.temps[idx - nx];
                    }
                    if iy + 1 < ny {
                        g_sum += self.g_lat_y;
                        flow += self.g_lat_y * self.temps[idx + nx];
                    }
                    let t_new = flow / g_sum;
                    let t_relaxed = self.temps[idx] + OMEGA * (t_new - self.temps[idx]);
                    max_delta = max_delta.max((t_relaxed - self.temps[idx]).abs());
                    self.temps[idx] = t_relaxed;
                }
            }
            if max_delta < tol_k {
                return Ok(sweep);
            }
        }
        Err(ThermalError::NoConvergence { sweeps: max_sweeps })
    }

    /// Advances the field by one implicit (backward-Euler) step of
    /// `dt_s` seconds, using Gauss–Seidel inner iterations.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] if the inner solve stalls.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive.
    pub fn step_transient(&mut self, dt_s: f64) -> Result<()> {
        assert!(dt_s > 0.0, "time step must be positive");
        let (nx, ny) = (self.spec.nx, self.spec.ny);
        let c_dt = self.cap / dt_s;
        let t_old = self.temps.clone();
        for _sweep in 0..500 {
            let mut max_delta = 0.0_f64;
            for iy in 0..ny {
                for ix in 0..nx {
                    let idx = self.index(ix, iy);
                    let mut g_sum = self.g_vert + c_dt;
                    let mut flow =
                        self.g_vert * self.spec.ambient_c + self.power[idx] + c_dt * t_old[idx];
                    if ix > 0 {
                        g_sum += self.g_lat_x;
                        flow += self.g_lat_x * self.temps[idx - 1];
                    }
                    if ix + 1 < nx {
                        g_sum += self.g_lat_x;
                        flow += self.g_lat_x * self.temps[idx + 1];
                    }
                    if iy > 0 {
                        g_sum += self.g_lat_y;
                        flow += self.g_lat_y * self.temps[idx - nx];
                    }
                    if iy + 1 < ny {
                        g_sum += self.g_lat_y;
                        flow += self.g_lat_y * self.temps[idx + nx];
                    }
                    let t_new = flow / g_sum;
                    max_delta = max_delta.max((t_new - self.temps[idx]).abs());
                    self.temps[idx] = t_new;
                }
            }
            if max_delta < 1e-6 {
                return Ok(());
            }
        }
        Err(ThermalError::NoConvergence { sweeps: 500 })
    }

    /// Runs `steps` transient steps of `dt_s` seconds each.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalGrid::step_transient`] failures.
    pub fn run_transient(&mut self, dt_s: f64, steps: usize) -> Result<()> {
        for _ in 0..steps {
            self.step_transient(dt_s)?;
        }
        Ok(())
    }

    /// Thermal time constant estimate of one cell, seconds (`C/G`) —
    /// the scale of *local* diffusion, and a safe transient step size.
    pub fn time_constant(&self) -> f64 {
        self.cap / (self.g_vert + 2.0 * (self.g_lat_x + self.g_lat_y))
    }

    /// Global die-to-ambient time constant, seconds
    /// (`C_total · θ_JA`) — the scale on which the whole die heats up.
    pub fn global_time_constant(&self) -> f64 {
        self.cap * self.cell_count() as f64 * self.spec.theta_ja
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ThermalGrid {
        ThermalGrid::new(DieSpec::default_1cm2(16, 16)).unwrap()
    }

    #[test]
    fn starts_at_ambient_with_zero_power() {
        let g = grid();
        assert_eq!(g.total_power(), 0.0);
        assert!((g.max_temp() - 25.0).abs() < 1e-12);
        assert!((g.min_temp() - 25.0).abs() < 1e-12);
        assert_eq!(g.cell_count(), 256);
    }

    #[test]
    fn uniform_power_gives_theta_ja_rise() {
        // ΔT = P · θ_JA for uniform heating (no lateral gradients).
        let mut g = grid();
        g.add_power_rect(0.0, 0.0, 0.01, 0.01, 5.0).unwrap();
        assert!((g.total_power() - 5.0).abs() < 1e-9);
        g.solve_steady(1e-9, 10_000).unwrap();
        let expect = 25.0 + 5.0 * 20.0;
        assert!(
            (g.mean_temp() - expect).abs() < 0.5,
            "mean {} vs {}",
            g.mean_temp(),
            expect
        );
        // Uniform: nearly flat field.
        assert!(g.max_temp() - g.min_temp() < 0.5);
    }

    #[test]
    fn hotspot_creates_a_gradient_peaking_at_the_source() {
        let mut g = grid();
        // 3 W in a 1 mm² corner block.
        g.add_power_rect(0.001, 0.001, 0.001, 0.001, 3.0).unwrap();
        g.solve_steady(1e-9, 20_000).unwrap();
        let hot = g.temp_at(0.0015, 0.0015).unwrap();
        let far = g.temp_at(0.009, 0.009).unwrap();
        assert!(hot > far + 1.0, "hotspot {hot} vs far corner {far}");
        assert!(g.max_temp() >= hot - 1e-9);
        // Maximum principle: nothing below ambient.
        assert!(g.min_temp() >= 25.0 - 1e-9);
    }

    #[test]
    fn energy_balance_at_steady_state() {
        // All injected power must leave through the package:
        // Σ G_v·(T − T_amb) = P_total.
        let mut g = grid();
        g.add_power_rect(0.002, 0.002, 0.004, 0.004, 2.0).unwrap();
        g.solve_steady(1e-10, 20_000).unwrap();
        let n = g.cell_count() as f64;
        let g_v = 1.0 / (g.spec().theta_ja * n);
        let out: f64 = g
            .temps()
            .iter()
            .map(|t| g_v * (t - g.spec().ambient_c))
            .sum();
        assert!((out - 2.0).abs() < 0.01, "outflow {out} vs 2 W");
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut steady = grid();
        steady.add_power_rect(0.0, 0.0, 0.01, 0.01, 4.0).unwrap();
        steady.solve_steady(1e-9, 10_000).unwrap();

        let mut tr = grid();
        tr.add_power_rect(0.0, 0.0, 0.01, 0.01, 4.0).unwrap();
        // Integrate well past the global package time constant.
        let dt = tr.global_time_constant() / 100.0;
        tr.run_transient(dt, 800).unwrap();
        assert!(
            (tr.mean_temp() - steady.mean_temp()).abs() < 1.0,
            "transient {} vs steady {}",
            tr.mean_temp(),
            steady.mean_temp()
        );
    }

    #[test]
    fn transient_monotonic_heating() {
        let mut g = grid();
        g.add_power_rect(0.0, 0.0, 0.01, 0.01, 4.0).unwrap();
        let mut last = g.mean_temp();
        for _ in 0..5 {
            g.run_transient(g.global_time_constant() / 50.0, 10)
                .unwrap();
            let now = g.mean_temp();
            assert!(now >= last - 1e-9, "heating is monotone: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn cooling_after_power_off() {
        let mut g = grid();
        g.add_power_rect(0.0, 0.0, 0.01, 0.01, 4.0).unwrap();
        g.solve_steady(1e-9, 10_000).unwrap();
        let hot = g.mean_temp();
        g.clear_power();
        g.run_transient(g.global_time_constant() / 20.0, 100)
            .unwrap();
        assert!(g.mean_temp() < hot - 0.5);
        assert!(g.mean_temp() >= 25.0 - 1e-6, "never below ambient");
    }

    #[test]
    fn out_of_die_rejected() {
        let mut g = grid();
        assert!(matches!(
            g.temp_at(0.02, 0.0),
            Err(ThermalError::OutOfDie { .. })
        ));
        assert!(g.add_power_at(-0.001, 0.0, 1.0).is_err());
        assert!(g.add_power_rect(0.02, 0.02, 0.001, 0.001, 1.0).is_err());
        assert!(g.add_power_rect(0.0, 0.0, -1.0, 0.001, 1.0).is_err());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = DieSpec::default_1cm2(16, 16);
        s.theta_ja = 0.0;
        assert!(ThermalGrid::new(s).is_err());
        let mut s = DieSpec::default_1cm2(1, 16);
        s.nx = 1;
        assert!(ThermalGrid::new(s).is_err());
    }

    #[test]
    fn reset_restores_ambient() {
        let mut g = grid();
        g.add_power_rect(0.0, 0.0, 0.01, 0.01, 4.0).unwrap();
        g.solve_steady(1e-6, 10_000).unwrap();
        g.reset();
        assert!((g.mean_temp() - 25.0).abs() < 1e-12);
    }
}
