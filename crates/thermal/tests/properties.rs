//! Property-based tests of the thermal solver's physical invariants.

use proptest::prelude::*;

use thermal::{DieSpec, ThermalGrid};

fn grid(n: usize) -> ThermalGrid {
    ThermalGrid::new(DieSpec::default_1cm2(n, n)).expect("grid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn maximum_principle_with_nonnegative_power(
        blocks in prop::collection::vec(
            (0.0f64..0.007, 0.0f64..0.007, 0.002f64..0.003, 0.002f64..0.003, 0.0f64..3.0),
            1..4,
        ),
    ) {
        // With only heat sources (no sinks below ambient), the solved
        // field must never drop below ambient, and the peak must not
        // exceed the lumped worst case P_total · θ_JA.
        let mut g = grid(12);
        let mut total = 0.0;
        for (x, y, w, h, p) in blocks {
            g.add_power_rect(x, y, w, h, p).expect("block");
            total += p;
        }
        g.solve_steady(1e-8, 30_000).expect("solve");
        let amb = g.spec().ambient_c;
        prop_assert!(g.min_temp() >= amb - 1e-6, "below ambient: {}", g.min_temp());
        // Peak rise ≤ P · (θ_JA + local spreading resistance). A corner
        // point source sees at worst a few lateral cell resistances of
        // 1/G_lat = 1/(k·t) ≈ 17 K/W each on top of the package.
        let g_lat = g.spec().conductivity * g.spec().thickness_m;
        let bound = amb + total * (g.spec().theta_ja + 5.0 / g_lat) + 1.0;
        prop_assert!(
            g.max_temp() <= bound,
            "peak {} vs bound {}",
            g.max_temp(),
            bound
        );
    }

    #[test]
    fn steady_state_is_linear_in_power(
        x in 0.001f64..0.008,
        y in 0.001f64..0.008,
        p in 0.1f64..3.0,
        scale in 1.5f64..4.0,
    ) {
        // The grid is a linear network: scaling the power map scales the
        // temperature *rise* field by the same factor.
        let rise = |power: f64| {
            let mut g = grid(10);
            g.add_power_rect(x, y, 0.0015, 0.0015, power).expect("block");
            g.solve_steady(1e-9, 30_000).expect("solve");
            g.max_temp() - g.spec().ambient_c
        };
        let r1 = rise(p);
        let r2 = rise(p * scale);
        prop_assert!((r2 / r1 - scale).abs() < 0.02 * scale, "{r2} vs {}", r1 * scale);
    }

    #[test]
    fn energy_balance_at_steady_state(
        px in 0.0f64..0.009,
        py in 0.0f64..0.009,
        p in 0.2f64..4.0,
    ) {
        let mut g = grid(10);
        g.add_power_rect(px, py, 0.001, 0.001, p).expect("block");
        g.solve_steady(1e-10, 40_000).expect("solve");
        let n = g.cell_count() as f64;
        let g_v = 1.0 / (g.spec().theta_ja * n);
        let outflow: f64 = g.temps().iter().map(|t| g_v * (t - g.spec().ambient_c)).sum();
        prop_assert!((outflow - p).abs() < 0.01 * p, "outflow {outflow} vs power {p}");
    }

    #[test]
    fn transient_never_overshoots_steady_state(
        p in 0.5f64..4.0,
        steps in 5usize..40,
    ) {
        let mut steady = grid(8);
        steady.add_power_rect(0.0, 0.0, 0.01, 0.01, p).expect("block");
        steady.solve_steady(1e-9, 30_000).expect("solve");
        let limit = steady.max_temp();

        let mut tr = grid(8);
        tr.add_power_rect(0.0, 0.0, 0.01, 0.01, p).expect("block");
        let dt = tr.global_time_constant() / 20.0;
        let mut last = tr.mean_temp();
        for _ in 0..steps {
            tr.step_transient(dt).expect("step");
            let now = tr.mean_temp();
            prop_assert!(now >= last - 1e-9, "monotone heating");
            prop_assert!(tr.max_temp() <= limit + 0.1, "no overshoot: {}", tr.max_temp());
            last = now;
        }
    }

    #[test]
    fn hotter_ambient_shifts_the_whole_field(ambient in 0.0f64..60.0, p in 0.5f64..3.0) {
        let mut spec = DieSpec::default_1cm2(8, 8);
        spec.ambient_c = ambient;
        let mut g = ThermalGrid::new(spec).expect("grid");
        g.add_power_rect(0.0, 0.0, 0.01, 0.01, p).expect("block");
        g.solve_steady(1e-9, 30_000).expect("solve");
        // Uniform heating: mean rise = P·θ_JA regardless of ambient.
        let rise = g.mean_temp() - ambient;
        prop_assert!((rise - p * 20.0).abs() < 0.5, "rise {rise} vs {}", p * 20.0);
    }
}
