//! Property-based tests of the analytical layer's invariants.

use proptest::prelude::*;

use tsense_core::calibration::{Calibration, TwoPoint};
use tsense_core::gate::{Gate, GateKind};
use tsense_core::linearity::{FitKind, LinearFit, NonLinearity};
use tsense_core::optimize::enumerate_configs;
use tsense_core::ring::{CellConfig, PeriodCurve, RingOscillator};
use tsense_core::sensitivity::DigitizerSpec;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, Hertz, Kelvin, Seconds, TempRange};

fn arb_kind() -> impl Strategy<Value = GateKind> {
    prop::sample::select(GateKind::ALL.to_vec())
}

fn arb_stage_count() -> impl Strategy<Value = usize> {
    (1usize..=10).prop_map(|k| 2 * k + 1) // odd, 3..=21
}

proptest! {
    #[test]
    fn celsius_kelvin_round_trip(t in -273.0f64..1000.0) {
        let c = Celsius::new(t);
        let k: Kelvin = c.into();
        let back: Celsius = k.into();
        prop_assert!((back.get() - t).abs() < 1e-9);
    }

    #[test]
    fn temp_range_samples_sorted_and_bounded(
        lo in -100.0f64..50.0,
        span in 1.0f64..300.0,
        n in 2usize..50,
    ) {
        let range = TempRange::new(Celsius::new(lo), Celsius::new(lo + span));
        let samples = range.samples(n);
        prop_assert_eq!(samples.len(), n);
        for w in samples.windows(2) {
            prop_assert!(w[1].get() > w[0].get());
        }
        prop_assert!((samples[0].get() - lo).abs() < 1e-9);
        prop_assert!((samples[n - 1].get() - (lo + span)).abs() < 1e-9);
    }

    #[test]
    fn ring_period_monotone_in_temperature(
        kind in arb_kind(),
        wn_um in 0.5f64..4.0,
        ratio in 1.0f64..4.0,
        stages in arb_stage_count(),
    ) {
        let tech = Technology::um350();
        let gate = Gate::with_ratio(kind, wn_um * 1e-6, ratio).expect("gate");
        let ring = RingOscillator::uniform(gate, stages).expect("ring");
        let curve = ring.period_curve(&tech, TempRange::paper(), 21).expect("curve");
        prop_assert!(curve.is_monotonic_increasing(), "ring {ring}");
    }

    #[test]
    fn uniform_ring_period_proportional_to_stage_count(
        kind in arb_kind(),
        ratio in 1.0f64..4.0,
    ) {
        let tech = Technology::um350();
        let gate = Gate::with_ratio(kind, 1e-6, ratio).expect("gate");
        let t = Celsius::new(27.0);
        let p5 = RingOscillator::uniform(gate, 5).expect("ring").period(&tech, t).expect("p");
        let p9 = RingOscillator::uniform(gate, 9).expect("ring").period(&tech, t).expect("p");
        prop_assert!((p9.get() / p5.get() - 9.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn nonlinearity_invariant_under_period_scaling(
        scale in 0.1f64..100.0,
        curvature in -5.0f64..5.0,
    ) {
        // NL is normalized to full scale, so multiplying every period by a
        // constant must not change it.
        let temps: Vec<Celsius> =
            (0..21).map(|i| Celsius::new(-50.0 + 10.0 * i as f64)).collect();
        let base: Vec<f64> = temps
            .iter()
            .map(|t| 1e-9 + 2e-12 * t.get() + curvature * 1e-16 * t.get() * t.get())
            .collect();
        let c1 = PeriodCurve::new(temps.clone(), base.iter().map(|&p| Seconds::new(p)).collect());
        let c2 = PeriodCurve::new(temps, base.iter().map(|&p| Seconds::new(p * scale)).collect());
        let n1 = NonLinearity::of_curve(&c1, FitKind::LeastSquares).expect("nl");
        let n2 = NonLinearity::of_curve(&c2, FitKind::LeastSquares).expect("nl");
        prop_assert!((n1.max_abs_percent() - n2.max_abs_percent()).abs() < 1e-6);
    }

    #[test]
    fn least_squares_residuals_orthogonal(
        ys in prop::collection::vec(-100.0f64..100.0, 3..40),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let fit = LinearFit::least_squares(&xs, &ys).expect("fit");
        let resid: Vec<f64> = xs.iter().zip(&ys).map(|(&x, &y)| y - fit.predict(x)).collect();
        let sum: f64 = resid.iter().sum();
        let dot: f64 = resid.iter().zip(&xs).map(|(r, x)| r * x).sum();
        let scale = ys.iter().map(|y| y.abs()).fold(1.0, f64::max) * ys.len() as f64;
        prop_assert!(sum.abs() < 1e-8 * scale, "residual sum {sum}");
        prop_assert!(dot.abs() < 1e-6 * scale * xs.len() as f64, "residual·x {dot}");
    }

    #[test]
    fn fit_predict_invert_round_trip(
        slope in prop::num::f64::NORMAL.prop_filter("nonzero", |s| s.abs() > 1e-6 && s.abs() < 1e6),
        intercept in -1e3f64..1e3,
        x in -1e3f64..1e3,
    ) {
        let fit = LinearFit { slope, intercept, r_squared: 1.0 };
        let y = fit.predict(x);
        let back = fit.invert(y).expect("invertible");
        prop_assert!((back - x).abs() < 1e-6 * (1.0 + x.abs()));
    }

    #[test]
    fn two_point_calibration_exact_at_anchors(
        t1 in -50.0f64..40.0,
        dt in 10.0f64..110.0,
    ) {
        let tech = Technology::um350();
        let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("gate");
        let ring = RingOscillator::uniform(gate, 5).expect("ring");
        let (a, b) = (Celsius::new(t1), Celsius::new(t1 + dt));
        let cal = TwoPoint::fit_ring(&ring, &tech, a, b).expect("cal");
        let pa = ring.period(&tech, a).expect("p");
        let pb = ring.period(&tech, b).expect("p");
        prop_assert!((cal.estimate(pa).get() - a.get()).abs() < 1e-6);
        prop_assert!((cal.estimate(pb).get() - b.get()).abs() < 1e-6);
    }

    #[test]
    fn config_round_trip_preserves_multiset(
        counts in prop::collection::vec(0usize..4, 5),
    ) {
        let total: usize = counts.iter().sum();
        prop_assume!(total >= 3 && total % 2 == 1);
        let groups: Vec<(usize, GateKind)> = counts
            .iter()
            .zip(GateKind::PAPER_SET)
            .filter(|(&c, _)| c > 0)
            .map(|(&c, k)| (c, k))
            .collect();
        let config = CellConfig::from_groups(&groups).expect("config");
        prop_assert_eq!(config.stage_count(), total);
        let hist = config.histogram();
        for (count, kind) in &groups {
            let found = hist.iter().find(|(k, _)| k == kind).map(|(_, n)| *n);
            prop_assert_eq!(found, Some(*count));
        }
    }

    #[test]
    fn enumeration_count_matches_stars_and_bars(
        kinds_n in 1usize..5,
        half_stages in 1usize..4,
    ) {
        let stages = 2 * half_stages + 1;
        let kinds = &GateKind::ALL[..kinds_n];
        let configs = enumerate_configs(kinds, stages);
        // C(stages + kinds_n - 1, kinds_n - 1)
        let mut expect = 1usize;
        for i in 0..(kinds_n - 1) {
            expect = expect * (stages + kinds_n - 1 - i) / (i + 1);
        }
        prop_assert_eq!(configs.len(), expect);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for c in &configs {
            prop_assert!(seen.insert(format!("{c}")), "duplicate config {c}");
        }
    }

    #[test]
    fn digitizer_quantization_within_one_lsb(
        period_ps in 50.0f64..2000.0,
        window_pow in 4u32..16,
        ref_mhz in 10.0f64..1000.0,
    ) {
        let spec = DigitizerSpec::new(Hertz::from_mega(ref_mhz), 1 << window_pow)
            .expect("spec");
        let p = Seconds::from_picos(period_ps);
        let ideal = spec.ideal_count(p);
        let q = spec.quantized_count(p) as f64;
        prop_assert!(ideal - q >= 0.0 && ideal - q < 1.0);
    }

    #[test]
    fn gate_delays_scale_inversely_with_width(
        kind in arb_kind(),
        w_scale in 1.1f64..5.0,
    ) {
        // Doubling all widths at fixed external load speeds the gate up,
        // but never superlinearly (self-loading grows too).
        let tech = Technology::um350();
        let t = Celsius::new(27.0);
        let load = tsense_core::units::Farads::from_femtos(20.0);
        let small = Gate::sized(kind, 1e-6, 2e-6).expect("gate");
        let large = Gate::sized(kind, w_scale * 1e-6, w_scale * 2e-6).expect("gate");
        let d_small = small.delays(&tech, t, load).expect("delays");
        let d_large = large.delays(&tech, t, load).expect("delays");
        prop_assert!(d_large.tphl.get() < d_small.tphl.get());
        prop_assert!(d_large.tphl.get() > d_small.tphl.get() / w_scale - 1e-15);
    }
}
