//! The paper's two linearity-optimization knobs.
//!
//! * **Transistor-level (Fig. 2):** sweep the `Wp/Wn` sizing ratio of a
//!   uniform inverter ring; an adequate ratio drives the worst-case
//!   non-linearity below 0.2 % of full scale. [`ratio_sweep`] reproduces
//!   the sweep, [`best_ratio`] refines the optimum by golden-section
//!   search.
//! * **Cell-based (Fig. 3):** keep the library sizing fixed and search the
//!   *mix of inverting cells* instead. [`enumerate_configs`] generates
//!   every odd multiset of a cell set; [`config_search`] ranks them by
//!   worst-case non-linearity.
//!
//! Both return full [`NonLinearity`] analyses so callers can plot the
//! error traces, not just the scalar optimum.

use crate::error::Result;
use crate::gate::{Gate, GateKind};
use crate::linearity::{FitKind, NonLinearity};
use crate::ring::{CellConfig, RingOscillator};
use crate::tech::Technology;
use crate::units::TempRange;

/// Settings shared by every sweep: the evaluated temperature range, the
/// number of samples on it, and the reference-line convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSettings {
    /// Temperature range of the evaluation (paper: −50 °C … 150 °C).
    pub range: TempRange,
    /// Number of temperature samples.
    pub samples: usize,
    /// Reference-line convention for the non-linearity metric.
    pub fit: FitKind,
}

impl Default for SweepSettings {
    /// The paper's evaluation conditions: −50 °C … 150 °C, 41 samples
    /// (5 °C pitch), least-squares reference line.
    fn default() -> Self {
        SweepSettings {
            range: TempRange::paper(),
            samples: 41,
            fit: FitKind::LeastSquares,
        }
    }
}

/// One point of a `Wp/Wn` ratio sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioPoint {
    /// The evaluated `Wp/Wn` ratio.
    pub ratio: f64,
    /// Worst-case |non-linearity| in percent of full scale.
    pub max_nl_percent: f64,
    /// The full non-linearity trace (the Fig. 2 curve for this ratio).
    pub nonlinearity: NonLinearity,
}

/// Evaluates the non-linearity of an `n`-stage uniform ring of `kind`
/// cells for each `Wp/Wn` ratio in `ratios` — the paper's Fig. 2
/// experiment when called with `GateKind::Inv`, 5 stages and the ratios
/// `{1.5, 1.75, 2.25, 3, 4}`.
///
/// # Errors
///
/// Propagates gate-sizing, ring-validity and fit errors.
pub fn ratio_sweep(
    tech: &Technology,
    kind: GateKind,
    wn: f64,
    stages: usize,
    ratios: &[f64],
    settings: &SweepSettings,
) -> Result<Vec<RatioPoint>> {
    let mut out = Vec::with_capacity(ratios.len());
    for &ratio in ratios {
        let gate = Gate::with_ratio(kind, wn, ratio)?;
        let ring = RingOscillator::uniform(gate, stages)?;
        let curve = ring.period_curve(tech, settings.range, settings.samples)?;
        let nonlinearity = NonLinearity::of_curve(&curve, settings.fit)?;
        out.push(RatioPoint {
            ratio,
            max_nl_percent: nonlinearity.max_abs_percent(),
            nonlinearity,
        });
    }
    Ok(out)
}

/// Finds the `Wp/Wn` ratio minimizing worst-case non-linearity inside
/// `[lo, hi]` by golden-section search (the objective is unimodal in the
/// ratio: one curvature sign flip).
///
/// Returns `(ratio, max_nl_percent)` at the optimum.
///
/// # Errors
///
/// Propagates model errors from the evaluations.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is non-positive.
pub fn best_ratio(
    tech: &Technology,
    kind: GateKind,
    wn: f64,
    stages: usize,
    lo: f64,
    hi: f64,
    settings: &SweepSettings,
) -> Result<(f64, f64)> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let eval = |r: f64| -> Result<f64> {
        let gate = Gate::with_ratio(kind, wn, r)?;
        let ring = RingOscillator::uniform(gate, stages)?;
        let curve = ring.period_curve(tech, settings.range, settings.samples)?;
        Ok(NonLinearity::of_curve(&curve, settings.fit)?.max_abs_percent())
    };
    const PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let mut fc = eval(c)?;
    let mut fd = eval(d)?;
    for _ in 0..60 {
        if (b - a).abs() < 1e-4 {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = eval(c)?;
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = eval(d)?;
        }
    }
    let r = 0.5 * (a + b);
    Ok((r, eval(r)?))
}

/// One evaluated cell configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// The cell mix.
    pub config: CellConfig,
    /// Worst-case |non-linearity| in percent of full scale.
    pub max_nl_percent: f64,
    /// The full non-linearity trace (one Fig. 3 curve).
    pub nonlinearity: NonLinearity,
}

/// Enumerates every multiset of `stages` cells drawn from `kinds`
/// (configurations differing only in order are generated once; the ring
/// constructor interleaves them deterministically).
///
/// `stages` must be odd — even counts cannot ring, so they are skipped by
/// construction rather than reported as errors.
pub fn enumerate_configs(kinds: &[GateKind], stages: usize) -> Vec<CellConfig> {
    fn rec(
        kinds: &[GateKind],
        start: usize,
        left: usize,
        current: &mut Vec<(usize, GateKind)>,
        out: &mut Vec<Vec<(usize, GateKind)>>,
    ) {
        if left == 0 {
            out.push(current.clone());
            return;
        }
        if start >= kinds.len() {
            return;
        }
        for take in (0..=left).rev() {
            if take > 0 {
                current.push((take, kinds[start]));
            }
            rec(kinds, start + 1, left - take, current, out);
            if take > 0 {
                current.pop();
            }
        }
    }
    if stages < 3 || stages.is_multiple_of(2) {
        return Vec::new();
    }
    let mut groups = Vec::new();
    rec(kinds, 0, stages, &mut Vec::new(), &mut groups);
    groups
        .into_iter()
        .filter_map(|g| CellConfig::from_groups(&g).ok())
        .collect()
}

/// Evaluates a set of cell configurations at a fixed library sizing and
/// returns them ranked best (lowest worst-case non-linearity) first —
/// the generalized Fig. 3 experiment.
///
/// # Errors
///
/// Propagates model errors from the evaluations.
pub fn config_search(
    tech: &Technology,
    configs: &[CellConfig],
    wn: f64,
    ratio: f64,
    settings: &SweepSettings,
) -> Result<Vec<ConfigPoint>> {
    let mut out = Vec::with_capacity(configs.len());
    for config in configs {
        let ring = RingOscillator::from_config(config, wn, ratio)?;
        let curve = ring.period_curve(tech, settings.range, settings.samples)?;
        let nonlinearity = NonLinearity::of_curve(&curve, settings.fit)?;
        out.push(ConfigPoint {
            config: config.clone(),
            max_nl_percent: nonlinearity.max_abs_percent(),
            nonlinearity,
        });
    }
    out.sort_by(|a, b| {
        a.max_nl_percent
            .partial_cmp(&b.max_nl_percent)
            .expect("non-linearity values are finite")
    });
    Ok(out)
}

/// Exhaustive cell-based optimization: enumerate every odd multiset of
/// `kinds` with `stages` cells and rank them. The best entry is the ring
/// a cell-based designer would instantiate.
///
/// # Errors
///
/// Propagates model errors from the evaluations.
pub fn exhaustive_config_search(
    tech: &Technology,
    kinds: &[GateKind],
    stages: usize,
    wn: f64,
    ratio: f64,
    settings: &SweepSettings,
) -> Result<Vec<ConfigPoint>> {
    let configs = enumerate_configs(kinds, stages);
    config_search(tech, &configs, wn, ratio, settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::um350()
    }

    #[test]
    fn ratio_sweep_reproduces_fig2_shape() {
        // NL(r) dips to a minimum and rises toward both extremes.
        let settings = SweepSettings::default();
        let ratios = [1.5, 1.75, 2.0, 2.25, 3.0, 4.0];
        let pts = ratio_sweep(&tech(), GateKind::Inv, 1e-6, 5, &ratios, &settings).unwrap();
        assert_eq!(pts.len(), 6);
        let nl: Vec<f64> = pts.iter().map(|p| p.max_nl_percent).collect();
        // Minimum strictly inside the sweep.
        let min_idx = nl
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < nl.len() - 1,
            "interior minimum, got idx {min_idx}"
        );
        // Paper claim: the optimum is below 0.2 % of full scale.
        assert!(nl[min_idx] < 0.2, "min NL {} must beat 0.2 %", nl[min_idx]);
        // Extremes are clearly worse.
        assert!(nl[0] > nl[min_idx] && nl[5] > nl[min_idx]);
    }

    #[test]
    fn best_ratio_beats_every_swept_point() {
        let settings = SweepSettings::default();
        let (r, min_nl) = best_ratio(&tech(), GateKind::Inv, 1e-6, 5, 1.0, 6.0, &settings).unwrap();
        assert!(r > 1.0 && r < 6.0);
        assert!(min_nl < 0.2);
        let pts = ratio_sweep(&tech(), GateKind::Inv, 1e-6, 5, &[1.5, 4.0], &settings).unwrap();
        for p in pts {
            assert!(min_nl <= p.max_nl_percent + 1e-9);
        }
    }

    #[test]
    fn enumerate_counts_match_stars_and_bars() {
        // Multisets of size 5 over 5 kinds: C(9,4) = 126.
        let configs = enumerate_configs(&GateKind::PAPER_SET, 5);
        assert_eq!(configs.len(), 126);
        // Size 3 over 2 kinds: C(4,1) = 4.
        let configs = enumerate_configs(&[GateKind::Inv, GateKind::Nor2], 3);
        assert_eq!(configs.len(), 4);
        // Even or tiny stage counts yield nothing.
        assert!(enumerate_configs(&GateKind::PAPER_SET, 4).is_empty());
        assert!(enumerate_configs(&GateKind::PAPER_SET, 1).is_empty());
    }

    #[test]
    fn config_search_ranks_best_first() {
        let settings = SweepSettings::default();
        let ranked =
            config_search(&tech(), &CellConfig::paper_fig3_set(), 1e-6, 1.5, &settings).unwrap();
        assert_eq!(ranked.len(), 6);
        for w in ranked.windows(2) {
            assert!(w[0].max_nl_percent <= w[1].max_nl_percent);
        }
    }

    #[test]
    fn cell_mix_beats_pure_inverter_at_fixed_library_sizing() {
        // The paper's core claim: with sizing fixed (here a deliberately
        // suboptimal library ratio of 1.5), choosing an adequate set of
        // standard cells reduces the non-linearity error.
        let settings = SweepSettings::default();
        let ranked =
            exhaustive_config_search(&tech(), &GateKind::PAPER_SET, 5, 1e-6, 1.5, &settings)
                .unwrap();
        let best = &ranked[0];
        let pure_inv = ranked
            .iter()
            .find(|p| p.config == CellConfig::uniform(GateKind::Inv, 5).unwrap())
            .expect("pure inverter ring is in the enumeration");
        assert!(
            best.max_nl_percent < 0.5 * pure_inv.max_nl_percent,
            "best mix {} must at least halve the 5×INV error {}",
            best.max_nl_percent,
            pure_inv.max_nl_percent,
        );
        assert!(
            best.max_nl_percent < 0.2,
            "best mix must beat the paper's 0.2 % bar"
        );
        // And the best mix is genuinely mixed, not a pure ring.
        assert!(
            best.config.histogram().len() > 1,
            "best config: {}",
            best.config
        );
    }

    #[test]
    #[should_panic(expected = "need 0 < lo < hi")]
    fn best_ratio_rejects_bad_interval() {
        let _ = best_ratio(
            &tech(),
            GateKind::Inv,
            1e-6,
            5,
            2.0,
            1.0,
            &SweepSettings::default(),
        );
    }
}
