//! Ring-oscillator sensing element.
//!
//! A ring oscillator is an odd chain of inverting gates closed on itself.
//! With `N` stages it oscillates with period
//!
//! ```text
//! T = Σᵢ (t_PHL,i + t_PLH,i)
//! ```
//!
//! (the paper's Eq. 1, generalized from identical inverters to a per-stage
//! sum so that mixed-cell rings — the Fig. 3 configurations — are handled
//! by the same code path). Each stage's load is the input capacitance of
//! the next stage plus its own output parasitics.
//!
//! ```
//! use tsense_core::gate::{Gate, GateKind};
//! use tsense_core::ring::RingOscillator;
//! use tsense_core::tech::Technology;
//! use tsense_core::units::Celsius;
//!
//! let tech = Technology::um350();
//! let inv = Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?;
//! let ring = RingOscillator::uniform(inv, 5)?;
//! let period = ring.period(&tech, Celsius::new(27.0))?;
//! assert!(period.as_picos() > 50.0 && period.as_picos() < 5000.0);
//! # Ok::<(), tsense_core::ModelError>(())
//! ```

use std::fmt;

use crate::error::{ModelError, Result};
use crate::gate::{Gate, GateKind};
use crate::tech::Technology;
use crate::units::{Celsius, Farads, Hertz, Seconds, TempRange, Watts};

/// A ring oscillator: an odd number of inverting stages in a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RingOscillator {
    stages: Vec<Gate>,
    /// Extra fixed wiring capacitance added to every stage output (F).
    wire_cap: Farads,
}

impl RingOscillator {
    /// Builds a ring from an explicit stage list.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRing`] when fewer than 3 stages are
    /// given or the stage count is even (an even chain latches instead of
    /// oscillating).
    pub fn from_stages(stages: Vec<Gate>) -> Result<Self> {
        if stages.len() < 3 {
            return Err(ModelError::InvalidRing {
                reason: format!("need at least 3 stages, got {}", stages.len()),
            });
        }
        if stages.len().is_multiple_of(2) {
            return Err(ModelError::InvalidRing {
                reason: format!(
                    "{} inverting stages form a latch, not an oscillator; use an odd count",
                    stages.len()
                ),
            });
        }
        Ok(RingOscillator {
            stages,
            wire_cap: Farads::new(0.0),
        })
    }

    /// Builds a ring of `n` identical stages (the paper's Fig. 1/2 setup).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RingOscillator::from_stages`].
    pub fn uniform(gate: Gate, n: usize) -> Result<Self> {
        RingOscillator::from_stages(vec![gate; n])
    }

    /// Builds a ring from a [`CellConfig`] with common sizing — the Fig. 3
    /// experiment. Stages are interleaved round-robin over the config's
    /// cell kinds so that dissimilar cells alternate, as a layout engineer
    /// would place them.
    ///
    /// # Errors
    ///
    /// Propagates gate-sizing errors and the odd-stage-count requirement.
    pub fn from_config(config: &CellConfig, wn: f64, ratio: f64) -> Result<Self> {
        let stages = config
            .kinds()
            .iter()
            .map(|&k| Gate::with_ratio(k, wn, ratio))
            .collect::<Result<Vec<_>>>()?;
        RingOscillator::from_stages(stages)
    }

    /// Adds fixed wiring capacitance on every stage output.
    #[must_use]
    pub fn with_wire_cap(mut self, cap: Farads) -> Self {
        self.wire_cap = cap;
        self
    }

    /// Number of stages.
    #[inline]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The stage gates, in ring order.
    #[inline]
    pub fn stages(&self) -> &[Gate] {
        &self.stages
    }

    /// Extra fixed wiring capacitance on every stage output.
    #[inline]
    pub fn wire_cap(&self) -> Farads {
        self.wire_cap
    }

    /// Load capacitance seen by stage `i` (input of the next stage plus
    /// wiring); the driving gate's own parasitic is added inside
    /// [`Gate::delays`]. Public so static analyzers (the `netcheck`
    /// abstract interpreter) can price per-stage delays on exactly the
    /// loads the period model uses.
    pub fn stage_load(&self, tech: &Technology, i: usize) -> Farads {
        let next = &self.stages[(i + 1) % self.stages.len()];
        next.input_capacitance(tech) + self.wire_cap
    }

    /// Oscillation period at junction temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoOverdrive`] when any stage's pull network is
    /// off at `t` (the ring stalls there).
    pub fn period(&self, tech: &Technology, t: Celsius) -> Result<Seconds> {
        let mut total = Seconds::new(0.0);
        for (i, gate) in self.stages.iter().enumerate() {
            let d = gate.delays(tech, t, self.stage_load(tech, i))?;
            total = total + d.pair_sum();
        }
        Ok(total)
    }

    /// Oscillation frequency at junction temperature `t`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RingOscillator::period`].
    pub fn frequency(&self, tech: &Technology, t: Celsius) -> Result<Hertz> {
        Ok(self.period(tech, t)?.to_frequency())
    }

    /// Samples the period over a temperature range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RingOscillator::period`].
    pub fn period_curve(
        &self,
        tech: &Technology,
        range: TempRange,
        samples: usize,
    ) -> Result<PeriodCurve> {
        let temps = range.samples(samples);
        let mut periods = Vec::with_capacity(temps.len());
        for &t in &temps {
            periods.push(self.period(tech, t)?);
        }
        Ok(PeriodCurve { temps, periods })
    }

    /// Total switched capacitance per oscillation period (every node
    /// charges and discharges once per period).
    pub fn switched_capacitance(&self, tech: &Technology) -> Farads {
        let mut c = Farads::new(0.0);
        for (i, gate) in self.stages.iter().enumerate() {
            c = c + self.stage_load(tech, i) + gate.output_parasitic(tech);
        }
        c
    }

    /// Dynamic power dissipated while oscillating at temperature `t`:
    /// `P = C_sw · V_DD² · f(T)`. Drives the self-heating analysis that
    /// motivates the smart unit's disable feature.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RingOscillator::period`].
    pub fn dynamic_power(&self, tech: &Technology, t: Celsius) -> Result<Watts> {
        let f = self.frequency(tech, t)?;
        let c = self.switched_capacitance(tech);
        Ok(Watts::new(
            c.get() * tech.vdd.get() * tech.vdd.get() * f.get(),
        ))
    }

    /// A compact description such as `"3×INV + 2×NAND3 (5 stages)"`.
    pub fn describe(&self) -> String {
        format!(
            "{} ({} stages)",
            CellConfig::of_ring(self),
            self.stage_count()
        )
    }
}

impl fmt::Display for RingOscillator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A sampled period-versus-temperature transfer curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodCurve {
    temps: Vec<Celsius>,
    periods: Vec<Seconds>,
}

impl PeriodCurve {
    /// Builds a curve from parallel temperature/period arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length or are empty.
    pub fn new(temps: Vec<Celsius>, periods: Vec<Seconds>) -> Self {
        assert_eq!(temps.len(), periods.len(), "arrays must be parallel");
        assert!(!temps.is_empty(), "curve must contain samples");
        PeriodCurve { temps, periods }
    }

    /// Sample temperatures.
    #[inline]
    pub fn temps(&self) -> &[Celsius] {
        &self.temps
    }

    /// Sampled periods.
    #[inline]
    pub fn periods(&self) -> &[Seconds] {
        &self.periods
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// `true` when the curve holds no samples (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Iterates over `(temperature, period)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Celsius, Seconds)> + '_ {
        self.temps.iter().copied().zip(self.periods.iter().copied())
    }

    /// `true` when the period rises strictly monotonically with
    /// temperature — the property two-point calibration relies on.
    pub fn is_monotonic_increasing(&self) -> bool {
        self.periods.windows(2).all(|w| w[1].get() > w[0].get())
    }

    /// Full-scale period span (max − min).
    pub fn full_scale(&self) -> Seconds {
        let min = self
            .periods
            .iter()
            .cloned()
            .fold(Seconds::new(f64::INFINITY), Seconds::min);
        let max = self
            .periods
            .iter()
            .cloned()
            .fold(Seconds::new(f64::NEG_INFINITY), Seconds::max);
        max - min
    }
}

/// A multiset of cell kinds making up a ring — the unit of the paper's
/// Fig. 3 search space (e.g. `3×INV + 2×NAND3`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellConfig {
    kinds: Vec<GateKind>,
}

impl CellConfig {
    /// Builds a configuration from `(count, kind)` groups, interleaving
    /// the kinds round-robin so dissimilar cells alternate in the ring.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRing`] if the total count is even or
    /// below 3.
    pub fn from_groups(groups: &[(usize, GateKind)]) -> Result<Self> {
        let total: usize = groups.iter().map(|(n, _)| n).sum();
        if total < 3 || total.is_multiple_of(2) {
            return Err(ModelError::InvalidRing {
                reason: format!("configuration totals {total} stages; need an odd count ≥ 3"),
            });
        }
        let mut remaining: Vec<(usize, GateKind)> = groups.to_vec();
        let mut kinds = Vec::with_capacity(total);
        while kinds.len() < total {
            for entry in remaining.iter_mut() {
                if entry.0 > 0 {
                    entry.0 -= 1;
                    kinds.push(entry.1);
                }
            }
        }
        Ok(CellConfig { kinds })
    }

    /// Builds a uniform configuration of `n` copies of one kind.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRing`] if `n` is even or below 3.
    pub fn uniform(kind: GateKind, n: usize) -> Result<Self> {
        CellConfig::from_groups(&[(n, kind)])
    }

    /// The stage kinds in ring order.
    #[inline]
    pub fn kinds(&self) -> &[GateKind] {
        &self.kinds
    }

    /// Number of stages.
    #[inline]
    pub fn stage_count(&self) -> usize {
        self.kinds.len()
    }

    /// The six 5-stage configurations evaluated in the paper's Fig. 3.
    pub fn paper_fig3_set() -> Vec<CellConfig> {
        use GateKind::*;
        [
            vec![(5, Inv)],
            vec![(3, Inv), (2, Nand3)],
            vec![(3, Nand3), (2, Nor2)],
            vec![(2, Inv), (3, Nand3)],
            vec![(5, Nand2)],
            vec![(2, Inv), (3, Nor2)],
        ]
        .iter()
        .map(|g| CellConfig::from_groups(g).expect("paper configs are valid"))
        .collect()
    }

    /// Counts per kind, ordered by [`GateKind`]'s natural order.
    pub fn histogram(&self) -> Vec<(GateKind, usize)> {
        let mut counts: Vec<(GateKind, usize)> = Vec::new();
        for k in GateKind::ALL {
            let n = self.kinds.iter().filter(|&&x| x == k).count();
            if n > 0 {
                counts.push((k, n));
            }
        }
        counts
    }

    /// The configuration describing an existing ring's stage mix.
    pub fn of_ring(ring: &RingOscillator) -> CellConfig {
        CellConfig {
            kinds: ring.stages().iter().map(|g| g.kind()).collect(),
        }
    }
}

impl fmt::Display for CellConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .histogram()
            .into_iter()
            .map(|(k, n)| format!("{n}×{k}"))
            .collect();
        f.write_str(&parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::TempRange;

    fn tech() -> Technology {
        Technology::um350()
    }

    fn inv_ring(n: usize) -> RingOscillator {
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        RingOscillator::uniform(g, n).unwrap()
    }

    #[test]
    fn even_or_short_rings_rejected() {
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        assert!(matches!(
            RingOscillator::uniform(g, 4),
            Err(ModelError::InvalidRing { .. })
        ));
        assert!(matches!(
            RingOscillator::uniform(g, 1),
            Err(ModelError::InvalidRing { .. })
        ));
        assert!(RingOscillator::uniform(g, 5).is_ok());
    }

    #[test]
    fn period_scales_roughly_with_stage_count() {
        let t = tech();
        let at = Celsius::new(27.0);
        let p5 = inv_ring(5).period(&t, at).unwrap().get();
        let p21 = inv_ring(21).period(&t, at).unwrap().get();
        let ratio = p21 / p5;
        assert!((ratio - 21.0 / 5.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn five_stage_period_matches_fig1_time_base() {
        // Fig. 1 shows a handful of oscillation periods within 1500 ps.
        let p = inv_ring(5).period(&tech(), Celsius::new(27.0)).unwrap();
        let ps = p.as_picos();
        assert!(ps > 100.0 && ps < 1500.0, "period {ps} ps");
    }

    #[test]
    fn period_grows_monotonically_with_temperature() {
        let curve = inv_ring(5)
            .period_curve(&tech(), TempRange::paper(), 41)
            .unwrap();
        assert!(curve.is_monotonic_increasing());
        assert!(curve.full_scale().get() > 0.0);
    }

    #[test]
    fn mixed_ring_period_between_pure_rings() {
        let t = tech();
        let at = Celsius::new(27.0);
        let wn = 1e-6;
        let r = 2.0;
        let pure_inv =
            RingOscillator::from_config(&CellConfig::uniform(GateKind::Inv, 5).unwrap(), wn, r)
                .unwrap()
                .period(&t, at)
                .unwrap()
                .get();
        let pure_nand =
            RingOscillator::from_config(&CellConfig::uniform(GateKind::Nand2, 5).unwrap(), wn, r)
                .unwrap()
                .period(&t, at)
                .unwrap()
                .get();
        let mixed = RingOscillator::from_config(
            &CellConfig::from_groups(&[(3, GateKind::Inv), (2, GateKind::Nand2)]).unwrap(),
            wn,
            r,
        )
        .unwrap()
        .period(&t, at)
        .unwrap()
        .get();
        let (lo, hi) = (pure_inv.min(pure_nand), pure_inv.max(pure_nand));
        assert!(
            mixed > lo && mixed < hi,
            "mixed {mixed} not in ({lo}, {hi})"
        );
    }

    #[test]
    fn config_groups_interleave() {
        let c = CellConfig::from_groups(&[(3, GateKind::Inv), (2, GateKind::Nand3)]).unwrap();
        assert_eq!(c.stage_count(), 5);
        // Round-robin: INV NAND3 INV NAND3 INV
        assert_eq!(
            c.kinds(),
            &[
                GateKind::Inv,
                GateKind::Nand3,
                GateKind::Inv,
                GateKind::Nand3,
                GateKind::Inv
            ]
        );
    }

    #[test]
    fn paper_fig3_set_has_six_valid_configs() {
        let set = CellConfig::paper_fig3_set();
        assert_eq!(set.len(), 6);
        for c in &set {
            assert_eq!(c.stage_count(), 5, "{c}");
        }
        assert_eq!(format!("{}", set[0]), "5×INV");
        assert_eq!(format!("{}", set[1]), "3×INV + 2×NAND3");
    }

    #[test]
    fn even_config_rejected() {
        assert!(CellConfig::from_groups(&[(2, GateKind::Inv), (2, GateKind::Nor2)]).is_err());
    }

    #[test]
    fn wire_cap_slows_the_ring() {
        let t = tech();
        let at = Celsius::new(27.0);
        let base = inv_ring(5);
        let loaded = base.clone().with_wire_cap(Farads::from_femtos(10.0));
        assert!(loaded.period(&t, at).unwrap().get() > base.period(&t, at).unwrap().get());
    }

    #[test]
    fn dynamic_power_is_plausible() {
        // A small ring in 0.35 µm burns on the order of 0.1–10 mW.
        let p = inv_ring(5)
            .dynamic_power(&tech(), Celsius::new(27.0))
            .unwrap()
            .get();
        assert!(p > 1e-5 && p < 0.05, "power {p} W");
    }

    #[test]
    fn describe_mentions_mix_and_stage_count() {
        let c = CellConfig::from_groups(&[(3, GateKind::Inv), (2, GateKind::Nor2)]).unwrap();
        let ring = RingOscillator::from_config(&c, 1e-6, 2.0).unwrap();
        let d = ring.describe();
        assert!(d.contains("3×INV") && d.contains("2×NOR2") && d.contains("5 stages"));
    }

    #[test]
    fn curve_accessors() {
        let curve = inv_ring(5)
            .period_curve(&tech(), TempRange::paper(), 5)
            .unwrap();
        assert_eq!(curve.len(), 5);
        assert!(!curve.is_empty());
        assert_eq!(curve.iter().count(), 5);
        assert_eq!(curve.temps().len(), curve.periods().len());
    }
}
