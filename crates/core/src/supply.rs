//! Supply-voltage sensitivity of the ring sensor.
//!
//! A ring oscillator's period depends on `V_DD` as well as temperature —
//! the classic weakness of delay-based sensing: supply droop reads as a
//! temperature change. This module quantifies the coupling so a system
//! integrator can budget it (regulate the sensor rail, or bound the
//! error given the SoC's supply tolerance).

use crate::error::Result;
use crate::ring::RingOscillator;
use crate::sensitivity::Sensitivity;
use crate::tech::Technology;
use crate::units::{Celsius, Seconds, Volts};

/// Supply/temperature cross-sensitivity of a ring at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplySensitivity {
    /// Period change per volt of supply, s/V (negative: more supply →
    /// faster ring).
    pub dp_dv: f64,
    /// Period change per kelvin, s/K.
    pub dp_dt: f64,
    /// Apparent temperature error per millivolt of supply error, °C/mV.
    pub temp_error_per_mv: f64,
    /// Operating period.
    pub period: Seconds,
}

impl SupplySensitivity {
    /// Evaluates the cross-sensitivity of `ring` at `(t, tech.vdd)` by
    /// centred finite differences.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures (e.g. the supply stepped
    /// below the device thresholds).
    pub fn at(ring: &RingOscillator, tech: &Technology, t: Celsius) -> Result<Self> {
        let dv = 0.01; // 10 mV steps
        let mut hi = tech.clone();
        hi.vdd = Volts::new(tech.vdd.get() + dv);
        let mut lo = tech.clone();
        lo.vdd = Volts::new(tech.vdd.get() - dv);
        let p_hi = ring.period(&hi, t)?;
        let p_lo = ring.period(&lo, t)?;
        let dp_dv = (p_hi.get() - p_lo.get()) / (2.0 * dv);
        let sens = Sensitivity::at(ring, tech, t, 0.1)?;
        Ok(SupplySensitivity {
            dp_dv,
            dp_dt: sens.dp_dt,
            temp_error_per_mv: dp_dv * 1e-3 / sens.dp_dt,
            period: sens.period,
        })
    }

    /// Apparent temperature error for a given supply deviation.
    pub fn temp_error_for(&self, dv: Volts) -> f64 {
        self.temp_error_per_mv * dv.get() * 1e3
    }
}

/// Samples the period across a supply range at fixed temperature — the
/// supply-droop transfer curve.
///
/// # Errors
///
/// Propagates period-evaluation failures.
pub fn period_vs_supply(
    ring: &RingOscillator,
    tech: &Technology,
    t: Celsius,
    vdd_values: &[f64],
) -> Result<Vec<(f64, Seconds)>> {
    vdd_values
        .iter()
        .map(|&v| {
            let mut tv = tech.clone();
            tv.vdd = Volts::new(v);
            ring.period(&tv, t).map(|p| (v, p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};

    fn setup() -> (Technology, RingOscillator) {
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        (tech, ring)
    }

    #[test]
    fn more_supply_means_faster_ring() {
        let (tech, ring) = setup();
        let curve = period_vs_supply(
            &ring,
            &tech,
            Celsius::new(27.0),
            &[3.0, 3.15, 3.3, 3.45, 3.6],
        )
        .unwrap();
        for w in curve.windows(2) {
            assert!(
                w[1].1.get() < w[0].1.get(),
                "period falls with VDD: {curve:?}"
            );
        }
    }

    #[test]
    fn cross_sensitivity_magnitudes_are_realistic() {
        let (tech, ring) = setup();
        let s = SupplySensitivity::at(&ring, &tech, Celsius::new(27.0)).unwrap();
        assert!(s.dp_dv < 0.0, "negative supply slope");
        assert!(s.dp_dt > 0.0, "positive temperature slope");
        // A ±10 mV droop must read as degrees — the reason data sheets
        // demand a clean sensor rail.
        let err_10mv = s.temp_error_for(Volts::new(0.010)).abs();
        assert!(err_10mv > 0.2 && err_10mv < 20.0, "10 mV → {err_10mv} °C");
    }

    #[test]
    fn error_scales_linearly_with_droop() {
        let (tech, ring) = setup();
        let s = SupplySensitivity::at(&ring, &tech, Celsius::new(85.0)).unwrap();
        let e1 = s.temp_error_for(Volts::new(0.005));
        let e2 = s.temp_error_for(Volts::new(0.010));
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn finite_difference_consistent_with_curve() {
        let (tech, ring) = setup();
        let s = SupplySensitivity::at(&ring, &tech, Celsius::new(27.0)).unwrap();
        let curve = period_vs_supply(&ring, &tech, Celsius::new(27.0), &[3.29, 3.31]).unwrap();
        let slope = (curve[1].1.get() - curve[0].1.get()) / 0.02;
        assert!(
            (slope - s.dp_dv).abs() / s.dp_dv.abs() < 0.05,
            "{slope} vs {}",
            s.dp_dv
        );
    }
}
