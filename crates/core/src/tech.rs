//! CMOS technology descriptions: supply, device parameters and parasitics.
//!
//! The paper evaluates a 0.35 µm-class CMOS process in HSPICE with foundry
//! models. We reproduce the *first-order* temperature physics those models
//! encode with an alpha-power-law parameter set per device polarity:
//!
//! * threshold voltage with a linear temperature coefficient
//!   `Vth(T) = Vth(T₀) − κ·(T − T₀)`;
//! * carrier mobility with a power-law roll-off
//!   `µ(T) = µ(T₀)·(T/T₀)^(−m)`;
//! * saturation current `I = (W)·k·µrel(T)·(V_DD − Vth(T))^α`
//!   (the width-normalized drive constant `k` folds in `µ(T₀)·C_ox/L_eff`).
//!
//! NMOS and PMOS intentionally get *different* `κ` and `m`: that asymmetry
//! is what makes the `t_PHL`/`t_PLH` balance — and therefore the Wp/Wn
//! ratio (Fig. 2) or the NAND/NOR cell mix (Fig. 3) — a usable knob on the
//! linearity of period versus temperature.
//!
//! ```
//! use tsense_core::tech::Technology;
//!
//! let tech = Technology::um350();
//! assert_eq!(tech.node_nanometers(), 350);
//! assert!(tech.vdd.get() > 3.0);
//! ```

use crate::error::{ModelError, Result};
use crate::units::{Celsius, Kelvin, Volts};

/// Reference temperature at which nominal parameters are quoted (27 °C).
pub const T_REF: Kelvin = Kelvin::new(300.15);

/// Which carrier type a MOS device conducts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device (pull-down networks).
    Nmos,
    /// P-channel device (pull-up networks).
    Pmos,
}

impl Polarity {
    /// The complementary polarity.
    #[inline]
    pub fn complement(self) -> Polarity {
        match self {
            Polarity::Nmos => Polarity::Pmos,
            Polarity::Pmos => Polarity::Nmos,
        }
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Nmos => write!(f, "NMOS"),
            Polarity::Pmos => write!(f, "PMOS"),
        }
    }
}

/// Alpha-power-law parameters for one device polarity.
///
/// All voltages are magnitudes; polarity is handled by the consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Threshold-voltage magnitude at the reference temperature.
    pub vth0: Volts,
    /// Threshold temperature coefficient `κ` in V/K (Vth magnitude
    /// *decreases* by `κ` per kelvin of heating).
    pub vth_tempco: f64,
    /// Mobility power-law exponent `m` in `µ ∝ T^(−m)`.
    pub mobility_exp: f64,
    /// Velocity-saturation index `α` of the alpha-power law
    /// (2 = long-channel square law, →1 = fully velocity saturated).
    pub alpha: f64,
    /// Width-normalized drive constant at `T₀` in A·m⁻¹·V^(−α):
    /// `I_sat = W · k_drive · µrel(T) · V_ov^α`.
    pub k_drive: f64,
}

impl DeviceParams {
    /// Validates physical plausibility of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when a field is outside its
    /// physical domain (non-positive Vth or drive, α outside (0.5, 2.5],
    /// negative tempco, mobility exponent outside [0.5, 3]).
    pub fn validate(&self) -> Result<()> {
        if !(self.vth0.get() > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "vth0",
                value: self.vth0.get(),
                constraint: "threshold magnitude must be positive",
            });
        }
        if !(self.vth_tempco >= 0.0 && self.vth_tempco < 0.01) {
            return Err(ModelError::InvalidParameter {
                name: "vth_tempco",
                value: self.vth_tempco,
                constraint: "must be in [0, 10 mV/K)",
            });
        }
        if !(self.mobility_exp >= 0.5 && self.mobility_exp <= 3.0) {
            return Err(ModelError::InvalidParameter {
                name: "mobility_exp",
                value: self.mobility_exp,
                constraint: "must be in [0.5, 3.0]",
            });
        }
        if !(self.alpha > 0.5 && self.alpha <= 2.5) {
            return Err(ModelError::InvalidParameter {
                name: "alpha",
                value: self.alpha,
                constraint: "must be in (0.5, 2.5]",
            });
        }
        if !(self.k_drive > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "k_drive",
                value: self.k_drive,
                constraint: "drive constant must be positive",
            });
        }
        Ok(())
    }

    /// Threshold-voltage magnitude at junction temperature `t`.
    #[inline]
    pub fn vth(&self, t: Celsius) -> Volts {
        let dt = t.to_kelvin().get() - T_REF.get();
        Volts::new(self.vth0.get() - self.vth_tempco * dt)
    }

    /// Relative mobility `µ(T)/µ(T₀)` at junction temperature `t`.
    #[inline]
    pub fn mobility_rel(&self, t: Celsius) -> f64 {
        (t.to_kelvin().get() / T_REF.get()).powf(-self.mobility_exp)
    }
}

/// A complete technology description.
///
/// Construct via the node presets ([`Technology::um350`] and friends) or
/// [`TechnologyBuilder`] for custom processes.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable name, e.g. `"cmos-0.35um"`.
    pub name: String,
    /// Drawn feature size in nanometres (350 for the paper's process class).
    pub node_nm: u32,
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// NMOS parameters.
    pub nmos: DeviceParams,
    /// PMOS parameters.
    pub pmos: DeviceParams,
    /// Gate capacitance per metre of transistor width, including overlap
    /// and a Miller allowance (F/m).
    pub cg_per_width: f64,
    /// Drain junction/parasitic capacitance per metre of width (F/m).
    pub cj_per_width: f64,
    /// Minimum drawable transistor width in metres.
    pub w_min: f64,
    /// Threshold-magnitude increase per extra series device in a stack
    /// (body-effect surrogate), in volts.
    pub stack_vth_shift: f64,
    /// Extra resistance factor per series device beyond the first
    /// (accounts for intermediate-node charge); effective drive of a
    /// k-stack is `W/(k·(1 + stack_res_factor·(k−1)))`.
    pub stack_res_factor: f64,
}

impl Technology {
    /// The paper's process class: 0.35 µm, 3.3 V CMOS.
    pub fn um350() -> Self {
        Technology {
            name: "cmos-0.35um".to_string(),
            node_nm: 350,
            vdd: Volts::new(3.3),
            nmos: DeviceParams {
                vth0: Volts::new(0.55),
                vth_tempco: 0.8e-3,
                mobility_exp: 1.55,
                alpha: 1.55,
                k_drive: 110.0,
            },
            pmos: DeviceParams {
                vth0: Volts::new(0.65),
                vth_tempco: 1.5e-3,
                mobility_exp: 1.15,
                alpha: 1.70,
                k_drive: 42.0,
            },
            cg_per_width: 2.0e-9,
            cj_per_width: 1.0e-9,
            w_min: 0.5e-6,
            stack_vth_shift: 0.045,
            stack_res_factor: 0.12,
        }
    }

    /// 0.25 µm, 2.5 V CMOS.
    pub fn um250() -> Self {
        Technology {
            name: "cmos-0.25um".to_string(),
            node_nm: 250,
            vdd: Volts::new(2.5),
            nmos: DeviceParams {
                vth0: Volts::new(0.50),
                vth_tempco: 0.75e-3,
                mobility_exp: 1.5,
                alpha: 1.45,
                k_drive: 150.0,
            },
            pmos: DeviceParams {
                vth0: Volts::new(0.58),
                vth_tempco: 1.4e-3,
                mobility_exp: 1.15,
                alpha: 1.60,
                k_drive: 60.0,
            },
            cg_per_width: 1.7e-9,
            cj_per_width: 0.85e-9,
            w_min: 0.36e-6,
            stack_vth_shift: 0.04,
            stack_res_factor: 0.12,
        }
    }

    /// 0.18 µm, 1.8 V CMOS.
    pub fn um180() -> Self {
        Technology {
            name: "cmos-0.18um".to_string(),
            node_nm: 180,
            vdd: Volts::new(1.8),
            nmos: DeviceParams {
                vth0: Volts::new(0.45),
                vth_tempco: 0.7e-3,
                mobility_exp: 1.45,
                alpha: 1.35,
                k_drive: 230.0,
            },
            pmos: DeviceParams {
                vth0: Volts::new(0.50),
                vth_tempco: 1.3e-3,
                mobility_exp: 1.15,
                alpha: 1.50,
                k_drive: 95.0,
            },
            cg_per_width: 1.4e-9,
            cj_per_width: 0.7e-9,
            w_min: 0.27e-6,
            stack_vth_shift: 0.035,
            stack_res_factor: 0.13,
        }
    }

    /// 0.13 µm, 1.2 V CMOS — the scaled node the paper's introduction
    /// cites as running 3.2× hotter than 0.35 µm under equivalent
    /// conditions.
    pub fn um130() -> Self {
        Technology {
            name: "cmos-0.13um".to_string(),
            node_nm: 130,
            vdd: Volts::new(1.2),
            nmos: DeviceParams {
                vth0: Volts::new(0.35),
                vth_tempco: 0.65e-3,
                mobility_exp: 1.4,
                alpha: 1.25,
                k_drive: 380.0,
            },
            pmos: DeviceParams {
                vth0: Volts::new(0.38),
                vth_tempco: 1.2e-3,
                mobility_exp: 1.1,
                alpha: 1.40,
                k_drive: 160.0,
            },
            cg_per_width: 1.1e-9,
            cj_per_width: 0.55e-9,
            w_min: 0.2e-6,
            stack_vth_shift: 0.03,
            stack_res_factor: 0.14,
        }
    }

    /// All built-in node presets, coarsest first.
    pub fn presets() -> Vec<Technology> {
        vec![
            Technology::um350(),
            Technology::um250(),
            Technology::um180(),
            Technology::um130(),
        ]
    }

    /// Feature size in nanometres.
    #[inline]
    pub fn node_nanometers(&self) -> u32 {
        self.node_nm
    }

    /// Parameters for the requested polarity.
    #[inline]
    pub fn device(&self, polarity: Polarity) -> &DeviceParams {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// Validates the full technology description.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError::InvalidParameter`] found in the
    /// supply, device parameter sets or parasitics.
    pub fn validate(&self) -> Result<()> {
        if !(self.vdd.get() > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "vdd",
                value: self.vdd.get(),
                constraint: "supply must be positive",
            });
        }
        self.nmos.validate()?;
        self.pmos.validate()?;
        for (name, v) in [
            ("cg_per_width", self.cg_per_width),
            ("cj_per_width", self.cj_per_width),
            ("w_min", self.w_min),
        ] {
            if !(v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be positive",
                });
            }
        }
        if !(self.stack_vth_shift >= 0.0 && self.stack_res_factor >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "stack parameters",
                value: self.stack_vth_shift.min(self.stack_res_factor),
                constraint: "stack corrections must be non-negative",
            });
        }
        // The devices must stay on over the paper range for the sensor to
        // make sense at all; check the worst (cold) corner.
        let cold = Celsius::new(-50.0);
        for p in [Polarity::Nmos, Polarity::Pmos] {
            let vth = self.device(p).vth(cold);
            if vth.get() >= self.vdd.get() {
                return Err(ModelError::NoOverdrive {
                    at_celsius: cold.get(),
                });
            }
        }
        Ok(())
    }
}

/// Builder for custom [`Technology`] descriptions, starting from a preset.
///
/// ```
/// use tsense_core::tech::{Technology, TechnologyBuilder};
/// use tsense_core::units::Volts;
///
/// let tech = TechnologyBuilder::from(Technology::um350())
///     .vdd(Volts::new(3.0))
///     .name("cmos-0.35um-lowv")
///     .build()
///     .expect("valid tech");
/// assert_eq!(tech.name, "cmos-0.35um-lowv");
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    tech: Technology,
}

impl From<Technology> for TechnologyBuilder {
    fn from(tech: Technology) -> Self {
        TechnologyBuilder { tech }
    }
}

impl TechnologyBuilder {
    /// Starts from the 0.35 µm preset.
    pub fn new() -> Self {
        TechnologyBuilder {
            tech: Technology::um350(),
        }
    }

    /// Sets the technology name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.tech.name = name.into();
        self
    }

    /// Sets the supply voltage.
    pub fn vdd(mut self, vdd: Volts) -> Self {
        self.tech.vdd = vdd;
        self
    }

    /// Replaces the NMOS parameter set.
    pub fn nmos(mut self, params: DeviceParams) -> Self {
        self.tech.nmos = params;
        self
    }

    /// Replaces the PMOS parameter set.
    pub fn pmos(mut self, params: DeviceParams) -> Self {
        self.tech.pmos = params;
        self
    }

    /// Sets gate capacitance per metre of width.
    pub fn cg_per_width(mut self, cg: f64) -> Self {
        self.tech.cg_per_width = cg;
        self
    }

    /// Sets junction capacitance per metre of width.
    pub fn cj_per_width(mut self, cj: f64) -> Self {
        self.tech.cj_per_width = cj;
        self
    }

    /// Validates and returns the technology.
    ///
    /// # Errors
    ///
    /// Propagates [`Technology::validate`] failures.
    pub fn build(self) -> Result<Technology> {
        self.tech.validate()?;
        Ok(self.tech)
    }
}

impl Default for TechnologyBuilder {
    fn default() -> Self {
        TechnologyBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for t in Technology::presets() {
            t.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", t.name));
        }
    }

    #[test]
    fn vth_decreases_with_temperature() {
        let tech = Technology::um350();
        let cold = tech.nmos.vth(Celsius::new(-50.0));
        let hot = tech.nmos.vth(Celsius::new(150.0));
        assert!(cold.get() > hot.get());
        // 200 K * 0.8 mV/K = 0.16 V drop.
        assert!((cold.get() - hot.get() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn mobility_decreases_with_temperature() {
        let tech = Technology::um350();
        let cold = tech.nmos.mobility_rel(Celsius::new(-50.0));
        let ref_t = tech.nmos.mobility_rel(Celsius::new(27.0));
        let hot = tech.nmos.mobility_rel(Celsius::new(150.0));
        assert!(cold > ref_t && ref_t > hot);
        assert!((ref_t - 1.0).abs() < 1e-9, "unity at the reference point");
    }

    #[test]
    fn pmos_threshold_more_temperature_sensitive_than_nmos() {
        // The curvature-cancellation knob relies on this asymmetry.
        for t in Technology::presets() {
            assert!(
                t.pmos.vth_tempco > t.nmos.vth_tempco,
                "{}: PMOS κ must exceed NMOS κ",
                t.name
            );
            assert!(
                t.nmos.mobility_exp > t.pmos.mobility_exp,
                "{}: NMOS mobility exponent must exceed PMOS",
                t.name
            );
        }
    }

    #[test]
    fn polarity_accessors() {
        let t = Technology::um350();
        assert_eq!(t.device(Polarity::Nmos).vth0, t.nmos.vth0);
        assert_eq!(t.device(Polarity::Pmos).vth0, t.pmos.vth0);
        assert_eq!(Polarity::Nmos.complement(), Polarity::Pmos);
        assert_eq!(Polarity::Pmos.complement(), Polarity::Nmos);
        assert_eq!(format!("{}", Polarity::Nmos), "NMOS");
    }

    #[test]
    fn builder_customizes_and_validates() {
        let t = TechnologyBuilder::new()
            .name("custom")
            .vdd(Volts::new(2.8))
            .cg_per_width(1.9e-9)
            .build()
            .expect("valid");
        assert_eq!(t.name, "custom");
        assert!((t.vdd.get() - 2.8).abs() < 1e-12);

        let bad = TechnologyBuilder::new().vdd(Volts::new(-1.0)).build();
        assert!(bad.is_err());
    }

    #[test]
    fn invalid_alpha_rejected() {
        let mut p = Technology::um350().nmos;
        p.alpha = 3.0;
        let err = p.validate().unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidParameter { name: "alpha", .. }
        ));
    }

    #[test]
    fn subthreshold_supply_rejected() {
        let t = TechnologyBuilder::new().vdd(Volts::new(0.3)).build();
        assert!(matches!(t, Err(ModelError::NoOverdrive { .. })));
    }
}
