//! Strongly-typed physical quantities used throughout the sensor models.
//!
//! The paper's analysis spans several unit systems (temperatures in °C on
//! the figure axes, Kelvin inside the mobility law, volts, picosecond
//! delays, megahertz oscillation frequencies). Newtypes keep those
//! interpretations apart at compile time ([C-NEWTYPE]): a function that
//! wants a junction temperature takes [`Celsius`], and the mobility law,
//! which is only meaningful on an absolute scale, takes [`Kelvin`].
//!
//! ```
//! use tsense_core::units::{Celsius, Kelvin};
//!
//! let t = Celsius::new(27.0);
//! let k: Kelvin = t.into();
//! assert!((k.get() - 300.15).abs() < 1e-9);
//! ```

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Offset between the Celsius and Kelvin scales.
pub const KELVIN_OFFSET: f64 = 273.15;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// `true` when the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is a bare number.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $symbol)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

quantity!(
    /// A temperature on the Celsius scale, as used on the paper's figure axes.
    Celsius,
    "°C"
);
quantity!(
    /// An absolute temperature in Kelvin, as used inside the mobility law.
    Kelvin,
    "K"
);
quantity!(
    /// An electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// A time span in seconds. Picosecond-scale helpers are provided because
    /// gate delays live there.
    Seconds,
    "s"
);
quantity!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// A length in metres. Transistor geometry helpers use micrometres.
    Meters,
    "m"
);
quantity!(
    /// An electric current in amperes.
    Amperes,
    "A"
);
quantity!(
    /// A capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// A power in watts (used by the self-heating model).
    Watts,
    "W"
);

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        Kelvin(c.0 + KELVIN_OFFSET)
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        Celsius(k.0 - KELVIN_OFFSET)
    }
}

impl Celsius {
    /// Converts to Kelvin.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        self.into()
    }
}

impl Kelvin {
    /// Converts to Celsius.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        self.into()
    }
}

impl Seconds {
    /// Constructs a time span from picoseconds.
    #[inline]
    pub fn from_picos(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Constructs a time span from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Constructs a time span from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// This span expressed in picoseconds.
    #[inline]
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }

    /// This span expressed in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// The frequency whose period is this span.
    ///
    /// # Panics
    ///
    /// Panics if the span is zero or negative: a period must be positive.
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.0 > 0.0, "period must be positive to yield a frequency");
        Hertz(1.0 / self.0)
    }
}

impl Hertz {
    /// Constructs a frequency from megahertz.
    #[inline]
    pub fn from_mega(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// This frequency expressed in megahertz.
    #[inline]
    pub fn as_mega(self) -> f64 {
        self.0 * 1e-6
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn to_period(self) -> Seconds {
        assert!(self.0 > 0.0, "frequency must be positive to yield a period");
        Seconds(1.0 / self.0)
    }
}

impl Meters {
    /// Constructs a length from micrometres (the natural unit for widths).
    #[inline]
    pub fn from_micros(um: f64) -> Self {
        Meters(um * 1e-6)
    }

    /// Constructs a length from nanometres.
    #[inline]
    pub fn from_nanos(nm: f64) -> Self {
        Meters(nm * 1e-9)
    }

    /// This length expressed in micrometres.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Farads {
    /// Constructs a capacitance from femtofarads.
    #[inline]
    pub fn from_femtos(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// This capacitance expressed in femtofarads.
    #[inline]
    pub fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }
}

/// An inclusive temperature range, e.g. the paper's −50 °C … 150 °C span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempRange {
    low: Celsius,
    high: Celsius,
}

impl TempRange {
    /// Creates a range from its endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either endpoint is not finite.
    pub fn new(low: Celsius, high: Celsius) -> Self {
        assert!(
            low.is_finite() && high.is_finite(),
            "endpoints must be finite"
        );
        assert!(
            low.get() <= high.get(),
            "low endpoint must not exceed high endpoint"
        );
        TempRange { low, high }
    }

    /// The military-grade span the paper evaluates: −50 °C … 150 °C.
    pub fn paper() -> Self {
        TempRange::new(Celsius::new(-50.0), Celsius::new(150.0))
    }

    /// Lower endpoint.
    #[inline]
    pub fn low(&self) -> Celsius {
        self.low
    }

    /// Upper endpoint.
    #[inline]
    pub fn high(&self) -> Celsius {
        self.high
    }

    /// Width of the range in kelvins (== °C of span).
    #[inline]
    pub fn span(&self) -> f64 {
        self.high.get() - self.low.get()
    }

    /// Midpoint of the range.
    #[inline]
    pub fn midpoint(&self) -> Celsius {
        Celsius::new(0.5 * (self.low.get() + self.high.get()))
    }

    /// `true` when `t` lies inside the range (inclusive).
    #[inline]
    pub fn contains(&self, t: Celsius) -> bool {
        t.get() >= self.low.get() && t.get() <= self.high.get()
    }

    /// `n` evenly spaced sample temperatures covering the range (inclusive
    /// of both endpoints). With `n == 1` the midpoint is returned.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn samples(&self, n: usize) -> Vec<Celsius> {
        assert!(n > 0, "sample count must be positive");
        if n == 1 {
            return vec![self.midpoint()];
        }
        let step = self.span() / (n - 1) as f64;
        (0..n)
            .map(|i| Celsius::new(self.low.get() + step * i as f64))
            .collect()
    }
}

impl Default for TempRange {
    fn default() -> Self {
        TempRange::paper()
    }
}

impl fmt::Display for TempRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(25.0);
        let k: Kelvin = c.into();
        assert!((k.get() - 298.15).abs() < 1e-12);
        let back: Celsius = k.into();
        assert!((back.get() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_on_quantities() {
        let a = Volts::new(3.3);
        let b = Volts::new(0.3);
        assert!(((a - b).get() - 3.0).abs() < 1e-12);
        assert!(((a + b).get() - 3.6).abs() < 1e-12);
        assert!(((a * 2.0).get() - 6.6).abs() < 1e-12);
        assert!(((2.0 * a).get() - 6.6).abs() < 1e-12);
        assert!((a / b - 11.0).abs() < 1e-12);
        assert!(((-b).get() + 0.3).abs() < 1e-12);
    }

    #[test]
    fn seconds_conversions() {
        let t = Seconds::from_picos(250.0);
        assert!((t.as_picos() - 250.0).abs() < 1e-9);
        assert!((t.as_nanos() - 0.25).abs() < 1e-12);
        let f = t.to_frequency();
        assert!((f.get() - 4e9).abs() < 1.0);
        assert!((f.to_period().as_picos() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_mega(100.0);
        assert!((f.as_mega() - 100.0).abs() < 1e-12);
        assert!((f.to_period().as_nanos() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn meters_and_farads() {
        assert!((Meters::from_micros(0.35).as_micros() - 0.35).abs() < 1e-12);
        assert!((Meters::from_nanos(350.0).as_micros() - 0.35).abs() < 1e-12);
        assert!((Farads::from_femtos(5.0).as_femtos() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_has_no_frequency() {
        let _ = Seconds::new(0.0).to_frequency();
    }

    #[test]
    fn range_samples_cover_endpoints() {
        let r = TempRange::paper();
        let s = r.samples(9);
        assert_eq!(s.len(), 9);
        assert!((s[0].get() + 50.0).abs() < 1e-9);
        assert!((s[8].get() - 150.0).abs() < 1e-9);
        assert!((s[4].get() - 50.0).abs() < 1e-9);
        assert!(r.contains(s[3]));
        assert!((r.span() - 200.0).abs() < 1e-12);
        assert!((r.midpoint().get() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn range_single_sample_is_midpoint() {
        let r = TempRange::new(Celsius::new(0.0), Celsius::new(100.0));
        let s = r.samples(1);
        assert_eq!(s.len(), 1);
        assert!((s[0].get() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "low endpoint")]
    fn inverted_range_rejected() {
        let _ = TempRange::new(Celsius::new(10.0), Celsius::new(-10.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Celsius::new(-5.0);
        let b = Celsius::new(3.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!((a.abs().get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(format!("{}", Celsius::new(27.0)), "27 °C");
        assert_eq!(format!("{}", Hertz::new(5.0)), "5 Hz");
    }
}
