//! Linearity analysis of the sensor transfer curve.
//!
//! The paper's Figs. 2 and 3 plot the *non-linearity error* of the
//! period-versus-temperature characteristic over −50 °C … 150 °C, in
//! percent. This module implements that metric: a straight line is fitted
//! to the sampled curve (least-squares by default, endpoint fit as the
//! classic data-sheet alternative) and the residual at each temperature is
//! normalized to the full-scale period span.
//!
//! A temperature-referred view is also provided: inverting the fitted line
//! turns a period into an estimated temperature, and the residual becomes
//! an error in °C — the figure a sensor user actually cares about.

use std::fmt;

use crate::error::{ModelError, Result};
use crate::ring::PeriodCurve;
use crate::units::{Celsius, Seconds};

/// A straight line `y = intercept + slope·x` fitted to data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination of the fit (1 = perfect line).
    pub r_squared: f64,
}

impl LinearFit {
    /// Ordinary least-squares fit of `ys` against `xs`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateFit`] when fewer than two points
    /// are given, the arrays differ in length, or all `xs` coincide.
    pub fn least_squares(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
        if xs.len() != ys.len() {
            return Err(ModelError::DegenerateFit {
                reason: format!("length mismatch: {} xs vs {} ys", xs.len(), ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(ModelError::DegenerateFit {
                reason: format!("need at least 2 points, got {}", xs.len()),
            });
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
            syy += (y - my) * (y - my);
        }
        if sxx == 0.0 {
            return Err(ModelError::DegenerateFit {
                reason: "all x values coincide".to_string(),
            });
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Endpoint fit: the line through the first and last samples. This is
    /// the conventional data-sheet INL reference.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateFit`] under the same conditions as
    /// [`LinearFit::least_squares`].
    pub fn endpoints(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
        if xs.len() != ys.len() || xs.len() < 2 {
            return Err(ModelError::DegenerateFit {
                reason: "endpoint fit needs two parallel samples".to_string(),
            });
        }
        let (x0, xn) = (xs[0], xs[xs.len() - 1]);
        let (y0, yn) = (ys[0], ys[ys.len() - 1]);
        if xn == x0 {
            return Err(ModelError::DegenerateFit {
                reason: "endpoints coincide in x".to_string(),
            });
        }
        let slope = (yn - y0) / (xn - x0);
        let intercept = y0 - slope * x0;
        // Report R² against the same data for comparability.
        let n = xs.len() as f64;
        let my = ys.iter().sum::<f64>() / n;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let e = y - (intercept + slope * x);
            ss_res += e * e;
            ss_tot += (y - my) * (y - my);
        }
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Value of the fitted line at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Inverts the line: the `x` whose fitted value is `y`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateFit`] when the slope is zero.
    pub fn invert(&self, y: f64) -> Result<f64> {
        if self.slope == 0.0 {
            return Err(ModelError::DegenerateFit {
                reason: "cannot invert a zero-slope line".to_string(),
            });
        }
        Ok((y - self.intercept) / self.slope)
    }
}

/// Which reference line the non-linearity is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitKind {
    /// Ordinary least squares over all samples (best-fit INL). This is the
    /// default and matches the near-zero-mean error traces of Figs. 2–3.
    #[default]
    LeastSquares,
    /// Straight line through the range endpoints (data-sheet INL).
    Endpoint,
}

/// Non-linearity analysis of a period-versus-temperature curve.
#[derive(Debug, Clone, PartialEq)]
pub struct NonLinearity {
    temps: Vec<Celsius>,
    /// Residual at each sample, in percent of the full-scale period span.
    error_percent: Vec<f64>,
    /// Residual expressed as a temperature error in °C.
    error_celsius: Vec<f64>,
    fit: LinearFit,
    full_scale: Seconds,
    fit_kind: FitKind,
}

impl NonLinearity {
    /// Analyses a sampled curve against the chosen reference line.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateFit`] when the curve has fewer than
    /// three samples (a two-point curve is trivially linear) or zero
    /// period span.
    pub fn of_curve(curve: &PeriodCurve, fit_kind: FitKind) -> Result<NonLinearity> {
        if curve.len() < 3 {
            return Err(ModelError::DegenerateFit {
                reason: format!("need at least 3 samples, got {}", curve.len()),
            });
        }
        let xs: Vec<f64> = curve.temps().iter().map(|t| t.get()).collect();
        let ys: Vec<f64> = curve.periods().iter().map(|p| p.get()).collect();
        let fit = match fit_kind {
            FitKind::LeastSquares => LinearFit::least_squares(&xs, &ys)?,
            FitKind::Endpoint => LinearFit::endpoints(&xs, &ys)?,
        };
        let full_scale = curve.full_scale();
        if full_scale.get() <= 0.0 {
            return Err(ModelError::DegenerateFit {
                reason: "curve has zero full-scale span".to_string(),
            });
        }
        let mut error_percent = Vec::with_capacity(xs.len());
        let mut error_celsius = Vec::with_capacity(xs.len());
        for (&x, &y) in xs.iter().zip(&ys) {
            let resid = y - fit.predict(x);
            error_percent.push(100.0 * resid / full_scale.get());
            error_celsius.push(resid / fit.slope);
        }
        Ok(NonLinearity {
            temps: curve.temps().to_vec(),
            error_percent,
            error_celsius,
            fit,
            full_scale,
            fit_kind,
        })
    }

    /// Sample temperatures.
    #[inline]
    pub fn temps(&self) -> &[Celsius] {
        &self.temps
    }

    /// Non-linearity error at each sample, in percent of full scale —
    /// the y-axis of the paper's Figs. 2 and 3.
    #[inline]
    pub fn error_percent(&self) -> &[f64] {
        &self.error_percent
    }

    /// Non-linearity expressed as a temperature error in °C at each
    /// sample.
    #[inline]
    pub fn error_celsius(&self) -> &[f64] {
        &self.error_celsius
    }

    /// The fitted reference line.
    #[inline]
    pub fn fit(&self) -> LinearFit {
        self.fit
    }

    /// Which reference line was used.
    #[inline]
    pub fn fit_kind(&self) -> FitKind {
        self.fit_kind
    }

    /// Full-scale period span of the analysed curve.
    #[inline]
    pub fn full_scale(&self) -> Seconds {
        self.full_scale
    }

    /// Worst-case |error| in percent of full scale — the paper's headline
    /// "below 0.2 %" figure of merit.
    pub fn max_abs_percent(&self) -> f64 {
        self.error_percent
            .iter()
            .fold(0.0_f64, |m, e| m.max(e.abs()))
    }

    /// Worst-case |error| referred to temperature, in °C.
    pub fn max_abs_celsius(&self) -> f64 {
        self.error_celsius
            .iter()
            .fold(0.0_f64, |m, e| m.max(e.abs()))
    }

    /// Root-mean-square error in percent of full scale.
    pub fn rms_percent(&self) -> f64 {
        let n = self.error_percent.len() as f64;
        (self.error_percent.iter().map(|e| e * e).sum::<f64>() / n).sqrt()
    }

    /// Iterates over `(temperature, error %)` pairs — one figure trace.
    pub fn iter_percent(&self) -> impl Iterator<Item = (Celsius, f64)> + '_ {
        self.temps
            .iter()
            .copied()
            .zip(self.error_percent.iter().copied())
    }
}

impl fmt::Display for NonLinearity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NL max {:.3} % FS ({:.2} °C), rms {:.3} %, R²={:.6}",
            self.max_abs_percent(),
            self.max_abs_celsius(),
            self.rms_percent(),
            self.fit.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Seconds};

    fn curve_from_fn(f: impl Fn(f64) -> f64, n: usize) -> PeriodCurve {
        let temps: Vec<Celsius> = (0..n)
            .map(|i| Celsius::new(-50.0 + 200.0 * i as f64 / (n - 1) as f64))
            .collect();
        let periods: Vec<Seconds> = temps.iter().map(|t| Seconds::new(f(t.get()))).collect();
        PeriodCurve::new(temps, periods)
    }

    #[test]
    fn perfect_line_has_zero_nonlinearity() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t, 21);
        let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        assert!(nl.max_abs_percent() < 1e-9);
        assert!(nl.max_abs_celsius() < 1e-9);
        assert!((nl.fit().r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_known_coefficients() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x).collect();
        let fit = LinearFit::least_squares(&xs, &ys).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.predict(4.0) - 5.0).abs() < 1e-12);
        assert!((fit.invert(5.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_curve_shows_symmetric_residual() {
        // y = t² has a classic -, +, - residual against its best line.
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 1e-15 * t * t, 41);
        let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        assert!(nl.max_abs_percent() > 0.0);
        let errs = nl.error_percent();
        // Ends and middle carry opposite signs for a parabola.
        assert!(errs[0] * errs[20] < 0.0);
        assert!(errs[40] * errs[20] < 0.0);
        // Least-squares residuals sum to ~zero.
        let mean: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn endpoint_fit_pins_the_ends() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 1e-15 * t * t, 21);
        let nl = NonLinearity::of_curve(&curve, FitKind::Endpoint).unwrap();
        let errs = nl.error_percent();
        assert!(errs[0].abs() < 1e-9);
        assert!(errs[20].abs() < 1e-9);
        assert_eq!(nl.fit_kind(), FitKind::Endpoint);
    }

    #[test]
    fn endpoint_inl_at_least_as_large_as_best_fit() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 1e-15 * t * t, 21);
        let best = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        let ep = NonLinearity::of_curve(&curve, FitKind::Endpoint).unwrap();
        assert!(ep.max_abs_percent() >= best.max_abs_percent() - 1e-12);
    }

    #[test]
    fn temperature_referred_error_consistent_with_percent() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 5e-16 * t * t, 21);
        let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        // error_°C = error_% /100 * full_scale / slope
        for i in 0..21 {
            let expect = nl.error_percent()[i] / 100.0 * nl.full_scale().get() / nl.fit().slope;
            assert!((nl.error_celsius()[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LinearFit::least_squares(&[1.0], &[2.0]).is_err());
        assert!(LinearFit::least_squares(&[1.0, 1.0], &[2.0, 3.0]).is_err());
        assert!(LinearFit::least_squares(&[1.0, 2.0], &[2.0]).is_err());
        assert!(LinearFit::endpoints(&[1.0, 1.0], &[0.0, 1.0]).is_err());
        let flat = LinearFit {
            slope: 0.0,
            intercept: 1.0,
            r_squared: 1.0,
        };
        assert!(flat.invert(2.0).is_err());

        let curve = PeriodCurve::new(
            vec![Celsius::new(0.0), Celsius::new(1.0)],
            vec![Seconds::new(1.0), Seconds::new(2.0)],
        );
        assert!(NonLinearity::of_curve(&curve, FitKind::LeastSquares).is_err());
    }

    #[test]
    fn rms_not_larger_than_max() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 1e-15 * t * t, 33);
        let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        assert!(nl.rms_percent() <= nl.max_abs_percent() + 1e-15);
        assert!(nl.rms_percent() > 0.0);
    }

    #[test]
    fn display_mentions_key_stats() {
        let curve = curve_from_fn(|t| 1e-9 + 2e-12 * t + 1e-15 * t * t, 21);
        let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares).unwrap();
        let s = format!("{nl}");
        assert!(s.contains("NL max") && s.contains("%"));
    }
}
