//! Dual-ring ratiometric sensing — cancelling supply droop.
//!
//! Ext-2 shows a single ring reads ~0.1 °C per millivolt of supply
//! error. The classic countermeasure is *ratiometric* sensing: digitize
//! the ratio of two co-located rings built from **different cell mixes**.
//! Both rings share the same rail, so the (similar) supply dependence
//! divides out to first order, while their *different* temperature
//! slopes leave a usable — if smaller — temperature signal:
//!
//! ```text
//! R(T, V) = P_sense / P_ref
//! ∂lnR/∂V = ∂lnP_s/∂V − ∂lnP_r/∂V   (small: same rail, similar α/V_ov)
//! ∂lnR/∂T = ∂lnP_s/∂T − ∂lnP_r/∂T   (finite: different cell mixes)
//! ```
//!
//! The figure of merit is the °C-per-mV error of the ratio channel
//! compared to a single ring; [`DualRingSensor::supply_rejection`]
//! reports the improvement factor.

use crate::error::{ModelError, Result};
use crate::linearity::LinearFit;
use crate::ring::RingOscillator;
use crate::tech::Technology;
use crate::units::{Celsius, TempRange, Volts};

/// Two co-located rings read ratiometrically.
#[derive(Debug, Clone, PartialEq)]
pub struct DualRingSensor {
    sense: RingOscillator,
    reference: RingOscillator,
}

impl DualRingSensor {
    /// Pairs a sensing ring with a reference ring.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRing`] when the rings are identical
    /// stage-for-stage — the ratio of identical rings carries no
    /// temperature signal.
    pub fn new(sense: RingOscillator, reference: RingOscillator) -> Result<Self> {
        if sense == reference {
            return Err(ModelError::InvalidRing {
                reason: "sense and reference rings are identical; the ratio cancels the signal"
                    .to_string(),
            });
        }
        Ok(DualRingSensor { sense, reference })
    }

    /// The sensing ring.
    #[inline]
    pub fn sense(&self) -> &RingOscillator {
        &self.sense
    }

    /// The reference ring.
    #[inline]
    pub fn reference(&self) -> &RingOscillator {
        &self.reference
    }

    /// The ratio `P_sense / P_ref` at one operating point.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures.
    pub fn ratio(&self, tech: &Technology, t: Celsius) -> Result<f64> {
        Ok(self.sense.period(tech, t)? / self.reference.period(tech, t)?)
    }

    /// Samples the ratio across a temperature range.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures.
    pub fn ratio_curve(
        &self,
        tech: &Technology,
        range: TempRange,
        samples: usize,
    ) -> Result<Vec<(Celsius, f64)>> {
        range
            .samples(samples)
            .into_iter()
            .map(|t| self.ratio(tech, t).map(|r| (t, r)))
            .collect()
    }

    /// Temperature sensitivity of the log-ratio, `∂ln R/∂T` per kelvin.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures.
    pub fn temp_slope(&self, tech: &Technology, t: Celsius) -> Result<f64> {
        let h = 0.1;
        let hi = self.ratio(tech, Celsius::new(t.get() + h))?;
        let lo = self.ratio(tech, Celsius::new(t.get() - h))?;
        Ok((hi.ln() - lo.ln()) / (2.0 * h))
    }

    /// Supply sensitivity of the log-ratio, `∂ln R/∂V` per volt.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures.
    pub fn supply_slope(&self, tech: &Technology, t: Celsius) -> Result<f64> {
        let dv = 0.01;
        let mut hi = tech.clone();
        hi.vdd = Volts::new(tech.vdd.get() + dv);
        let mut lo = tech.clone();
        lo.vdd = Volts::new(tech.vdd.get() - dv);
        let r_hi = self.ratio(&hi, t)?;
        let r_lo = self.ratio(&lo, t)?;
        Ok((r_hi.ln() - r_lo.ln()) / (2.0 * dv))
    }

    /// Apparent temperature error per millivolt of supply error, for the
    /// ratio channel (°C/mV).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateFit`] when the pair has no
    /// temperature signal at `t`, or propagates evaluation failures.
    pub fn temp_error_per_mv(&self, tech: &Technology, t: Celsius) -> Result<f64> {
        let st = self.temp_slope(tech, t)?;
        if st.abs() < 1e-12 {
            return Err(ModelError::DegenerateFit {
                reason: "ratio has no temperature sensitivity at this point".to_string(),
            });
        }
        Ok(self.supply_slope(tech, t)? * 1e-3 / st)
    }

    /// Supply-rejection improvement of the ratio channel over the sense
    /// ring alone: `(°C/mV single) / (°C/mV ratio)`. Values above 1 mean
    /// the ratiometric read-out is more droop-tolerant.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures and the no-signal condition.
    pub fn supply_rejection(&self, tech: &Technology, t: Celsius) -> Result<f64> {
        let single = crate::supply::SupplySensitivity::at(&self.sense, tech, t)?;
        let single_err = (single.temp_error_per_mv).abs();
        let ratio_err = self.temp_error_per_mv(tech, t)?.abs();
        Ok(single_err / ratio_err)
    }

    /// Linearity of the ratio transfer over a range: R² of the best-fit
    /// line of `ratio` against temperature.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and fit failures.
    pub fn ratio_linearity(
        &self,
        tech: &Technology,
        range: TempRange,
        samples: usize,
    ) -> Result<LinearFit> {
        let curve = self.ratio_curve(tech, range, samples)?;
        let xs: Vec<f64> = curve.iter().map(|(t, _)| t.get()).collect();
        let ys: Vec<f64> = curve.iter().map(|(_, r)| *r).collect();
        LinearFit::least_squares(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};
    use crate::ring::CellConfig;

    fn pair() -> (Technology, DualRingSensor) {
        // A pair found by sweeping cell kinds and sizings for maximum
        // droop rejection: both rings are NAND-stack types (very similar
        // supply dependence), but their sizing ratios sit on opposite
        // sides of the temperature-balance point, leaving a clean
        // differential temperature signal.
        let tech = Technology::um350();
        let sense = RingOscillator::from_config(
            &CellConfig::uniform(GateKind::Nand2, 5).unwrap(),
            1e-6,
            1.5,
        )
        .unwrap();
        let reference = RingOscillator::from_config(
            &CellConfig::uniform(GateKind::Nand3, 5).unwrap(),
            1e-6,
            3.0,
        )
        .unwrap();
        (tech, DualRingSensor::new(sense, reference).unwrap())
    }

    #[test]
    fn identical_rings_rejected() {
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        assert!(DualRingSensor::new(ring.clone(), ring).is_err());
    }

    #[test]
    fn ratio_carries_a_temperature_signal() {
        let (tech, dual) = pair();
        let slope = dual.temp_slope(&tech, Celsius::new(27.0)).unwrap();
        assert!(slope.abs() > 1e-5, "log-ratio slope {slope}/K");
        // And the ratio is monotone over the range for this pair.
        let curve = dual.ratio_curve(&tech, TempRange::paper(), 21).unwrap();
        let monotone =
            curve.windows(2).all(|w| w[1].1 > w[0].1) || curve.windows(2).all(|w| w[1].1 < w[0].1);
        assert!(monotone, "{curve:?}");
    }

    #[test]
    fn supply_rejection_beats_the_single_ring() {
        let (tech, dual) = pair();
        let rejection = dual.supply_rejection(&tech, Celsius::new(85.0)).unwrap();
        assert!(rejection > 5.0, "rejection {rejection}x");
    }

    #[test]
    fn ratio_channel_error_per_mv_is_small() {
        let (tech, dual) = pair();
        let err = dual
            .temp_error_per_mv(&tech, Celsius::new(85.0))
            .unwrap()
            .abs();
        // Single ring: ~0.1 °C/mV (Ext-2). The ratio channel must do
        // meaningfully better.
        assert!(err < 0.02, "ratio channel {err} °C/mV");
    }

    #[test]
    fn ratio_transfer_is_linear_enough_to_calibrate() {
        let (tech, dual) = pair();
        let fit = dual.ratio_linearity(&tech, TempRange::paper(), 21).unwrap();
        // The differential signal is small, so its *relative* curvature
        // is larger than a single ring's — the honest price of the
        // droop rejection. Still comfortably calibratable.
        assert!(fit.r_squared > 0.98, "R² = {}", fit.r_squared);
        assert!(fit.slope.abs() > 0.0);
    }

    #[test]
    fn accessors() {
        let (_, dual) = pair();
        assert_eq!(dual.sense().stage_count(), 5);
        assert_eq!(dual.reference().stage_count(), 5);
    }
}
