//! # tsense-core — analytical models for ring-oscillator temperature sensors
//!
//! This crate implements the analytical layer of the reproduction of
//! *"Smart Temperature Sensor for Thermal Testing of Cell-Based ICs"*
//! (Bota, Rosales, Segura — DATE 2005): closed-form alpha-power-law gate
//! delays with NMOS/PMOS temperature asymmetry, ring-oscillator period
//! models, linearity metrics, and the two optimization knobs the paper
//! studies — transistor sizing ratio (Fig. 2) and standard-cell mix
//! (Fig. 3) — plus calibration (one/two/three-point), supply-droop and
//! dual-ring cross-sensitivity analysis, and Monte-Carlo process
//! variation. Complex inverting cells (AOI21/OAI21) are supported via
//! series/parallel [`network::PullNetwork`] trees.
//!
//! ## Quick start
//!
//! ```
//! use tsense_core::gate::{Gate, GateKind};
//! use tsense_core::linearity::{FitKind, NonLinearity};
//! use tsense_core::ring::RingOscillator;
//! use tsense_core::tech::Technology;
//! use tsense_core::units::TempRange;
//!
//! let tech = Technology::um350();
//! let inv = Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.25)?;
//! let ring = RingOscillator::uniform(inv, 5)?;
//! let curve = ring.period_curve(&tech, TempRange::paper(), 41)?;
//! let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares)?;
//! println!("worst-case non-linearity: {:.3} % FS", nl.max_abs_percent());
//! # Ok::<(), tsense_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Validation deliberately writes `!(x > 0.0)` instead of `x <= 0.0`:
// the negated form also rejects NaN, which the comparison form lets
// through silently.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod calibration;
pub mod dualring;
pub mod error;
pub mod gate;
pub mod linearity;
pub mod mosfet;
pub mod network;
pub mod optimize;
pub mod ring;
pub mod sensitivity;
pub mod supply;
pub mod tech;
pub mod units;
pub mod variation;

pub use error::{ModelError, Result};
pub use gate::{Gate, GateKind};
pub use linearity::{FitKind, LinearFit, NonLinearity};
pub use network::PullNetwork;
pub use ring::{CellConfig, PeriodCurve, RingOscillator};
pub use tech::{Polarity, Technology};
pub use units::{Celsius, Hertz, Kelvin, Seconds, TempRange, Volts};
