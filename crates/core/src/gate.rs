//! Inverting standard-cell gates with all inputs tied together.
//!
//! The paper's key idea (Section 3) is that replacing the inverters of a
//! ring oscillator by other *inverting* gates — NAND and NOR cells with
//! their inputs tied — changes the balance between the NMOS-driven `t_PHL`
//! and the PMOS-driven `t_PLH` without touching transistor sizes, because:
//!
//! * a NAND pulls down through a **series NMOS stack** (weaker, with a
//!   body-effect threshold shift) and up through **parallel PMOS** devices
//!   that all switch together (stronger);
//! * a NOR is the dual;
//! * every tied input adds one NMOS and one PMOS gate of load.
//!
//! The temperature *shape* of a series stack also differs slightly from a
//! single device (the body-effect shift changes the overdrive that the
//! threshold temperature coefficient acts on), which is why a cell mix is a
//! genuine linearity knob and not just a delay scale.
//!
//! Beyond the paper's INV/NAND/NOR set, the complex inverting cells of a
//! real library (AOI21, OAI21) are supported through general
//! series/parallel [`PullNetwork`] trees — they mix stack depths inside
//! one network and therefore add intermediate curvature points to the
//! search space.

use std::fmt;
use std::str::FromStr;

use crate::error::{ModelError, Result};
use crate::mosfet::AlphaPowerFet;
use crate::network::PullNetwork;
use crate::tech::{Polarity, Technology};
use crate::units::{Celsius, Farads, Seconds, Volts};

/// The inverting cell types available in a typical standard-cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Plain inverter.
    Inv,
    /// 2-input NAND, inputs tied.
    Nand2,
    /// 3-input NAND, inputs tied.
    Nand3,
    /// 4-input NAND, inputs tied.
    Nand4,
    /// 2-input NOR, inputs tied.
    Nor2,
    /// 3-input NOR, inputs tied.
    Nor3,
    /// 4-input NOR, inputs tied.
    Nor4,
    /// AND-OR-invert `!(A·B + C)`, inputs tied.
    Aoi21,
    /// OR-AND-invert `!((A + B)·C)`, inputs tied.
    Oai21,
}

impl GateKind {
    /// Every supported kind, in a stable order.
    pub const ALL: [GateKind; 9] = [
        GateKind::Inv,
        GateKind::Nand2,
        GateKind::Nand3,
        GateKind::Nand4,
        GateKind::Nor2,
        GateKind::Nor3,
        GateKind::Nor4,
        GateKind::Aoi21,
        GateKind::Oai21,
    ];

    /// The subset the paper's Fig. 3 draws from.
    pub const PAPER_SET: [GateKind; 5] = [
        GateKind::Inv,
        GateKind::Nand2,
        GateKind::Nand3,
        GateKind::Nor2,
        GateKind::Nor3,
    ];

    /// The paper set extended with the complex inverting cells — used by
    /// the Ext-1 study of whether a richer library helps the search.
    pub const EXTENDED_SET: [GateKind; 7] = [
        GateKind::Inv,
        GateKind::Nand2,
        GateKind::Nand3,
        GateKind::Nor2,
        GateKind::Nor3,
        GateKind::Aoi21,
        GateKind::Oai21,
    ];

    /// Number of logical inputs (all tied together in sensor rings).
    pub fn fan_in(self) -> usize {
        match self {
            GateKind::Inv => 1,
            GateKind::Nand2 | GateKind::Nor2 => 2,
            GateKind::Nand3 | GateKind::Nor3 | GateKind::Aoi21 | GateKind::Oai21 => 3,
            GateKind::Nand4 | GateKind::Nor4 => 4,
        }
    }

    /// Pull-down (NMOS) network topology.
    pub fn pull_down(self) -> PullNetwork {
        match self {
            GateKind::Inv => PullNetwork::Device,
            GateKind::Nand2 => PullNetwork::series_chain(2),
            GateKind::Nand3 => PullNetwork::series_chain(3),
            GateKind::Nand4 => PullNetwork::series_chain(4),
            GateKind::Nor2 => PullNetwork::parallel_bank(2),
            GateKind::Nor3 => PullNetwork::parallel_bank(3),
            GateKind::Nor4 => PullNetwork::parallel_bank(4),
            // !(A·B + C): (A·B) or C pulls down.
            GateKind::Aoi21 => {
                PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device])
            }
            // !((A+B)·C): (A or B) and C pull down in series.
            GateKind::Oai21 => {
                PullNetwork::Series(vec![PullNetwork::parallel_bank(2), PullNetwork::Device])
            }
        }
    }

    /// Pull-up (PMOS) network topology — always the dual of the
    /// pull-down.
    pub fn pull_up(self) -> PullNetwork {
        self.pull_down().dual()
    }

    /// `true` for every supported kind: the sensor ring only admits
    /// inverting cells, so this is a tautology here, but it documents the
    /// invariant the ring constructor relies on. (With all inputs tied,
    /// AOI/OAI degenerate to inverters logically: `!(x·x + x) = !x`.)
    pub fn is_inverting(self) -> bool {
        true
    }

    /// Library-style cell name.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Inv => "INV",
            GateKind::Nand2 => "NAND2",
            GateKind::Nand3 => "NAND3",
            GateKind::Nand4 => "NAND4",
            GateKind::Nor2 => "NOR2",
            GateKind::Nor3 => "NOR3",
            GateKind::Nor4 => "NOR4",
            GateKind::Aoi21 => "AOI21",
            GateKind::Oai21 => "OAI21",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateError {
    text: String,
}

impl fmt::Display for ParseGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.text)
    }
}

impl std::error::Error for ParseGateError {}

impl FromStr for GateKind {
    type Err = ParseGateError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "INV" | "INV1" | "NOT" => Ok(GateKind::Inv),
            "NAND2" | "ND2" => Ok(GateKind::Nand2),
            "NAND3" | "ND3" => Ok(GateKind::Nand3),
            "NAND4" | "ND4" => Ok(GateKind::Nand4),
            "NOR2" | "NR2" => Ok(GateKind::Nor2),
            "NOR3" | "NR3" => Ok(GateKind::Nor3),
            "NOR4" | "NR4" => Ok(GateKind::Nor4),
            "AOI21" => Ok(GateKind::Aoi21),
            "OAI21" => Ok(GateKind::Oai21),
            other => Err(ParseGateError {
                text: other.to_string(),
            }),
        }
    }
}

/// The pair of propagation delays of one switching event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelays {
    /// High-to-low output transition delay (NMOS network discharges).
    pub tphl: Seconds,
    /// Low-to-high output transition delay (PMOS network charges).
    pub tplh: Seconds,
}

impl GateDelays {
    /// Sum of both delays — one gate's contribution to a ring period.
    #[inline]
    pub fn pair_sum(&self) -> Seconds {
        self.tphl + self.tplh
    }
}

/// A sized instance of an inverting standard cell.
///
/// `wn`/`wp` are per-transistor widths in metres; the effective drive of
/// the pull networks is derived from the topology.
///
/// ```
/// use tsense_core::gate::{Gate, GateKind};
/// use tsense_core::tech::Technology;
/// use tsense_core::units::Celsius;
///
/// let tech = Technology::um350();
/// let g = Gate::sized(GateKind::Nand2, 1.0e-6, 2.0e-6)?;
/// let load = g.input_capacitance(&tech);
/// let d = g.delays(&tech, Celsius::new(27.0), load)?;
/// assert!(d.tphl.get() > 0.0 && d.tplh.get() > 0.0);
/// # Ok::<(), tsense_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate {
    kind: GateKind,
    wn: f64,
    wp: f64,
}

impl Gate {
    /// Creates a gate with explicit per-transistor widths (metres).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when either width is not
    /// positive.
    pub fn sized(kind: GateKind, wn: f64, wp: f64) -> Result<Self> {
        if !(wn > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "wn",
                value: wn,
                constraint: "NMOS width must be positive",
            });
        }
        if !(wp > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "wp",
                value: wp,
                constraint: "PMOS width must be positive",
            });
        }
        Ok(Gate { kind, wn, wp })
    }

    /// Creates a gate from an NMOS width and a `Wp/Wn` ratio — the exact
    /// parameterization of the paper's Fig. 2 sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the width or ratio is
    /// not positive.
    pub fn with_ratio(kind: GateKind, wn: f64, ratio: f64) -> Result<Self> {
        if !(ratio > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "ratio",
                value: ratio,
                constraint: "Wp/Wn ratio must be positive",
            });
        }
        Gate::sized(kind, wn, wn * ratio)
    }

    /// The cell type.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// NMOS transistor width in metres.
    #[inline]
    pub fn wn(&self) -> f64 {
        self.wn
    }

    /// PMOS transistor width in metres.
    #[inline]
    pub fn wp(&self) -> f64 {
        self.wp
    }

    /// The `Wp/Wn` sizing ratio.
    #[inline]
    pub fn ratio(&self) -> f64 {
        self.wp / self.wn
    }

    /// Capacitance presented by this gate's (tied) input pin: every input
    /// adds one NMOS and one PMOS gate terminal.
    pub fn input_capacitance(&self, tech: &Technology) -> Farads {
        let k = self.kind.fan_in() as f64;
        Farads::new(k * (self.wn + self.wp) * tech.cg_per_width)
    }

    /// Parasitic (junction) capacitance this gate contributes to its own
    /// output node: the devices whose drains touch the output.
    pub fn output_parasitic(&self, tech: &Technology) -> Farads {
        let wn_at_out = self.kind.pull_down().output_drain_count() as f64 * self.wn;
        let wp_at_out = self.kind.pull_up().output_drain_count() as f64 * self.wp;
        Farads::new((wn_at_out + wp_at_out) * tech.cj_per_width)
    }

    fn network_fet(
        &self,
        tech: &Technology,
        polarity: Polarity,
        network: &PullNetwork,
        w: f64,
    ) -> Result<AlphaPowerFet> {
        let params = *tech.device(polarity);
        let w_eff = network.effective_width(w, tech.stack_res_factor);
        let depth = network.max_stack_depth();
        let shift = Volts::new(tech.stack_vth_shift * (depth as f64 - 1.0));
        Ok(AlphaPowerFet::new(polarity, params, w_eff)?.with_vth_shift(shift))
    }

    /// The equivalent transistor of the pull-down (NMOS) network with all
    /// inputs tied.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the technology's device
    /// parameters fail validation.
    pub fn pull_down_fet(&self, tech: &Technology) -> Result<AlphaPowerFet> {
        self.network_fet(tech, Polarity::Nmos, &self.kind.pull_down(), self.wn)
    }

    /// The equivalent transistor of the pull-up (PMOS) network with all
    /// inputs tied.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the technology's device
    /// parameters fail validation.
    pub fn pull_up_fet(&self, tech: &Technology) -> Result<AlphaPowerFet> {
        self.network_fet(tech, Polarity::Pmos, &self.kind.pull_up(), self.wp)
    }

    /// Propagation delays driving an external load `c_load` at junction
    /// temperature `t`. The gate's own output parasitic is added to the
    /// load internally.
    ///
    /// Uses the alpha-power delay estimate `t_p = C·V_DD / (2·I_sat(T))`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoOverdrive`] when either network is off at
    /// `t` (the ring would stall).
    pub fn delays(&self, tech: &Technology, t: Celsius, c_load: Farads) -> Result<GateDelays> {
        let c_total = c_load + self.output_parasitic(tech);
        let charge = 0.5 * c_total.get() * tech.vdd.get();
        let i_dn = self.pull_down_fet(tech)?.sat_current(t, tech.vdd)?;
        let i_up = self.pull_up_fet(tech)?.sat_current(t, tech.vdd)?;
        Ok(GateDelays {
            tphl: Seconds::new(charge / i_dn.get()),
            tplh: Seconds::new(charge / i_up.get()),
        })
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (Wn={:.2}µm, Wp={:.2}µm)",
            self.kind,
            self.wn * 1e6,
            self.wp * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::um350()
    }

    #[test]
    fn pull_networks_are_dual() {
        for k in GateKind::ALL {
            assert_eq!(k.pull_up(), k.pull_down().dual(), "{k}");
            assert_eq!(
                k.pull_down().device_count(),
                k.fan_in(),
                "{k}: one NMOS per input"
            );
            assert_eq!(
                k.pull_up().device_count(),
                k.fan_in(),
                "{k}: one PMOS per input"
            );
        }
    }

    #[test]
    fn fan_in_matches_name() {
        assert_eq!(GateKind::Inv.fan_in(), 1);
        assert_eq!(GateKind::Nand3.fan_in(), 3);
        assert_eq!(GateKind::Nor4.fan_in(), 4);
        assert_eq!(GateKind::Aoi21.fan_in(), 3);
        assert_eq!(GateKind::Oai21.fan_in(), 3);
    }

    #[test]
    fn parse_round_trip() {
        for k in GateKind::ALL {
            let parsed: GateKind = k.name().parse().expect("round trip");
            assert_eq!(parsed, k);
        }
        assert!("XOR2".parse::<GateKind>().is_err());
        assert_eq!("nand2".parse::<GateKind>().unwrap(), GateKind::Nand2);
        assert_eq!("aoi21".parse::<GateKind>().unwrap(), GateKind::Aoi21);
    }

    #[test]
    fn nand_pull_down_weaker_than_inverter() {
        let t = tech();
        let inv = Gate::sized(GateKind::Inv, 1e-6, 2e-6).unwrap();
        let nand = Gate::sized(GateKind::Nand2, 1e-6, 2e-6).unwrap();
        let at = Celsius::new(27.0);
        let i_inv = inv
            .pull_down_fet(&t)
            .unwrap()
            .sat_current(at, t.vdd)
            .unwrap()
            .get();
        let i_nand = nand
            .pull_down_fet(&t)
            .unwrap()
            .sat_current(at, t.vdd)
            .unwrap()
            .get();
        assert!(i_nand < 0.55 * i_inv, "series stack must be < half drive");
    }

    #[test]
    fn nand_pull_up_stronger_than_inverter() {
        let t = tech();
        let inv = Gate::sized(GateKind::Inv, 1e-6, 2e-6).unwrap();
        let nand = Gate::sized(GateKind::Nand2, 1e-6, 2e-6).unwrap();
        let at = Celsius::new(27.0);
        let i_inv = inv
            .pull_up_fet(&t)
            .unwrap()
            .sat_current(at, t.vdd)
            .unwrap()
            .get();
        let i_nand = nand
            .pull_up_fet(&t)
            .unwrap()
            .sat_current(at, t.vdd)
            .unwrap()
            .get();
        assert!(
            (i_nand / i_inv - 2.0).abs() < 1e-9,
            "two tied PMOS in parallel"
        );
    }

    #[test]
    fn nor_is_the_dual_of_nand() {
        let t = tech();
        let nand = Gate::sized(GateKind::Nand2, 1e-6, 1e-6).unwrap();
        let nor = Gate::sized(GateKind::Nor2, 1e-6, 1e-6).unwrap();
        // NAND's weak network is the pull-down; NOR's weak network is the
        // pull-up. With equal widths the *relative* weakening matches.
        let nand_dn = nand.pull_down_fet(&t).unwrap();
        let nor_up = nor.pull_up_fet(&t).unwrap();
        assert!((nand_dn.width - nor_up.width).abs() < 1e-18);
        assert_eq!(nand_dn.vth_shift, nor_up.vth_shift);
    }

    #[test]
    fn aoi_drive_between_inverter_and_stack() {
        // AOI21 pull-down = (series-2) ∥ device: stronger than an
        // inverter's single device but with a depth-2 threshold shift.
        let t = tech();
        let at = Celsius::new(27.0);
        let aoi = Gate::sized(GateKind::Aoi21, 1e-6, 2e-6).unwrap();
        let fet = aoi.pull_down_fet(&t).unwrap();
        assert!(
            fet.width > 1e-6 && fet.width < 1.5e-6,
            "eff width {}",
            fet.width
        );
        assert!(fet.vth_shift.get() > 0.0, "stack shift applies");
        // OAI21 pull-down = (parallel-2) in series with a device: weaker.
        let oai = Gate::sized(GateKind::Oai21, 1e-6, 2e-6).unwrap();
        let fet_oai = oai.pull_down_fet(&t).unwrap();
        assert!(fet_oai.width < 1e-6, "eff width {}", fet_oai.width);
        // Both still drive a load at temperature.
        let load = aoi.input_capacitance(&t);
        assert!(aoi.delays(&t, at, load).unwrap().tphl.get() > 0.0);
        assert!(oai.delays(&t, at, load).unwrap().tplh.get() > 0.0);
    }

    #[test]
    fn input_cap_scales_with_fan_in() {
        let t = tech();
        let inv = Gate::sized(GateKind::Inv, 1e-6, 2e-6).unwrap();
        let nand3 = Gate::sized(GateKind::Nand3, 1e-6, 2e-6).unwrap();
        let aoi = Gate::sized(GateKind::Aoi21, 1e-6, 2e-6).unwrap();
        let ci = inv.input_capacitance(&t).get();
        assert!((nand3.input_capacitance(&t).get() / ci - 3.0).abs() < 1e-12);
        assert!((aoi.input_capacitance(&t).get() / ci - 3.0).abs() < 1e-12);
    }

    #[test]
    fn output_parasitic_counts_drains_at_output() {
        let t = tech();
        let cj = t.cj_per_width;
        let nand2 = Gate::sized(GateKind::Nand2, 1e-6, 2e-6).unwrap();
        // NAND2: stack top NMOS (1·wn) + both PMOS (2·wp).
        let expect = (1e-6 + 2.0 * 2e-6) * cj;
        assert!((nand2.output_parasitic(&t).get() - expect).abs() < 1e-20);
        let aoi = Gate::sized(GateKind::Aoi21, 1e-6, 2e-6).unwrap();
        // AOI21 pd: stack-top + lone device = 2·wn; pu dual: 2·wp at top.
        let expect = (2.0 * 1e-6 + 2.0 * 2e-6) * cj;
        assert!((aoi.output_parasitic(&t).get() - expect).abs() < 1e-20);
    }

    #[test]
    fn delays_positive_and_increase_with_load() {
        let t = tech();
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        let at = Celsius::new(27.0);
        let d1 = g.delays(&t, at, Farads::from_femtos(5.0)).unwrap();
        let d2 = g.delays(&t, at, Farads::from_femtos(10.0)).unwrap();
        assert!(d1.tphl.get() > 0.0 && d1.tplh.get() > 0.0);
        assert!(d2.tphl.get() > d1.tphl.get());
        assert!(d2.tplh.get() > d1.tplh.get());
        assert!(d1.pair_sum().get() > d1.tphl.get());
    }

    #[test]
    fn inverter_delay_is_tens_of_picoseconds() {
        // Sanity against the paper's Fig. 1 time base (a 5-stage ring shows
        // a handful of periods within 1500 ps).
        let t = tech();
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        let load = g.input_capacitance(&t);
        let d = g.delays(&t, Celsius::new(27.0), load).unwrap();
        let ps = d.pair_sum().as_picos();
        assert!(ps > 10.0 && ps < 500.0, "pair delay {ps} ps out of range");
    }

    #[test]
    fn delay_increases_with_temperature_at_nominal_supply() {
        let t = tech();
        for kind in GateKind::ALL {
            let g = Gate::with_ratio(kind, 1e-6, 2.0).unwrap();
            let load = g.input_capacitance(&t);
            let cold = g.delays(&t, Celsius::new(-50.0), load).unwrap().pair_sum();
            let hot = g.delays(&t, Celsius::new(150.0), load).unwrap().pair_sum();
            assert!(
                hot.get() > cold.get(),
                "{kind}: delay must grow with temperature"
            );
        }
    }

    #[test]
    fn ratio_constructor() {
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.25).unwrap();
        assert!((g.ratio() - 2.25).abs() < 1e-12);
        assert!(Gate::with_ratio(GateKind::Inv, 1e-6, 0.0).is_err());
        assert!(Gate::sized(GateKind::Inv, -1e-6, 1e-6).is_err());
    }

    #[test]
    fn display_formats() {
        let g = Gate::sized(GateKind::Nand2, 1e-6, 2e-6).unwrap();
        let s = format!("{g}");
        assert!(s.contains("NAND2") && s.contains("1.00") && s.contains("2.00"));
    }
}
