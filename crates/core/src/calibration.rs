//! Converting an oscillation period into a temperature reading.
//!
//! The smart unit's digital block reports a *period-derived count*; turning
//! that into degrees requires calibration. Two industry-standard schemes
//! are modelled:
//!
//! * **Two-point** ([`TwoPoint`]): measure the period at two known
//!   temperatures (e.g. wafer test at 25 °C and burn-in at 125 °C) and
//!   interpolate linearly. Absorbs both process-induced offset *and* slope
//!   error; the residual is exactly the transfer-curve non-linearity.
//! * **One-point** ([`OnePoint`]): measure at a single temperature and
//!   re-use the typical (nominal-model) slope. Cheaper on the tester but
//!   leaves any process-induced slope error uncorrected — the ablation
//!   study quantifies the difference.

use std::fmt;

use crate::error::{ModelError, Result};
use crate::ring::{PeriodCurve, RingOscillator};
use crate::tech::Technology;
use crate::units::{Celsius, Seconds, TempRange};

/// A calibrated inverse transfer function: period in → temperature out.
pub trait Calibration {
    /// Estimated junction temperature for a measured oscillation period.
    fn estimate(&self, period: Seconds) -> Celsius;

    /// Short human-readable scheme name.
    fn scheme(&self) -> &'static str;
}

/// Two-point linear calibration.
///
/// ```
/// use tsense_core::calibration::{Calibration, TwoPoint};
/// use tsense_core::units::{Celsius, Seconds};
///
/// let cal = TwoPoint::fit(
///     Celsius::new(25.0), Seconds::from_picos(300.0),
///     Celsius::new(125.0), Seconds::from_picos(360.0),
/// )?;
/// let reading = cal.estimate(Seconds::from_picos(330.0));
/// assert!((reading.get() - 75.0).abs() < 1e-9);
/// # Ok::<(), tsense_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoint {
    /// °C per second of period (inverse sensitivity).
    slope_c_per_s: f64,
    /// Temperature at zero period (extrapolated intercept).
    intercept_c: f64,
}

impl TwoPoint {
    /// Fits the calibration from two anchor measurements.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadCalibration`] when the anchors coincide in
    /// temperature or period, or are not finite.
    pub fn fit(t1: Celsius, p1: Seconds, t2: Celsius, p2: Seconds) -> Result<Self> {
        if !(t1.is_finite() && t2.is_finite() && p1.is_finite() && p2.is_finite()) {
            return Err(ModelError::BadCalibration {
                reason: "anchor values must be finite".to_string(),
            });
        }
        if (t2.get() - t1.get()).abs() < 1e-12 {
            return Err(ModelError::BadCalibration {
                reason: "anchor temperatures coincide".to_string(),
            });
        }
        if (p2.get() - p1.get()).abs() < 1e-30 {
            return Err(ModelError::BadCalibration {
                reason: "anchor periods coincide; sensor has no sensitivity".to_string(),
            });
        }
        let slope = (t2.get() - t1.get()) / (p2.get() - p1.get());
        let intercept = t1.get() - slope * p1.get();
        Ok(TwoPoint {
            slope_c_per_s: slope,
            intercept_c: intercept,
        })
    }

    /// Convenience: fit from a ring model by *simulated* anchor
    /// measurements at `t1` and `t2`.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation errors and anchor-fit failures.
    pub fn fit_ring(
        ring: &RingOscillator,
        tech: &Technology,
        t1: Celsius,
        t2: Celsius,
    ) -> Result<Self> {
        let p1 = ring.period(tech, t1)?;
        let p2 = ring.period(tech, t2)?;
        TwoPoint::fit(t1, p1, t2, p2)
    }

    /// °C of temperature change per second of period change.
    #[inline]
    pub fn slope_c_per_s(&self) -> f64 {
        self.slope_c_per_s
    }
}

impl Calibration for TwoPoint {
    fn estimate(&self, period: Seconds) -> Celsius {
        Celsius::new(self.intercept_c + self.slope_c_per_s * period.get())
    }

    fn scheme(&self) -> &'static str {
        "two-point"
    }
}

impl fmt::Display for TwoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "two-point calibration ({:.3} °C/ns)",
            self.slope_c_per_s * 1e-9
        )
    }
}

/// One-point calibration: measured offset, typical slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePoint {
    slope_c_per_s: f64,
    intercept_c: f64,
}

impl OnePoint {
    /// Fits from one anchor `(t0, p0)` plus an externally supplied typical
    /// slope (°C per second of period), usually taken from the nominal
    /// design model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadCalibration`] for non-finite anchors or a
    /// zero slope.
    pub fn fit(t0: Celsius, p0: Seconds, typical_slope_c_per_s: f64) -> Result<Self> {
        if !(t0.is_finite() && p0.is_finite() && typical_slope_c_per_s.is_finite()) {
            return Err(ModelError::BadCalibration {
                reason: "anchor values must be finite".to_string(),
            });
        }
        if typical_slope_c_per_s == 0.0 {
            return Err(ModelError::BadCalibration {
                reason: "typical slope must be non-zero".to_string(),
            });
        }
        Ok(OnePoint {
            slope_c_per_s: typical_slope_c_per_s,
            intercept_c: t0.get() - typical_slope_c_per_s * p0.get(),
        })
    }

    /// Fits from one simulated anchor on `ring`, taking the typical slope
    /// from a *nominal* reference ring (the design-kit model), as a real
    /// production flow would.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation errors and anchor-fit failures.
    pub fn fit_ring(
        ring: &RingOscillator,
        tech: &Technology,
        t0: Celsius,
        nominal_ring: &RingOscillator,
        nominal_tech: &Technology,
        range: TempRange,
    ) -> Result<Self> {
        let p0 = ring.period(tech, t0)?;
        let pa = nominal_ring.period(nominal_tech, range.low())?;
        let pb = nominal_ring.period(nominal_tech, range.high())?;
        let slope = range.span() / (pb.get() - pa.get());
        OnePoint::fit(t0, p0, slope)
    }
}

impl Calibration for OnePoint {
    fn estimate(&self, period: Seconds) -> Celsius {
        Celsius::new(self.intercept_c + self.slope_c_per_s * period.get())
    }

    fn scheme(&self) -> &'static str {
        "one-point"
    }
}

impl fmt::Display for OnePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "one-point calibration ({:.3} °C/ns typical slope)",
            self.slope_c_per_s * 1e-9
        )
    }
}

/// Three-point quadratic calibration: `T = a + b·P + c·P²`.
///
/// A second tester insertion temperature buys a second-order correction
/// that absorbs most of the transfer curve's residual bow — the standard
/// upgrade when two-point linearity is not enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePoint {
    a: f64,
    b: f64,
    c: f64,
}

impl ThreePoint {
    /// Fits the quadratic through three anchor measurements.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadCalibration`] when anchors coincide in
    /// temperature or period, or are not finite.
    pub fn fit(
        t1: Celsius,
        p1: Seconds,
        t2: Celsius,
        p2: Seconds,
        t3: Celsius,
        p3: Seconds,
    ) -> Result<Self> {
        let ts = [t1.get(), t2.get(), t3.get()];
        let ps = [p1.get(), p2.get(), p3.get()];
        if ts.iter().any(|t| !t.is_finite()) || ps.iter().any(|p| !p.is_finite()) {
            return Err(ModelError::BadCalibration {
                reason: "anchor values must be finite".to_string(),
            });
        }
        for i in 0..3 {
            for j in (i + 1)..3 {
                if (ps[i] - ps[j]).abs() < 1e-30 {
                    return Err(ModelError::BadCalibration {
                        reason: "anchor periods coincide; quadratic is underdetermined".to_string(),
                    });
                }
            }
        }
        // Lagrange interpolation through (P, T) pairs, expanded to
        // monomial coefficients. Periods are rescaled to O(1) first to
        // keep the arithmetic well-conditioned (P² of picoseconds is
        // ~1e-19 otherwise).
        let scale = ps.iter().map(|p| p.abs()).fold(f64::MIN_POSITIVE, f64::max);
        let q: Vec<f64> = ps.iter().map(|p| p / scale).collect();
        let mut a = 0.0;
        let mut b = 0.0;
        let mut c = 0.0;
        for i in 0..3 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            let denom = (q[i] - q[j]) * (q[i] - q[k]);
            let w = ts[i] / denom;
            // w·(x − q_j)(x − q_k) = w·x² − w(q_j+q_k)x + w·q_j·q_k
            c += w;
            b -= w * (q[j] + q[k]);
            a += w * q[j] * q[k];
        }
        Ok(ThreePoint {
            a,
            b: b / scale,
            c: c / (scale * scale),
        })
    }

    /// Convenience: fit from a ring model by simulated anchor
    /// measurements at three temperatures.
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation errors and anchor-fit failures.
    pub fn fit_ring(
        ring: &RingOscillator,
        tech: &Technology,
        t1: Celsius,
        t2: Celsius,
        t3: Celsius,
    ) -> Result<Self> {
        let p1 = ring.period(tech, t1)?;
        let p2 = ring.period(tech, t2)?;
        let p3 = ring.period(tech, t3)?;
        ThreePoint::fit(t1, p1, t2, p2, t3, p3)
    }
}

impl Calibration for ThreePoint {
    fn estimate(&self, period: Seconds) -> Celsius {
        let p = period.get();
        Celsius::new(self.a + self.b * p + self.c * p * p)
    }

    fn scheme(&self) -> &'static str {
        "three-point"
    }
}

impl fmt::Display for ThreePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "three-point quadratic calibration")
    }
}

/// Accuracy report of a calibration evaluated against a known transfer
/// curve (simulation ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    temps: Vec<Celsius>,
    errors_c: Vec<f64>,
}

impl CalibrationReport {
    /// Evaluates `cal` over a sampled transfer curve: at every sample the
    /// calibrated estimate is compared with the true temperature.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty (a [`PeriodCurve`] never is).
    pub fn evaluate(cal: &dyn Calibration, curve: &PeriodCurve) -> Self {
        assert!(!curve.is_empty(), "curve must contain samples");
        let mut temps = Vec::with_capacity(curve.len());
        let mut errors_c = Vec::with_capacity(curve.len());
        for (t, p) in curve.iter() {
            temps.push(t);
            errors_c.push(cal.estimate(p).get() - t.get());
        }
        CalibrationReport { temps, errors_c }
    }

    /// Sample temperatures.
    #[inline]
    pub fn temps(&self) -> &[Celsius] {
        &self.temps
    }

    /// Signed estimation error (estimate − truth) at each sample, °C.
    #[inline]
    pub fn errors_celsius(&self) -> &[f64] {
        &self.errors_c
    }

    /// Worst-case |error| in °C.
    pub fn max_abs_celsius(&self) -> f64 {
        self.errors_c.iter().fold(0.0_f64, |m, e| m.max(e.abs()))
    }

    /// Mean signed error in °C.
    pub fn mean_celsius(&self) -> f64 {
        self.errors_c.iter().sum::<f64>() / self.errors_c.len() as f64
    }

    /// Root-mean-square error in °C.
    pub fn rms_celsius(&self) -> f64 {
        let n = self.errors_c.len() as f64;
        (self.errors_c.iter().map(|e| e * e).sum::<f64>() / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};

    fn setup() -> (Technology, RingOscillator) {
        let tech = Technology::um350();
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        (tech, RingOscillator::uniform(g, 5).unwrap())
    }

    #[test]
    fn two_point_exact_at_anchors() {
        let (tech, ring) = setup();
        let (t1, t2) = (Celsius::new(-50.0), Celsius::new(150.0));
        let cal = TwoPoint::fit_ring(&ring, &tech, t1, t2).unwrap();
        let p1 = ring.period(&tech, t1).unwrap();
        let p2 = ring.period(&tech, t2).unwrap();
        assert!((cal.estimate(p1).get() - t1.get()).abs() < 1e-9);
        assert!((cal.estimate(p2).get() - t2.get()).abs() < 1e-9);
        assert_eq!(cal.scheme(), "two-point");
    }

    #[test]
    fn two_point_residual_is_the_nonlinearity() {
        // With endpoint anchors, the calibration error over the range is
        // bounded by the endpoint-INL expressed in °C.
        let (tech, ring) = setup();
        let cal =
            TwoPoint::fit_ring(&ring, &tech, Celsius::new(-50.0), Celsius::new(150.0)).unwrap();
        let curve = ring.period_curve(&tech, TempRange::paper(), 41).unwrap();
        let report = CalibrationReport::evaluate(&cal, &curve);
        // The optimal-ratio ring is very linear: sub-degree accuracy.
        assert!(
            report.max_abs_celsius() < 1.0,
            "max {}",
            report.max_abs_celsius()
        );
        assert!(report.rms_celsius() <= report.max_abs_celsius());
    }

    #[test]
    fn one_point_with_true_slope_matches_two_point_shape() {
        let (tech, ring) = setup();
        let range = TempRange::paper();
        let cal =
            OnePoint::fit_ring(&ring, &tech, Celsius::new(27.0), &ring, &tech, range).unwrap();
        let p27 = ring.period(&tech, Celsius::new(27.0)).unwrap();
        assert!(
            (cal.estimate(p27).get() - 27.0).abs() < 1e-9,
            "exact at the anchor"
        );
        let curve = ring.period_curve(&tech, range, 41).unwrap();
        let report = CalibrationReport::evaluate(&cal, &curve);
        assert!(report.max_abs_celsius() < 2.0);
        assert_eq!(cal.scheme(), "one-point");
    }

    #[test]
    fn one_point_suffers_from_wrong_slope() {
        let (tech, ring) = setup();
        let p27 = ring.period(&tech, Celsius::new(27.0)).unwrap();
        // A slope 10 % off (as an un-recalibrated process shift would give).
        let range = TempRange::paper();
        let pa = ring.period(&tech, range.low()).unwrap();
        let pb = ring.period(&tech, range.high()).unwrap();
        let true_slope = range.span() / (pb.get() - pa.get());
        let cal = OnePoint::fit(Celsius::new(27.0), p27, true_slope * 1.1).unwrap();
        let curve = ring.period_curve(&tech, range, 41).unwrap();
        let report = CalibrationReport::evaluate(&cal, &curve);
        // 10 % slope error over ±~120 °C from the anchor → degrees of error.
        assert!(
            report.max_abs_celsius() > 5.0,
            "max {}",
            report.max_abs_celsius()
        );
    }

    #[test]
    fn degenerate_anchors_rejected() {
        let p = Seconds::from_picos(300.0);
        assert!(TwoPoint::fit(Celsius::new(25.0), p, Celsius::new(25.0), p).is_err());
        assert!(TwoPoint::fit(Celsius::new(25.0), p, Celsius::new(125.0), p).is_err());
        assert!(OnePoint::fit(Celsius::new(25.0), p, 0.0).is_err());
        assert!(TwoPoint::fit(
            Celsius::new(f64::NAN),
            p,
            Celsius::new(125.0),
            Seconds::from_picos(310.0)
        )
        .is_err());
    }

    #[test]
    fn report_statistics_consistent() {
        let (tech, ring) = setup();
        let cal = TwoPoint::fit_ring(&ring, &tech, Celsius::new(0.0), Celsius::new(100.0)).unwrap();
        let curve = ring.period_curve(&tech, TempRange::paper(), 21).unwrap();
        let report = CalibrationReport::evaluate(&cal, &curve);
        assert_eq!(report.temps().len(), report.errors_celsius().len());
        assert!(report.mean_celsius().abs() <= report.max_abs_celsius());
    }

    #[test]
    fn three_point_exact_at_all_anchors() {
        let (tech, ring) = setup();
        let anchors = [Celsius::new(-50.0), Celsius::new(50.0), Celsius::new(150.0)];
        let cal = ThreePoint::fit_ring(&ring, &tech, anchors[0], anchors[1], anchors[2]).unwrap();
        for t in anchors {
            let p = ring.period(&tech, t).unwrap();
            assert!(
                (cal.estimate(p).get() - t.get()).abs() < 1e-6,
                "anchor {t}: {}",
                cal.estimate(p)
            );
        }
        assert_eq!(cal.scheme(), "three-point");
        assert!(format!("{cal}").contains("three-point"));
    }

    #[test]
    fn three_point_beats_two_point_on_the_full_range() {
        // Use a deliberately bowed transfer (ratio 4.0, far from the
        // curvature balance): its residual is dominated by the quadratic
        // term the third anchor removes. (On the curvature-balanced
        // ratio-2 ring the remaining residual is higher-order and the
        // quadratic gains little — that is the point of Fig. 2.)
        let tech = Technology::um350();
        let ring = RingOscillator::uniform(
            crate::gate::Gate::with_ratio(crate::gate::GateKind::Inv, 1e-6, 4.0).unwrap(),
            5,
        )
        .unwrap();
        let range = TempRange::paper();
        let two = TwoPoint::fit_ring(&ring, &tech, range.low(), range.high()).unwrap();
        let three = ThreePoint::fit_ring(&ring, &tech, range.low(), range.midpoint(), range.high())
            .unwrap();
        let curve = ring.period_curve(&tech, range, 41).unwrap();
        let two_err = CalibrationReport::evaluate(&two, &curve).max_abs_celsius();
        let three_err = CalibrationReport::evaluate(&three, &curve).max_abs_celsius();
        assert!(
            three_err < 0.5 * two_err,
            "quadratic {three_err} vs linear {two_err}"
        );
    }

    #[test]
    fn three_point_degenerate_anchors_rejected() {
        let p = Seconds::from_picos(300.0);
        assert!(ThreePoint::fit(
            Celsius::new(0.0),
            p,
            Celsius::new(50.0),
            p,
            Celsius::new(100.0),
            Seconds::from_picos(310.0)
        )
        .is_err());
        assert!(ThreePoint::fit(
            Celsius::new(f64::INFINITY),
            p,
            Celsius::new(50.0),
            Seconds::from_picos(305.0),
            Celsius::new(100.0),
            Seconds::from_picos(310.0)
        )
        .is_err());
    }

    #[test]
    fn displays_mention_scheme() {
        let (tech, ring) = setup();
        let cal = TwoPoint::fit_ring(&ring, &tech, Celsius::new(0.0), Celsius::new(100.0)).unwrap();
        assert!(format!("{cal}").contains("two-point"));
        assert!(cal.slope_c_per_s() > 0.0);
    }
}
