//! Process-variation Monte-Carlo analysis.
//!
//! A production thermal-test flow must work on *every* die, not the
//! nominal one. This module perturbs the technology globally (die-to-die:
//! threshold shifts and drive-strength spread) and each ring stage locally
//! (within-die width mismatch), then evaluates how much accuracy each
//! calibration scheme retains — the Abl-1 ablation of DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibration::{CalibrationReport, OnePoint, TwoPoint};
use crate::error::Result;
use crate::gate::Gate;
use crate::linearity::{FitKind, NonLinearity};
use crate::ring::RingOscillator;
use crate::tech::Technology;
use crate::units::{TempRange, Volts};

/// Standard deviations of the modelled process spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Die-to-die threshold-voltage shift, in volts (1σ).
    pub sigma_vth: f64,
    /// Die-to-die relative drive-constant spread (1σ).
    pub sigma_kdrive_rel: f64,
    /// Within-die relative width mismatch per transistor (1σ).
    pub sigma_width_rel: f64,
}

impl Default for VariationSpec {
    /// Representative 0.35 µm-class spread: 30 mV Vth, 5 % drive,
    /// 2 % local width mismatch.
    fn default() -> Self {
        VariationSpec {
            sigma_vth: 0.030,
            sigma_kdrive_rel: 0.05,
            sigma_width_rel: 0.02,
        }
    }
}

/// Draws one standard-normal variate (Box–Muller; consumes two uniforms).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Returns a copy of `tech` with die-to-die parameter shifts applied.
/// NMOS and PMOS shift independently, as on silicon.
pub fn perturb_technology<R: Rng + ?Sized>(
    tech: &Technology,
    spec: &VariationSpec,
    rng: &mut R,
) -> Technology {
    let mut t = tech.clone();
    t.nmos.vth0 = Volts::new(t.nmos.vth0.get() + spec.sigma_vth * standard_normal(rng));
    t.pmos.vth0 = Volts::new(t.pmos.vth0.get() + spec.sigma_vth * standard_normal(rng));
    t.nmos.k_drive *= 1.0 + spec.sigma_kdrive_rel * standard_normal(rng);
    t.pmos.k_drive *= 1.0 + spec.sigma_kdrive_rel * standard_normal(rng);
    // Keep parameters physical under extreme draws.
    t.nmos.k_drive = t.nmos.k_drive.max(1e-3);
    t.pmos.k_drive = t.pmos.k_drive.max(1e-3);
    t.nmos.vth0 = Volts::new(t.nmos.vth0.get().max(0.05));
    t.pmos.vth0 = Volts::new(t.pmos.vth0.get().max(0.05));
    t
}

/// Returns a copy of `ring` with independent width mismatch applied to
/// every transistor of every stage.
///
/// # Errors
///
/// Propagates gate-construction errors (cannot occur for the clamped
/// perturbations used here, but the signature stays honest).
pub fn perturb_ring<R: Rng + ?Sized>(
    ring: &RingOscillator,
    spec: &VariationSpec,
    rng: &mut R,
) -> Result<RingOscillator> {
    let stages = ring
        .stages()
        .iter()
        .map(|g| {
            let en = (1.0 + spec.sigma_width_rel * standard_normal(rng)).max(0.5);
            let ep = (1.0 + spec.sigma_width_rel * standard_normal(rng)).max(0.5);
            Gate::sized(g.kind(), g.wn() * en, g.wp() * ep)
        })
        .collect::<Result<Vec<_>>>()?;
    RingOscillator::from_stages(stages)
}

/// Outcome of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Oscillation period at the range midpoint, seconds.
    pub period_mid: f64,
    /// Worst-case transfer non-linearity, % of full scale.
    pub max_nl_percent: f64,
    /// Worst-case temperature error after two-point calibration, °C.
    pub two_point_err_c: f64,
    /// Worst-case temperature error after one-point calibration (typical
    /// slope from the *nominal* design model), °C.
    pub one_point_err_c: f64,
}

/// Aggregate statistics of a Monte-Carlo study.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloStudy {
    trials: Vec<TrialOutcome>,
}

impl MonteCarloStudy {
    /// Runs `n` trials of die-to-die + within-die variation on `ring`
    /// under `tech`, evaluating both calibration schemes on each die.
    /// Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation failures (e.g. a pathological draw
    /// turning a device off inside the range).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn run(
        ring: &RingOscillator,
        tech: &Technology,
        spec: &VariationSpec,
        range: TempRange,
        samples: usize,
        n: usize,
        seed: u64,
    ) -> Result<MonteCarloStudy> {
        assert!(n > 0, "need at least one trial");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trials = Vec::with_capacity(n);
        let mid = range.midpoint();
        for _ in 0..n {
            let die_tech = perturb_technology(tech, spec, &mut rng);
            let die_ring = perturb_ring(ring, spec, &mut rng)?;
            let curve = die_ring.period_curve(&die_tech, range, samples)?;
            let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares)?;
            let two = TwoPoint::fit_ring(&die_ring, &die_tech, range.low(), range.high())?;
            let one = OnePoint::fit_ring(&die_ring, &die_tech, mid, ring, tech, range)?;
            let two_report = CalibrationReport::evaluate(&two, &curve);
            let one_report = CalibrationReport::evaluate(&one, &curve);
            trials.push(TrialOutcome {
                period_mid: die_ring.period(&die_tech, mid)?.get(),
                max_nl_percent: nl.max_abs_percent(),
                two_point_err_c: two_report.max_abs_celsius(),
                one_point_err_c: one_report.max_abs_celsius(),
            });
        }
        Ok(MonteCarloStudy { trials })
    }

    /// The individual trial outcomes.
    #[inline]
    pub fn trials(&self) -> &[TrialOutcome] {
        &self.trials
    }

    /// Number of trials.
    #[inline]
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// `true` if the study holds no trials (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    fn stats(&self, f: impl Fn(&TrialOutcome) -> f64) -> (f64, f64) {
        let n = self.trials.len() as f64;
        let mean = self.trials.iter().map(&f).sum::<f64>() / n;
        let var = self
            .trials
            .iter()
            .map(|t| (f(t) - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// Mean and standard deviation of the midpoint period (seconds).
    pub fn period_stats(&self) -> (f64, f64) {
        self.stats(|t| t.period_mid)
    }

    /// Mean and standard deviation of the worst-case non-linearity (%).
    pub fn nl_stats(&self) -> (f64, f64) {
        self.stats(|t| t.max_nl_percent)
    }

    /// Mean and standard deviation of the two-point calibrated error (°C).
    pub fn two_point_stats(&self) -> (f64, f64) {
        self.stats(|t| t.two_point_err_c)
    }

    /// Mean and standard deviation of the one-point calibrated error (°C).
    pub fn one_point_stats(&self) -> (f64, f64) {
        self.stats(|t| t.one_point_err_c)
    }

    /// 95th-percentile of a metric (worst dies matter for test escapes).
    pub fn percentile_95(&self, f: impl Fn(&TrialOutcome) -> f64) -> f64 {
        let mut vals: Vec<f64> = self.trials.iter().map(f).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
        let idx = ((vals.len() as f64) * 0.95).ceil() as usize;
        vals[idx.min(vals.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn setup() -> (Technology, RingOscillator) {
        let tech = Technology::um350();
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        (tech, RingOscillator::uniform(g, 5).unwrap())
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (tech, ring) = setup();
        let spec = VariationSpec::default();
        let a = MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 8, 42).unwrap();
        let b = MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 8, 42).unwrap();
        assert_eq!(a.trials(), b.trials());
        let c = MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 8, 43).unwrap();
        assert_ne!(a.trials(), c.trials(), "different seed, different dies");
    }

    #[test]
    fn perturbation_spreads_the_period() {
        let (tech, ring) = setup();
        let spec = VariationSpec::default();
        let study =
            MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 32, 1).unwrap();
        let (mean, std) = study.period_stats();
        assert!(mean > 0.0);
        assert!(std > 0.0, "process variation must spread the period");
        // Spread is a few percent, not orders of magnitude.
        assert!(std / mean < 0.3, "σ/µ = {}", std / mean);
    }

    #[test]
    fn two_point_calibration_absorbs_process_shift() {
        let (tech, ring) = setup();
        let spec = VariationSpec::default();
        let study =
            MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 21, 24, 7).unwrap();
        let (two_mean, _) = study.two_point_stats();
        let (one_mean, _) = study.one_point_stats();
        // Two-point leaves only the (sub-degree) non-linearity; one-point
        // additionally carries the die's slope error.
        assert!(
            two_mean < one_mean,
            "two-point {two_mean} vs one-point {one_mean}"
        );
        assert!(two_mean < 2.0, "two-point residual stays small: {two_mean}");
    }

    #[test]
    fn zero_sigma_reproduces_nominal() {
        let (tech, ring) = setup();
        let spec = VariationSpec {
            sigma_vth: 0.0,
            sigma_kdrive_rel: 0.0,
            sigma_width_rel: 0.0,
        };
        let study =
            MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 4, 9).unwrap();
        let (_, std) = study.period_stats();
        assert!(std < 1e-18, "no spread without variation");
        let nominal = ring
            .period(&tech, TempRange::paper().midpoint())
            .unwrap()
            .get();
        assert!((study.trials()[0].period_mid - nominal).abs() < 1e-18);
    }

    #[test]
    fn percentile_is_at_least_mean_for_right_skewed_metrics() {
        let (tech, ring) = setup();
        let spec = VariationSpec::default();
        let study =
            MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 11, 32, 5).unwrap();
        let p95 = study.percentile_95(|t| t.one_point_err_c);
        let (mean, _) = study.one_point_stats();
        assert!(p95 >= mean * 0.5, "p95 {p95} vs mean {mean}");
        assert_eq!(study.len(), 32);
        assert!(!study.is_empty());
    }

    #[test]
    fn normal_sampler_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
