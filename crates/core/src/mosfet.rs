//! Analytical MOSFET drive model (Sakurai–Newton alpha-power law).
//!
//! This is the model behind the closed-form gate delays of the sensor: the
//! saturation current that (dis)charges a gate's load capacitance is
//!
//! ```text
//! I_sat(T) = W_eff · k_drive · µrel(T) · (V_DD − Vth(T))^α
//! ```
//!
//! with the temperature dependences of [`crate::tech::DeviceParams`]. Stack
//! effects (series devices in NAND/NOR pull networks) enter through an
//! effective width and a threshold shift, both supplied by the gate layer.

use crate::error::{ModelError, Result};
use crate::tech::{DeviceParams, Polarity};
use crate::units::{Amperes, Celsius, Volts};

/// A width-scaled alpha-power-law transistor (or equivalent stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPowerFet {
    /// Carrier polarity (NMOS pulls down, PMOS pulls up).
    pub polarity: Polarity,
    /// Per-polarity technology parameters.
    pub params: DeviceParams,
    /// Effective electrical width in metres (already includes stack
    /// division / parallel multiplication).
    pub width: f64,
    /// Additional threshold magnitude from body effect in stacked
    /// configurations, in volts (zero for a single device).
    pub vth_shift: Volts,
}

impl AlphaPowerFet {
    /// Creates a single (unstacked) device.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the width is not
    /// positive or the parameter set fails validation.
    pub fn new(polarity: Polarity, params: DeviceParams, width: f64) -> Result<Self> {
        params.validate()?;
        if !(width > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be positive",
            });
        }
        Ok(AlphaPowerFet {
            polarity,
            params,
            width,
            vth_shift: Volts::new(0.0),
        })
    }

    /// Returns a copy with an extra threshold shift (stack body effect).
    #[must_use]
    pub fn with_vth_shift(mut self, shift: Volts) -> Self {
        self.vth_shift = shift;
        self
    }

    /// Returns a copy with a replaced effective width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive — widths come from validated gate
    /// geometry, so a non-positive value is a programming error.
    #[must_use]
    pub fn with_width(mut self, width: f64) -> Self {
        assert!(width > 0.0, "effective width must be positive");
        self.width = width;
        self
    }

    /// Effective threshold magnitude at junction temperature `t`,
    /// including any stack shift.
    #[inline]
    pub fn vth(&self, t: Celsius) -> Volts {
        self.params.vth(t) + self.vth_shift
    }

    /// Gate overdrive `V_DD − Vth(T)` at temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoOverdrive`] when the device would be off
    /// (overdrive ≤ 0) — the ring cannot oscillate there.
    pub fn overdrive(&self, t: Celsius, vdd: Volts) -> Result<Volts> {
        let vov = vdd - self.vth(t);
        if vov.get() <= 0.0 {
            return Err(ModelError::NoOverdrive {
                at_celsius: t.get(),
            });
        }
        Ok(vov)
    }

    /// Saturation drive current at temperature `t` under supply `vdd`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoOverdrive`] when the device is off at `t`.
    pub fn sat_current(&self, t: Celsius, vdd: Volts) -> Result<Amperes> {
        let vov = self.overdrive(t, vdd)?;
        let i = self.width
            * self.params.k_drive
            * self.params.mobility_rel(t)
            * vov.get().powf(self.params.alpha);
        Ok(Amperes::new(i))
    }

    /// Temperature sensitivity of the drive current, `dI/dT` in A/K,
    /// evaluated by analytic differentiation of the alpha-power law.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoOverdrive`] when the device is off at `t`.
    pub fn sat_current_tempco(&self, t: Celsius, vdd: Volts) -> Result<f64> {
        let i = self.sat_current(t, vdd)?.get();
        let vov = self.overdrive(t, vdd)?.get();
        let t_k = t.to_kelvin().get();
        // d ln I / dT = −m/T + α·κ/V_ov   (κ raises overdrive with T).
        let dlni =
            -self.params.mobility_exp / t_k + self.params.alpha * self.params.vth_tempco / vov;
        Ok(i * dlni)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    fn nmos1u() -> AlphaPowerFet {
        let tech = Technology::um350();
        AlphaPowerFet::new(Polarity::Nmos, tech.nmos, 1e-6).expect("valid device")
    }

    #[test]
    fn current_scales_linearly_with_width() {
        let tech = Technology::um350();
        let d1 = nmos1u();
        let d2 = d1.with_width(2e-6);
        let t = Celsius::new(27.0);
        let i1 = d1.sat_current(t, tech.vdd).unwrap().get();
        let i2 = d2.sat_current(t, tech.vdd).unwrap().get();
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drive_magnitude_is_plausible_for_0p35um() {
        // ~1 µm NMOS in 0.35 µm CMOS delivers a few hundred µA.
        let tech = Technology::um350();
        let i = nmos1u()
            .sat_current(Celsius::new(27.0), tech.vdd)
            .unwrap()
            .get();
        assert!(i > 150e-6 && i < 1.5e-3, "got {i}");
    }

    #[test]
    fn mobility_dominates_at_high_supply() {
        // At 3.3 V the overdrive is large, so the mobility roll-off wins and
        // the current *decreases* with temperature.
        let tech = Technology::um350();
        let d = nmos1u();
        let cold = d.sat_current(Celsius::new(-50.0), tech.vdd).unwrap().get();
        let hot = d.sat_current(Celsius::new(150.0), tech.vdd).unwrap().get();
        assert!(cold > hot);
        let slope = d.sat_current_tempco(Celsius::new(27.0), tech.vdd).unwrap();
        assert!(slope < 0.0);
    }

    #[test]
    fn tempco_matches_finite_difference() {
        let tech = Technology::um350();
        let d = nmos1u();
        let t = Celsius::new(40.0);
        let h = 1e-3;
        let num = (d
            .sat_current(Celsius::new(40.0 + h), tech.vdd)
            .unwrap()
            .get()
            - d.sat_current(Celsius::new(40.0 - h), tech.vdd)
                .unwrap()
                .get())
            / (2.0 * h);
        let ana = d.sat_current_tempco(t, tech.vdd).unwrap();
        assert!((num - ana).abs() / ana.abs() < 1e-5, "num={num} ana={ana}");
    }

    #[test]
    fn vth_shift_reduces_current() {
        let tech = Technology::um350();
        let d = nmos1u();
        let shifted = d.with_vth_shift(Volts::new(0.1));
        let t = Celsius::new(27.0);
        assert!(
            shifted.sat_current(t, tech.vdd).unwrap().get()
                < d.sat_current(t, tech.vdd).unwrap().get()
        );
        assert!((shifted.vth(t).get() - d.vth(t).get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn off_device_reports_no_overdrive() {
        let tech = Technology::um350();
        let d = nmos1u().with_vth_shift(Volts::new(5.0));
        let err = d.sat_current(Celsius::new(27.0), tech.vdd).unwrap_err();
        assert!(matches!(err, ModelError::NoOverdrive { .. }));
    }

    #[test]
    fn zero_width_rejected() {
        let tech = Technology::um350();
        assert!(AlphaPowerFet::new(Polarity::Nmos, tech.nmos, 0.0).is_err());
    }
}
