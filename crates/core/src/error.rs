//! Error type shared by the analytical sensor models.

use std::fmt;

/// Errors produced by the analytical model layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A ring-oscillator description was structurally invalid (for example
    /// an even number of inverting stages, which latches instead of
    /// oscillating).
    InvalidRing {
        /// Human-readable reason the ring is rejected.
        reason: String,
    },
    /// A device or technology parameter was out of its physical domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was supplied.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// The transistor would be off over part of the requested temperature
    /// range (gate overdrive fell to zero), so no delay is defined there.
    NoOverdrive {
        /// Temperature at which the overdrive first collapsed, in °C.
        at_celsius: f64,
    },
    /// A numerical fit was requested on insufficient or degenerate data.
    DegenerateFit {
        /// Reason the fit could not be computed.
        reason: String,
    },
    /// A calibration was attempted with unusable anchor points.
    BadCalibration {
        /// Reason the calibration is rejected.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidRing { reason } => {
                write!(f, "invalid ring oscillator: {reason}")
            }
            ModelError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "parameter `{name}` = {value} violates constraint: {constraint}"
                )
            }
            ModelError::NoOverdrive { at_celsius } => {
                write!(
                    f,
                    "gate overdrive collapsed at {at_celsius} °C; device is off"
                )
            }
            ModelError::DegenerateFit { reason } => {
                write!(f, "degenerate fit: {reason}")
            }
            ModelError::BadCalibration { reason } => {
                write!(f, "bad calibration: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::InvalidRing {
            reason: "2 stages".into(),
        };
        assert_eq!(e.to_string(), "invalid ring oscillator: 2 stages");

        let e = ModelError::InvalidParameter {
            name: "alpha",
            value: -1.0,
            constraint: "must be in (0.5, 2.5]",
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("-1"));

        let e = ModelError::NoOverdrive { at_celsius: 150.0 };
        assert!(e.to_string().contains("150"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<ModelError>();
    }
}
