//! Sensitivity, resolution and conversion-time analysis.
//!
//! The smart unit digitizes the ring period by counting a reference clock
//! over a window of `M` oscillation cycles. This module provides the
//! closed-form design equations tying the sensing element (period slope
//! `dP/dT`) to the digital specs a system integrator cares about:
//! temperature resolution per LSB and conversion time. The Abl-2 bench
//! sweeps the window length against these predictions.

use crate::error::{ModelError, Result};
use crate::ring::RingOscillator;
use crate::tech::Technology;
use crate::units::{Celsius, Hertz, Seconds, TempRange};

/// Sensitivity of a ring at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// Period change per kelvin, in s/K.
    pub dp_dt: f64,
    /// Relative sensitivity `(1/P)·dP/dT` per kelvin.
    pub relative_per_k: f64,
    /// Operating period at the evaluation temperature.
    pub period: Seconds,
}

impl Sensitivity {
    /// Evaluates the sensitivity of `ring` at `t` by a centred finite
    /// difference with step `h_kelvin` (default callers use 0.1 K).
    ///
    /// # Errors
    ///
    /// Propagates period-evaluation failures.
    ///
    /// # Panics
    ///
    /// Panics if `h_kelvin` is not positive.
    pub fn at(
        ring: &RingOscillator,
        tech: &Technology,
        t: Celsius,
        h_kelvin: f64,
    ) -> Result<Sensitivity> {
        assert!(h_kelvin > 0.0, "finite-difference step must be positive");
        let p = ring.period(tech, t)?;
        let p_hi = ring.period(tech, Celsius::new(t.get() + h_kelvin))?;
        let p_lo = ring.period(tech, Celsius::new(t.get() - h_kelvin))?;
        let dp_dt = (p_hi.get() - p_lo.get()) / (2.0 * h_kelvin);
        Ok(Sensitivity {
            dp_dt,
            relative_per_k: dp_dt / p.get(),
            period: p,
        })
    }

    /// Period sensitivity expressed in ps/°C — the unit data sheets use.
    #[inline]
    pub fn picos_per_celsius(&self) -> f64 {
        self.dp_dt * 1e12
    }
}

/// Specification of the counting digitizer in the smart unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitizerSpec {
    /// Reference-clock frequency (system clock available on-chip).
    pub ref_clock: Hertz,
    /// Number of ring-oscillator cycles in the measurement window.
    pub window_cycles: u32,
}

impl DigitizerSpec {
    /// Creates a spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a non-positive clock
    /// or an empty window.
    pub fn new(ref_clock: Hertz, window_cycles: u32) -> Result<Self> {
        if !(ref_clock.get() > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "ref_clock",
                value: ref_clock.get(),
                constraint: "reference clock must be positive",
            });
        }
        if window_cycles == 0 {
            return Err(ModelError::InvalidParameter {
                name: "window_cycles",
                value: 0.0,
                constraint: "window must span at least one ring cycle",
            });
        }
        Ok(DigitizerSpec {
            ref_clock,
            window_cycles,
        })
    }

    /// Ideal (un-quantized) count for a given ring period:
    /// `M · P_ring / T_ref`.
    pub fn ideal_count(&self, ring_period: Seconds) -> f64 {
        self.window_cycles as f64 * ring_period.get() * self.ref_clock.get()
    }

    /// The integer count the hardware counter would report.
    pub fn quantized_count(&self, ring_period: Seconds) -> u64 {
        self.ideal_count(ring_period).floor() as u64
    }

    /// Temperature represented by one count LSB, given the sensing
    /// element's period slope: `T_ref / (M · dP/dT)` in °C.
    pub fn resolution_celsius(&self, sensitivity: &Sensitivity) -> f64 {
        1.0 / (self.ref_clock.get() * self.window_cycles as f64 * sensitivity.dp_dt)
    }

    /// Duration of one conversion (the window itself): `M · P_ring`.
    pub fn conversion_time(&self, ring_period: Seconds) -> Seconds {
        ring_period * self.window_cycles as f64
    }

    /// Number of counter bits needed to hold the worst-case (hottest,
    /// longest-period) count without overflow.
    pub fn counter_bits(&self, max_ring_period: Seconds) -> u32 {
        let max_count = self.ideal_count(max_ring_period).ceil() as u64;
        (64 - max_count.leading_zeros()).max(1)
    }
}

/// End-to-end resolution/conversion-time trade-off table across a range
/// of window lengths — the design-space view of the Abl-2 ablation.
///
/// Returns `(window_cycles, resolution °C/LSB, conversion time)` rows.
///
/// # Errors
///
/// Propagates sensitivity-evaluation failures.
pub fn window_tradeoff(
    ring: &RingOscillator,
    tech: &Technology,
    ref_clock: Hertz,
    windows: &[u32],
    range: TempRange,
) -> Result<Vec<(u32, f64, Seconds)>> {
    let mid = range.midpoint();
    let sens = Sensitivity::at(ring, tech, mid, 0.1)?;
    let hot_period = ring.period(tech, range.high())?;
    let mut rows = Vec::with_capacity(windows.len());
    for &m in windows {
        let spec = DigitizerSpec::new(ref_clock, m)?;
        rows.push((
            m,
            spec.resolution_celsius(&sens),
            spec.conversion_time(hot_period),
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};

    fn setup() -> (Technology, RingOscillator) {
        let tech = Technology::um350();
        let g = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
        (tech, RingOscillator::uniform(g, 5).unwrap())
    }

    #[test]
    fn sensitivity_is_positive_and_sub_picosecond_per_kelvin() {
        let (tech, ring) = setup();
        let s = Sensitivity::at(&ring, &tech, Celsius::new(27.0), 0.1).unwrap();
        assert!(s.dp_dt > 0.0, "period must increase with temperature");
        // A ~300 ps ring shifting ~0.1 %/K gives ~0.1–1 ps/K.
        assert!(s.picos_per_celsius() > 0.01 && s.picos_per_celsius() < 10.0);
        assert!(s.relative_per_k > 0.0 && s.relative_per_k < 0.01);
    }

    #[test]
    fn resolution_improves_with_window_length() {
        let (tech, ring) = setup();
        let s = Sensitivity::at(&ring, &tech, Celsius::new(27.0), 0.1).unwrap();
        let clk = Hertz::from_mega(100.0);
        let short = DigitizerSpec::new(clk, 1 << 8).unwrap();
        let long = DigitizerSpec::new(clk, 1 << 12).unwrap();
        let r_short = short.resolution_celsius(&s);
        let r_long = long.resolution_celsius(&s);
        assert!(r_long < r_short);
        assert!(
            (r_short / r_long - 16.0).abs() < 1e-9,
            "resolution scales as 1/M"
        );
    }

    #[test]
    fn conversion_time_scales_with_window() {
        let (tech, ring) = setup();
        let p = ring.period(&tech, Celsius::new(27.0)).unwrap();
        let spec = DigitizerSpec::new(Hertz::from_mega(100.0), 1024).unwrap();
        let tconv = spec.conversion_time(p);
        assert!((tconv.get() / p.get() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn quantized_count_within_one_lsb_of_ideal() {
        let spec = DigitizerSpec::new(Hertz::from_mega(100.0), 4096).unwrap();
        let p = Seconds::from_picos(321.7);
        let ideal = spec.ideal_count(p);
        let q = spec.quantized_count(p) as f64;
        assert!(ideal - q >= 0.0 && ideal - q < 1.0);
    }

    #[test]
    fn counter_bits_hold_worst_case() {
        let spec = DigitizerSpec::new(Hertz::from_mega(100.0), 4096).unwrap();
        let p = Seconds::from_picos(400.0);
        let bits = spec.counter_bits(p);
        let max_count = spec.ideal_count(p).ceil() as u64;
        assert!(max_count < (1u64 << bits));
        assert!(bits == 1 || max_count >= (1u64 << (bits - 1)));
    }

    #[test]
    fn tradeoff_rows_are_consistent() {
        let (tech, ring) = setup();
        let rows = window_tradeoff(
            &ring,
            &tech,
            Hertz::from_mega(100.0),
            &[64, 256, 1024, 4096],
            TempRange::paper(),
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[1].1 < w[0].1, "finer resolution with longer window");
            assert!(
                w[1].2.get() > w[0].2.get(),
                "longer conversion with longer window"
            );
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(DigitizerSpec::new(Hertz::new(0.0), 16).is_err());
        assert!(DigitizerSpec::new(Hertz::from_mega(100.0), 0).is_err());
    }
}
