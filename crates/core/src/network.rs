//! Pull-network topologies as series/parallel expression trees.
//!
//! Simple NAND/NOR cells need only "k in series" / "k in parallel", but
//! the standard-cell style the paper advocates offers richer inverting
//! cells — AOI/OAI complex gates — whose pull networks mix both. A
//! [`PullNetwork`] describes any such series/parallel composition of
//! unit transistors; the gate layer reduces it to an equivalent device
//! (effective width + worst-case stack threshold shift) and the
//! transistor-level layer emits it verbatim.

use crate::error::{ModelError, Result};

/// A series/parallel composition of unit-width transistors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PullNetwork {
    /// A single transistor of the cell's unit width.
    Device,
    /// Children conducting in series (all must be on).
    Series(Vec<PullNetwork>),
    /// Children conducting in parallel (any may conduct; with tied
    /// inputs they all switch together).
    Parallel(Vec<PullNetwork>),
}

impl PullNetwork {
    /// A chain of `k` series transistors (NAND pull-down, NOR pull-up).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn series_chain(k: usize) -> Self {
        assert!(k > 0, "a network needs at least one device");
        if k == 1 {
            PullNetwork::Device
        } else {
            PullNetwork::Series(vec![PullNetwork::Device; k])
        }
    }

    /// A bank of `k` parallel transistors (NAND pull-up, NOR pull-down).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn parallel_bank(k: usize) -> Self {
        assert!(k > 0, "a network needs at least one device");
        if k == 1 {
            PullNetwork::Device
        } else {
            PullNetwork::Parallel(vec![PullNetwork::Device; k])
        }
    }

    /// Validates the tree: every composite node must have ≥ 2 children
    /// (singleton composites should be collapsed) and subtrees must be
    /// valid.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for degenerate nodes.
    pub fn validate(&self) -> Result<()> {
        match self {
            PullNetwork::Device => Ok(()),
            PullNetwork::Series(children) | PullNetwork::Parallel(children) => {
                if children.len() < 2 {
                    return Err(ModelError::InvalidParameter {
                        name: "pull network",
                        value: children.len() as f64,
                        constraint: "composite nodes need at least 2 children",
                    });
                }
                children.iter().try_for_each(PullNetwork::validate)
            }
        }
    }

    /// Number of transistors in the network.
    pub fn device_count(&self) -> usize {
        match self {
            PullNetwork::Device => 1,
            PullNetwork::Series(c) | PullNetwork::Parallel(c) => {
                c.iter().map(PullNetwork::device_count).sum()
            }
        }
    }

    /// The deepest series path (number of stacked devices between the
    /// output and the rail) — sets the body-effect threshold shift.
    pub fn max_stack_depth(&self) -> usize {
        match self {
            PullNetwork::Device => 1,
            PullNetwork::Series(c) => c.iter().map(PullNetwork::max_stack_depth).sum(),
            PullNetwork::Parallel(c) => c
                .iter()
                .map(PullNetwork::max_stack_depth)
                .max()
                .unwrap_or(1),
        }
    }

    /// The dual network (series ↔ parallel): a CMOS gate's pull-up is
    /// the dual of its pull-down.
    pub fn dual(&self) -> PullNetwork {
        match self {
            PullNetwork::Device => PullNetwork::Device,
            PullNetwork::Series(c) => {
                PullNetwork::Parallel(c.iter().map(PullNetwork::dual).collect())
            }
            PullNetwork::Parallel(c) => {
                PullNetwork::Series(c.iter().map(PullNetwork::dual).collect())
            }
        }
    }

    /// Conductance of the network relative to one unit device (pure
    /// series/parallel composition, no stack correction).
    pub fn relative_conductance(&self) -> f64 {
        match self {
            PullNetwork::Device => 1.0,
            PullNetwork::Series(c) => {
                1.0 / c
                    .iter()
                    .map(|n| 1.0 / n.relative_conductance())
                    .sum::<f64>()
            }
            PullNetwork::Parallel(c) => c.iter().map(PullNetwork::relative_conductance).sum(),
        }
    }

    /// Effective electrical width of the network for unit-device width
    /// `w`, including the stack resistance penalty
    /// `1 / (1 + stack_res_factor · (depth − 1))` applied for the
    /// deepest series path.
    pub fn effective_width(&self, w: f64, stack_res_factor: f64) -> f64 {
        let depth = self.max_stack_depth() as f64;
        w * self.relative_conductance() / (1.0 + stack_res_factor * (depth - 1.0))
    }

    /// Number of device drains electrically connected to the output node
    /// (the side the network is attached to): sets the junction
    /// parasitic on the cell output.
    pub fn output_drain_count(&self) -> usize {
        match self {
            PullNetwork::Device => 1,
            // Only the first series element touches the output.
            PullNetwork::Series(c) => c.first().map_or(0, PullNetwork::output_drain_count),
            PullNetwork::Parallel(c) => c.iter().map(PullNetwork::output_drain_count).sum(),
        }
    }
}

impl std::fmt::Display for PullNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullNetwork::Device => write!(f, "D"),
            PullNetwork::Series(c) => {
                write!(f, "(")?;
                for (i, n) in c.iter().enumerate() {
                    if i > 0 {
                        write!(f, "-")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
            PullNetwork::Parallel(c) => {
                write!(f, "[")?;
                for (i, n) in c.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_and_banks_collapse_singletons() {
        assert_eq!(PullNetwork::series_chain(1), PullNetwork::Device);
        assert_eq!(PullNetwork::parallel_bank(1), PullNetwork::Device);
        assert_eq!(PullNetwork::series_chain(3).device_count(), 3);
        assert_eq!(PullNetwork::parallel_bank(4).device_count(), 4);
    }

    #[test]
    fn conductance_composition() {
        assert!((PullNetwork::Device.relative_conductance() - 1.0).abs() < 1e-12);
        assert!((PullNetwork::series_chain(2).relative_conductance() - 0.5).abs() < 1e-12);
        assert!((PullNetwork::parallel_bank(3).relative_conductance() - 3.0).abs() < 1e-12);
        // AOI21 pull-down: (A·B) ∥ C → series-2 parallel a device.
        let aoi_pd = PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device]);
        assert!((aoi_pd.relative_conductance() - 1.5).abs() < 1e-12);
        // Its dual (the pull-up): (A∥B) in series with C.
        let aoi_pu = aoi_pd.dual();
        assert!((aoi_pu.relative_conductance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn depth_and_drains() {
        let aoi_pd = PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device]);
        assert_eq!(aoi_pd.max_stack_depth(), 2);
        assert_eq!(
            aoi_pd.output_drain_count(),
            2,
            "stack top + the lone device"
        );
        let aoi_pu = aoi_pd.dual();
        assert_eq!(aoi_pu.max_stack_depth(), 2);
        assert_eq!(
            aoi_pu.output_drain_count(),
            2,
            "both parallel devices at the top"
        );
        assert_eq!(PullNetwork::series_chain(4).max_stack_depth(), 4);
        assert_eq!(PullNetwork::series_chain(4).output_drain_count(), 1);
    }

    #[test]
    fn effective_width_matches_legacy_formulas() {
        // Series(k): w / (k·(1 + srf·(k−1))).
        let srf = 0.12;
        for k in 1..=4usize {
            let net = PullNetwork::series_chain(k);
            let expect = 1e-6 / (k as f64 * (1.0 + srf * (k as f64 - 1.0)));
            assert!(
                (net.effective_width(1e-6, srf) - expect).abs() < 1e-18,
                "k={k}"
            );
        }
        // Parallel(k): k·w, no penalty.
        let net = PullNetwork::parallel_bank(3);
        assert!((net.effective_width(1e-6, srf) - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn dual_is_involutive() {
        let aoi_pd = PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device]);
        assert_eq!(aoi_pd.dual().dual(), aoi_pd);
    }

    #[test]
    fn validation_rejects_singleton_composites() {
        assert!(PullNetwork::Series(vec![PullNetwork::Device])
            .validate()
            .is_err());
        assert!(PullNetwork::Parallel(vec![]).validate().is_err());
        let good = PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device]);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn display_is_compact() {
        let aoi_pd = PullNetwork::Parallel(vec![PullNetwork::series_chain(2), PullNetwork::Device]);
        assert_eq!(format!("{aoi_pd}"), "[(D-D)|D]");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_chain_rejected() {
        let _ = PullNetwork::series_chain(0);
    }
}
