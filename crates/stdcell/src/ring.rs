//! Transistor-level ring oscillators built from standard cells.
//!
//! This is the simulation path of the paper's Fig. 1: the ring is a real
//! circuit of Level-1 MOSFETs (including NAND/NOR stack internals) solved
//! by [`spicelite`]'s transient engine, and the period is measured from
//! interpolated threshold crossings — exactly how one would measure an
//! HSPICE run.

use spicelite::circuit::Circuit;
use spicelite::devices::MosModel;
use spicelite::error::{Result, SimError};
use spicelite::transient::{run_transient, TranOptions};
use spicelite::waveform::Waveform;
use tsense_core::gate::GateKind;

use crate::cells::{emit_cell, CellSizing};

/// A ring-oscillator description ready to be elaborated at any
/// temperature.
#[derive(Debug, Clone)]
pub struct TransistorRing {
    kinds: Vec<GateKind>,
    sizing: CellSizing,
    nmos: MosModel,
    pmos: MosModel,
    vdd: f64,
}

impl TransistorRing {
    /// Creates a ring of the given stage kinds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] when the stage count is even or
    /// below 3 (the chain would latch).
    pub fn new(
        kinds: Vec<GateKind>,
        sizing: CellSizing,
        nmos: MosModel,
        pmos: MosModel,
        vdd: f64,
    ) -> Result<Self> {
        if kinds.len() < 3 || kinds.len().is_multiple_of(2) {
            return Err(SimError::InvalidDevice {
                device: "ring".to_string(),
                reason: format!(
                    "{} stages cannot oscillate; need an odd count ≥ 3",
                    kinds.len()
                ),
            });
        }
        Ok(TransistorRing {
            kinds,
            sizing,
            nmos,
            pmos,
            vdd,
        })
    }

    /// A uniform `n`-stage ring (the Fig. 1/2 setup).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransistorRing::new`].
    pub fn uniform(
        kind: GateKind,
        n: usize,
        sizing: CellSizing,
        nmos: MosModel,
        pmos: MosModel,
        vdd: f64,
    ) -> Result<Self> {
        TransistorRing::new(vec![kind; n], sizing, nmos, pmos, vdd)
    }

    /// Stage count.
    #[inline]
    pub fn stage_count(&self) -> usize {
        self.kinds.len()
    }

    /// Supply voltage.
    #[inline]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Elaborates the ring into a circuit at junction temperature
    /// `temp_c`, with alternating initial conditions as the oscillation
    /// kick. Stage outputs are nodes `n0 … n<N-1>`.
    ///
    /// # Errors
    ///
    /// Propagates device-construction failures.
    pub fn elaborate(&self, temp_c: f64) -> Result<Circuit> {
        let mut ckt = Circuit::new();
        ckt.set_temperature(temp_c);
        let vdd = ckt.node("vdd");
        ckt.add_vsource(
            "VDD",
            vdd,
            Circuit::GROUND,
            spicelite::devices::Stimulus::Dc(self.vdd),
        )?;
        let n = self.kinds.len();
        for (i, &kind) in self.kinds.iter().enumerate() {
            let input = ckt.node(&format!("n{i}"));
            let output = ckt.node(&format!("n{}", (i + 1) % n));
            emit_cell(
                &mut ckt,
                kind,
                &format!("U{i}"),
                input,
                output,
                vdd,
                self.sizing,
                &self.nmos,
                &self.pmos,
            )?;
        }
        for i in 0..n {
            let node = ckt.find_node(&format!("n{i}"))?;
            ckt.set_initial_condition(node, if i % 2 == 0 { 0.0 } else { self.vdd });
        }
        Ok(ckt)
    }

    /// Runs a transient of `t_stop` seconds at `temp_c` and returns the
    /// recorded waveform (node `n0` is the conventional probe).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn simulate(&self, temp_c: f64, t_stop: f64, dt: f64) -> Result<Waveform> {
        let ckt = self.elaborate(temp_c)?;
        let opts = TranOptions::to_time(t_stop).with_uic().with_steps(dt, dt);
        run_transient(&ckt, &opts)
    }

    /// Measures the steady-state oscillation period at `temp_c`.
    ///
    /// The simulation horizon starts at an internally estimated guess and
    /// doubles (up to four times) until enough threshold crossings exist
    /// for a confident average: the first two crossings are discarded as
    /// start-up transient.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Measurement`] if the ring never produces
    /// enough crossings (it is not oscillating), or propagates solver
    /// failures.
    pub fn measure_period(&self, temp_c: f64) -> Result<f64> {
        // Rough period estimate from the Level-1 saturation current to
        // pick the horizon and step: t ≈ N · C_node·V / I_on per edge pair.
        let c_node = (self.nmos.cg_per_width * self.sizing.wn
            + self.pmos.cg_per_width * self.sizing.wp)
            * 2.5;
        let i_on = 0.5
            * self.nmos.kp
            * (self.sizing.wn / self.sizing.l)
            * (self.vdd - self.nmos.vto).powi(2);
        let est = (self.kinds.len() as f64) * 2.0 * c_node * self.vdd / i_on;
        // ~25 oscillation periods with ~100 points per period: the period
        // is averaged over many cycles, so crossing-interpolation noise
        // stays far below the non-linearity signal being measured.
        let mut t_stop = (est * 25.0).max(0.5e-9);
        let threshold = 0.5 * self.vdd;
        for _attempt in 0..4 {
            let dt = (t_stop / 4000.0).min(est / 100.0);
            let wave = self.simulate(temp_c, t_stop, dt)?;
            match wave.period("n0", threshold, 3) {
                Ok(p) => return Ok(p),
                Err(SimError::Measurement { .. }) => t_stop *= 2.0,
                Err(e) => return Err(e),
            }
        }
        Err(SimError::Measurement {
            message: format!(
                "ring did not produce enough oscillation cycles within {t_stop:.3e} s at {temp_c} °C"
            ),
        })
    }

    /// Measures the period at each listed temperature — the
    /// transistor-level equivalent of the analytical
    /// `RingOscillator::period_curve`.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn period_curve(&self, temps_c: &[f64]) -> Result<Vec<(f64, f64)>> {
        temps_c
            .iter()
            .map(|&t| self.measure_period(t).map(|p| (t, p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spicelite::devices::models_um350;

    fn ring(kind: GateKind, n: usize, ratio: f64) -> TransistorRing {
        let (nmos, pmos) = models_um350();
        TransistorRing::uniform(kind, n, CellSizing::um350(ratio), nmos, pmos, 3.3).unwrap()
    }

    #[test]
    fn even_ring_rejected() {
        let (nmos, pmos) = models_um350();
        assert!(
            TransistorRing::uniform(GateKind::Inv, 4, CellSizing::um350(2.0), nmos, pmos, 3.3)
                .is_err()
        );
    }

    #[test]
    fn five_stage_inverter_ring_oscillates_rail_to_rail() {
        let r = ring(GateKind::Inv, 5, 2.0);
        let wave = r.simulate(27.0, 1.5e-9, 1e-12).unwrap();
        let (lo, hi) = wave.extrema("n0").unwrap();
        assert!(lo < 0.4, "swings low: {lo}");
        assert!(hi > 2.9, "swings high: {hi}");
        let p = wave.period("n0", 1.65, 2).unwrap();
        assert!(p > 30e-12 && p < 1e-9, "period {p}");
    }

    #[test]
    fn period_measurement_is_stable() {
        let r = ring(GateKind::Inv, 5, 2.0);
        let p1 = r.measure_period(27.0).unwrap();
        let p2 = r.measure_period(27.0).unwrap();
        assert!((p1 - p2).abs() / p1 < 1e-9, "deterministic: {p1} vs {p2}");
    }

    #[test]
    fn period_increases_with_temperature() {
        let r = ring(GateKind::Inv, 5, 2.0);
        let curve = r.period_curve(&[-50.0, 27.0, 150.0]).unwrap();
        assert!(curve[0].1 < curve[1].1, "cold faster: {:?}", curve);
        assert!(curve[1].1 < curve[2].1, "hot slower: {:?}", curve);
    }

    #[test]
    fn nand_ring_slower_than_inverter_ring() {
        let inv = ring(GateKind::Inv, 3, 2.0).measure_period(27.0).unwrap();
        let nand = ring(GateKind::Nand2, 3, 2.0).measure_period(27.0).unwrap();
        assert!(
            nand > inv,
            "stacked pull-down + extra load: {nand} vs {inv}"
        );
    }

    #[test]
    fn more_stages_longer_period() {
        let p3 = ring(GateKind::Inv, 3, 2.0).measure_period(27.0).unwrap();
        let p5 = ring(GateKind::Inv, 5, 2.0).measure_period(27.0).unwrap();
        let ratio = p5 / p3;
        assert!(ratio > 1.4 && ratio < 2.0, "≈5/3 expected, got {ratio}");
    }

    #[test]
    fn mixed_ring_elaborates_and_runs() {
        let (nmos, pmos) = models_um350();
        let r = TransistorRing::new(
            vec![
                GateKind::Inv,
                GateKind::Nand3,
                GateKind::Inv,
                GateKind::Nand3,
                GateKind::Inv,
            ],
            CellSizing::um350(2.0),
            nmos,
            pmos,
            3.3,
        )
        .unwrap();
        assert_eq!(r.stage_count(), 5);
        let p = r.measure_period(27.0).unwrap();
        assert!(p > 30e-12 && p < 2e-9, "period {p}");
    }
}
