//! # stdcell — transistor-level standard cells for sensor rings
//!
//! This crate is the bridge between the analytical models of
//! [`tsense_core`] and the circuit simulator [`spicelite`]: it emits the
//! paper's inverting cells (INV, NAND2-4, NOR2-4, all inputs tied) as
//! real transistor topologies, builds transistor-level ring oscillators
//! from them, and characterizes their delays over temperature.
//!
//! * [`cells`] — transistor topologies (series stacks with real internal
//!   nodes, parallel banks) and SPICE subckt export;
//! * [`ring`] — elaborate + simulate + measure ring oscillators;
//! * [`mod@characterize`] — `t_PHL`/`t_PLH` extraction benches and
//!   temperature-indexed timing tables;
//! * [`library`] — the bundled 0.35 µm library;
//! * [`liberty`] — Liberty-flavoured timing-library export/import for
//!   caching characterization results;
//! * [`variation_sim`] — transistor-level Monte-Carlo, cross-validated
//!   against the analytical variation model.
//!
//! ```
//! use stdcell::library::CellLibrary;
//! use tsense_core::gate::GateKind;
//!
//! let lib = CellLibrary::um350(2.0);
//! let ring = lib.uniform_ring(GateKind::Inv, 5)?;
//! let period = ring.measure_period(27.0)?;
//! assert!(period > 10e-12 && period < 2e-9);
//! # Ok::<(), spicelite::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod characterize;
pub mod liberty;
pub mod library;
pub mod ring;
pub mod variation_sim;

pub use cells::{drive_budget, emit_cell, CellSizing};
pub use characterize::{characterize, DelayBounds, DelayPair, TimingTable};
pub use liberty::{from_liberty, to_liberty, TimingLibrary};
pub use library::CellLibrary;
pub use ring::TransistorRing;
pub use variation_sim::{SimMonteCarlo, SimVariationSpec};
