//! Transistor-level Monte-Carlo: process variation on the simulated
//! ring.
//!
//! The analytical layer's Monte Carlo (`tsense_core::variation`)
//! perturbs alpha-power parameters; this module perturbs the Level-1
//! model cards and the cell widths of the *simulated* ring and measures
//! the resulting period spread. The two paths are cross-validated in the
//! tests: same relative period spread to within a factor of two.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spicelite::devices::MosModel;
use spicelite::error::Result;
use tsense_core::gate::GateKind;

use crate::cells::CellSizing;
use crate::library::CellLibrary;
use crate::ring::TransistorRing;

/// Standard deviations of the simulated process spread (die-to-die).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimVariationSpec {
    /// Threshold-voltage shift, volts (1σ), applied independently per
    /// polarity.
    pub sigma_vto: f64,
    /// Relative transconductance spread (1σ).
    pub sigma_kp_rel: f64,
    /// Relative cell-width spread (1σ), applied to the whole die's
    /// sizing (within-die mismatch is below this model's resolution).
    pub sigma_width_rel: f64,
}

impl Default for SimVariationSpec {
    /// Matches the analytical default: 30 mV Vth, 5 % drive, 2 % width.
    fn default() -> Self {
        SimVariationSpec {
            sigma_vto: 0.030,
            sigma_kp_rel: 0.05,
            sigma_width_rel: 0.02,
        }
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Returns perturbed copies of the model cards for one die.
pub fn perturb_models<R: Rng + ?Sized>(
    nmos: &MosModel,
    pmos: &MosModel,
    spec: &SimVariationSpec,
    rng: &mut R,
) -> (MosModel, MosModel) {
    let mut n = nmos.clone();
    let mut p = pmos.clone();
    n.vto = (n.vto + spec.sigma_vto * standard_normal(rng)).max(0.05);
    p.vto = (p.vto + spec.sigma_vto * standard_normal(rng)).max(0.05);
    n.kp *= (1.0 + spec.sigma_kp_rel * standard_normal(rng)).max(0.2);
    p.kp *= (1.0 + spec.sigma_kp_rel * standard_normal(rng)).max(0.2);
    (n, p)
}

/// Outcome of a transistor-level Monte-Carlo period study.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMonteCarlo {
    periods: Vec<f64>,
}

impl SimMonteCarlo {
    /// Runs `n` die samples of a uniform `stages`-stage ring of `kind`
    /// cells from `lib`, measuring the oscillation period at `temp_c`
    /// per die. Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Propagates simulation/measurement failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn run(
        lib: &CellLibrary,
        kind: GateKind,
        stages: usize,
        temp_c: f64,
        spec: &SimVariationSpec,
        n: usize,
        seed: u64,
    ) -> Result<Self> {
        assert!(n > 0, "need at least one die");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut periods = Vec::with_capacity(n);
        for _ in 0..n {
            let (nmos, pmos) = perturb_models(&lib.nmos, &lib.pmos, spec, &mut rng);
            let scale = (1.0 + spec.sigma_width_rel * standard_normal(&mut rng)).max(0.5);
            let sizing = CellSizing {
                wn: lib.sizing.wn * scale,
                wp: lib.sizing.wp * scale,
                l: lib.sizing.l,
            };
            let ring = TransistorRing::uniform(kind, stages, sizing, nmos, pmos, lib.vdd)?;
            periods.push(ring.measure_period(temp_c)?);
        }
        Ok(SimMonteCarlo { periods })
    }

    /// Measured per-die periods, seconds.
    #[inline]
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// Mean and standard deviation of the period.
    pub fn stats(&self) -> (f64, f64) {
        let n = self.periods.len() as f64;
        let mean = self.periods.iter().sum::<f64>() / n;
        let var = self.periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsense_core::gate::Gate;
    use tsense_core::ring::RingOscillator;
    use tsense_core::units::TempRange;
    use tsense_core::variation::{MonteCarloStudy, VariationSpec};

    #[test]
    fn deterministic_by_seed() {
        let lib = CellLibrary::um350(2.0);
        let spec = SimVariationSpec::default();
        let a = SimMonteCarlo::run(&lib, GateKind::Inv, 3, 27.0, &spec, 4, 11).unwrap();
        let b = SimMonteCarlo::run(&lib, GateKind::Inv, 3, 27.0, &spec, 4, 11).unwrap();
        assert_eq!(a.periods(), b.periods());
    }

    #[test]
    fn zero_sigma_collapses_the_spread() {
        let lib = CellLibrary::um350(2.0);
        let spec = SimVariationSpec {
            sigma_vto: 0.0,
            sigma_kp_rel: 0.0,
            sigma_width_rel: 0.0,
        };
        let mc = SimMonteCarlo::run(&lib, GateKind::Inv, 3, 27.0, &spec, 3, 5).unwrap();
        let (mean, std) = mc.stats();
        assert!(mean > 0.0);
        assert!(std / mean < 1e-9, "σ/µ = {}", std / mean);
    }

    #[test]
    fn simulated_spread_matches_the_analytical_monte_carlo() {
        // Both layers model the same silicon spread, so their relative
        // period sigma must agree within a factor of two.
        let lib = CellLibrary::um350(2.0);
        let sim = SimMonteCarlo::run(
            &lib,
            GateKind::Inv,
            5,
            50.0,
            &SimVariationSpec::default(),
            16,
            2005,
        )
        .unwrap();
        let (sim_mean, sim_std) = sim.stats();
        let sim_rel = sim_std / sim_mean;

        let tech = lib.analytical_technology();
        let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap(), 5)
            .unwrap();
        let ana = MonteCarloStudy::run(
            &ring,
            &tech,
            &VariationSpec::default(),
            TempRange::paper(),
            5,
            32,
            2005,
        )
        .unwrap();
        let (ana_mean, ana_std) = ana.period_stats();
        let ana_rel = ana_std / ana_mean;

        assert!(
            sim_rel / ana_rel > 0.5 && sim_rel / ana_rel < 2.0,
            "relative spreads: simulated {sim_rel:.4} vs analytical {ana_rel:.4}"
        );
    }
}
