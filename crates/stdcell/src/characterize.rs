//! Standard-cell timing characterization.
//!
//! A classic library-characterization bench: a pulse source drives the
//! cell under test, which drives an identical-cell load (fan-out of 1,
//! the situation inside a sensor ring). Propagation delays are measured
//! between the 50 % crossings of input and output, per edge:
//!
//! * `t_PHL`: input rises → output falls (pull-down network timing);
//! * `t_PLH`: input falls → output rises (pull-up network timing).
//!
//! Sweeping temperature yields a [`TimingTable`] — the transistor-level
//! ground truth the analytical models in `tsense-core` are validated
//! against.

use spicelite::circuit::Circuit;
use spicelite::devices::{MosModel, Stimulus};
use spicelite::error::{Result, SimError};
use spicelite::transient::{run_transient, TranOptions};
use tsense_core::gate::GateKind;

use crate::cells::{emit_cell, CellSizing};

/// Measured propagation delays of one cell at one temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPair {
    /// High-to-low propagation delay, seconds.
    pub tphl: f64,
    /// Low-to-high propagation delay, seconds.
    pub tplh: f64,
}

impl DelayPair {
    /// `t_PHL + t_PLH` — the per-stage contribution to a ring period.
    #[inline]
    pub fn pair_sum(&self) -> f64 {
        self.tphl + self.tplh
    }
}

/// A temperature-indexed delay table for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingTable {
    /// The characterized cell.
    pub kind: GateKind,
    /// Sample temperatures, °C, ascending.
    pub temps_c: Vec<f64>,
    /// Delay pair at each temperature.
    pub delays: Vec<DelayPair>,
}

impl TimingTable {
    /// Linear interpolation of the delay pair at `temp_c` (clamped to
    /// the characterized span).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (characterization always yields at
    /// least one row).
    pub fn lookup(&self, temp_c: f64) -> DelayPair {
        assert!(!self.temps_c.is_empty(), "table must not be empty");
        if temp_c <= self.temps_c[0] {
            return self.delays[0];
        }
        if temp_c >= *self.temps_c.last().expect("non-empty") {
            return *self.delays.last().expect("non-empty");
        }
        let idx = self.temps_c.partition_point(|&t| t < temp_c);
        let (t0, t1) = (self.temps_c[idx - 1], self.temps_c[idx]);
        let (d0, d1) = (self.delays[idx - 1], self.delays[idx]);
        let f = (temp_c - t0) / (t1 - t0);
        DelayPair {
            tphl: d0.tphl + f * (d1.tphl - d0.tphl),
            tplh: d0.tplh + f * (d1.tplh - d0.tplh),
        }
    }

    /// Exact bounds of the interpolated delays over `[lo_c, hi_c]`.
    ///
    /// The table is piecewise-linear in temperature, so every extremum
    /// over the range is attained either at an interpolated range
    /// endpoint or at an interior breakpoint; the hull over those
    /// candidates is exact, not an approximation. Consumers performing
    /// interval analysis (e.g. `netcheck certify`) can use these bounds
    /// directly as a sound abstraction of `lookup` over the range.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, either bound is non-finite, or
    /// `lo_c > hi_c`.
    pub fn delay_interval(&self, lo_c: f64, hi_c: f64) -> DelayBounds {
        assert!(
            lo_c.is_finite() && hi_c.is_finite() && lo_c <= hi_c,
            "invalid temperature range [{lo_c}, {hi_c}]"
        );
        let mut bounds = DelayBounds::of(self.lookup(lo_c));
        bounds.cover(self.lookup(hi_c));
        for (i, &t) in self.temps_c.iter().enumerate() {
            if t > lo_c && t < hi_c {
                bounds.cover(self.delays[i]);
            }
        }
        bounds
    }
}

/// Per-edge delay bounds over a temperature range, from
/// [`TimingTable::delay_interval`]. Each field is `(min, max)` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBounds {
    /// Bounds on `t_PHL`.
    pub tphl: (f64, f64),
    /// Bounds on `t_PLH`.
    pub tplh: (f64, f64),
    /// Bounds on `t_PHL + t_PLH` (the per-stage ring contribution).
    pub pair_sum: (f64, f64),
}

impl DelayBounds {
    /// Degenerate bounds enclosing exactly one sample.
    fn of(d: DelayPair) -> Self {
        DelayBounds {
            tphl: (d.tphl, d.tphl),
            tplh: (d.tplh, d.tplh),
            pair_sum: (d.pair_sum(), d.pair_sum()),
        }
    }

    /// Widens each bound just enough to enclose `d`.
    fn cover(&mut self, d: DelayPair) {
        let grow = |b: &mut (f64, f64), v: f64| {
            b.0 = b.0.min(v);
            b.1 = b.1.max(v);
        };
        grow(&mut self.tphl, d.tphl);
        grow(&mut self.tplh, d.tplh);
        grow(&mut self.pair_sum, d.pair_sum());
    }

    /// `true` when `d` lies inside every bound.
    pub fn encloses(&self, d: DelayPair) -> bool {
        self.tphl.0 <= d.tphl
            && d.tphl <= self.tphl.1
            && self.tplh.0 <= d.tplh
            && d.tplh <= self.tplh.1
            && self.pair_sum.0 <= d.pair_sum()
            && d.pair_sum() <= self.pair_sum.1
    }
}

/// Characterization bench configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizeOptions {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Input edge rise/fall time, seconds.
    pub edge_time: f64,
    /// Settling time before the measured edges, seconds.
    pub settle: f64,
    /// Transient step, seconds.
    pub dt: f64,
}

impl Default for CharacterizeOptions {
    /// Defaults sized for 0.35 µm cells: 3.3 V, 50 ps edges, 2 ns settle.
    fn default() -> Self {
        CharacterizeOptions {
            vdd: 3.3,
            edge_time: 50e-12,
            settle: 2e-9,
            dt: 1e-12,
        }
    }
}

/// Measures the delay pair of `kind` at one temperature.
///
/// # Errors
///
/// Returns [`SimError::Measurement`] when an expected edge is missing
/// (cell not switching), or propagates solver failures.
pub fn measure_delays(
    kind: GateKind,
    sizing: CellSizing,
    nmos: &MosModel,
    pmos: &MosModel,
    temp_c: f64,
    opts: &CharacterizeOptions,
) -> Result<DelayPair> {
    let mut ckt = Circuit::new();
    ckt.set_temperature(temp_c);
    let vdd = ckt.node("vdd");
    let input = ckt.node("in");
    let out = ckt.node("out");
    let load_out = ckt.node("load_out");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(opts.vdd))?;
    // One full pulse: rise at `settle`, fall at `2·settle`.
    ckt.add_vsource(
        "VIN",
        input,
        Circuit::GROUND,
        Stimulus::Pulse {
            v1: 0.0,
            v2: opts.vdd,
            delay: opts.settle,
            rise: opts.edge_time,
            fall: opts.edge_time,
            width: opts.settle,
            period: 0.0,
        },
    )?;
    emit_cell(&mut ckt, kind, "DUT", input, out, vdd, sizing, nmos, pmos)?;
    emit_cell(
        &mut ckt, kind, "LOAD", out, load_out, vdd, sizing, nmos, pmos,
    )?;

    let t_stop = 3.0 * opts.settle;
    let tran = TranOptions::to_time(t_stop).with_steps(opts.dt, opts.dt);
    let wave = run_transient(&ckt, &tran)?;

    let mid = 0.5 * opts.vdd;
    let need = |v: Result<Vec<f64>>, what: &str| -> Result<f64> {
        let list = v?;
        list.first().copied().ok_or_else(|| SimError::Measurement {
            message: format!("no {what} found while characterizing {kind}"),
        })
    };
    let in_rise = need(wave.crossings("in", mid, true), "input rising edge")?;
    let in_fall = need(wave.crossings("in", mid, false), "input falling edge")?;
    let out_fall = need(
        wave.crossings("out", mid, false)
            .map(|v| v.into_iter().filter(|&t| t >= in_rise).collect::<Vec<_>>()),
        "output falling edge",
    )?;
    let out_rise = need(
        wave.crossings("out", mid, true)
            .map(|v| v.into_iter().filter(|&t| t >= in_fall).collect::<Vec<_>>()),
        "output rising edge",
    )?;
    Ok(DelayPair {
        tphl: out_fall - in_rise,
        tplh: out_rise - in_fall,
    })
}

/// Characterizes `kind` over a temperature list.
///
/// # Errors
///
/// Propagates the first measurement failure.
pub fn characterize(
    kind: GateKind,
    sizing: CellSizing,
    nmos: &MosModel,
    pmos: &MosModel,
    temps_c: &[f64],
    opts: &CharacterizeOptions,
) -> Result<TimingTable> {
    let mut delays = Vec::with_capacity(temps_c.len());
    for &t in temps_c {
        delays.push(measure_delays(kind, sizing, nmos, pmos, t, opts)?);
    }
    Ok(TimingTable {
        kind,
        temps_c: temps_c.to_vec(),
        delays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spicelite::devices::models_um350;

    fn opts() -> CharacterizeOptions {
        CharacterizeOptions::default()
    }

    fn measure(kind: GateKind, ratio: f64, temp: f64) -> DelayPair {
        let (nmos, pmos) = models_um350();
        measure_delays(kind, CellSizing::um350(ratio), &nmos, &pmos, temp, &opts()).unwrap()
    }

    #[test]
    fn inverter_delays_are_tens_of_picoseconds() {
        let d = measure(GateKind::Inv, 2.0, 27.0);
        assert!(d.tphl > 1e-12 && d.tphl < 300e-12, "tphl {}", d.tphl);
        assert!(d.tplh > 1e-12 && d.tplh < 300e-12, "tplh {}", d.tplh);
        assert!(d.pair_sum() > d.tphl);
    }

    #[test]
    fn delays_increase_with_temperature() {
        let cold = measure(GateKind::Inv, 2.0, -50.0);
        let hot = measure(GateKind::Inv, 2.0, 150.0);
        assert!(hot.tphl > cold.tphl, "tphl: {} vs {}", hot.tphl, cold.tphl);
        assert!(hot.tplh > cold.tplh, "tplh: {} vs {}", hot.tplh, cold.tplh);
    }

    #[test]
    fn wider_pmos_speeds_up_the_rising_edge() {
        let narrow = measure(GateKind::Inv, 1.0, 27.0);
        let wide = measure(GateKind::Inv, 3.0, 27.0);
        // tplh improves; tphl degrades (more load on the same NMOS).
        assert!(wide.tplh < narrow.tplh, "{} vs {}", wide.tplh, narrow.tplh);
        assert!(wide.tphl > narrow.tphl, "{} vs {}", wide.tphl, narrow.tphl);
    }

    #[test]
    fn nand_pull_down_slower_than_inverter() {
        let inv = measure(GateKind::Inv, 2.0, 27.0);
        let nand = measure(GateKind::Nand2, 2.0, 27.0);
        assert!(
            nand.tphl > 1.3 * inv.tphl,
            "series stack: {} vs {}",
            nand.tphl,
            inv.tphl
        );
    }

    #[test]
    fn nor_pull_up_slower_than_inverter() {
        let inv = measure(GateKind::Inv, 2.0, 27.0);
        let nor = measure(GateKind::Nor2, 2.0, 27.0);
        assert!(
            nor.tplh > 1.3 * inv.tplh,
            "series stack: {} vs {}",
            nor.tplh,
            inv.tplh
        );
    }

    #[test]
    fn delay_interval_encloses_every_interior_lookup() {
        let (nmos, pmos) = models_um350();
        let table = characterize(
            GateKind::Inv,
            CellSizing::um350(2.0),
            &nmos,
            &pmos,
            &[-50.0, 0.0, 50.0, 100.0, 150.0],
            &opts(),
        )
        .unwrap();
        let bounds = table.delay_interval(-30.0, 120.0);
        // Dense probe: piecewise-linear interpolants must stay inside.
        for i in 0..=300 {
            let t = -30.0 + 0.5 * i as f64;
            assert!(bounds.encloses(table.lookup(t)), "escaped at {t} °C");
        }
        // A lookup outside the range (hotter, so slower) must escape.
        assert!(!bounds.encloses(table.lookup(150.0)));
        // Degenerate range collapses to a point.
        let point = table.delay_interval(27.0, 27.0);
        assert_eq!(point.tphl.0, point.tphl.1);
        assert!(point.encloses(table.lookup(27.0)));
    }

    #[test]
    fn table_interpolation_clamps_and_interpolates() {
        let (nmos, pmos) = models_um350();
        let table = characterize(
            GateKind::Inv,
            CellSizing::um350(2.0),
            &nmos,
            &pmos,
            &[-50.0, 50.0, 150.0],
            &opts(),
        )
        .unwrap();
        assert_eq!(table.delays.len(), 3);
        // Clamped outside.
        assert_eq!(table.lookup(-100.0), table.delays[0]);
        assert_eq!(table.lookup(200.0), table.delays[2]);
        // Interior interpolation lies between neighbours.
        let mid = table.lookup(0.0);
        assert!(mid.tphl > table.delays[0].tphl && mid.tphl < table.delays[1].tphl);
    }
}
