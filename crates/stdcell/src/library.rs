//! A bundled cell library: models, sizing, and ring construction.
//!
//! [`CellLibrary`] ties the Level-1 model cards, supply and library
//! sizing together, and offers one-call constructors for the ring
//! oscillators the paper studies — both from a uniform cell choice and
//! from a `tsense-core` [`CellConfig`] mix. It also exports the whole
//! library as SPICE text for interop with the netlist parser and
//! external tools.

use spicelite::devices::{models_um350, MosModel};
use spicelite::error::Result;
use tsense_core::gate::GateKind;
use tsense_core::ring::CellConfig;
use tsense_core::tech::Technology;

use crate::cells::{subckt_text, CellSizing};
use crate::characterize::{characterize, CharacterizeOptions, TimingTable};
use crate::ring::TransistorRing;

/// A process-bound standard-cell library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    /// Library name, e.g. `"stdcell-0.35um"`.
    pub name: String,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Nominal supply, volts.
    pub vdd: f64,
    /// Library cell sizing (fixed — that is the premise of the paper's
    /// cell-based optimization).
    pub sizing: CellSizing,
}

impl CellLibrary {
    /// The 0.35 µm / 3.3 V library with the given `Wp/Wn` sizing ratio.
    pub fn um350(ratio: f64) -> Self {
        let (nmos, pmos) = models_um350();
        CellLibrary {
            name: "stdcell-0.35um".to_string(),
            nmos,
            pmos,
            vdd: 3.3,
            sizing: CellSizing::um350(ratio),
        }
    }

    /// The analytical technology description that corresponds to this
    /// library (same threshold/tempco/mobility parameters; drive and
    /// capacitance constants differ by the Level-1 vs alpha-power
    /// formulation, so absolute delays agree only to first order).
    pub fn analytical_technology(&self) -> Technology {
        Technology::um350()
    }

    /// A uniform `n`-stage transistor-level ring of `kind` cells.
    ///
    /// # Errors
    ///
    /// Propagates ring-validity errors.
    pub fn uniform_ring(&self, kind: GateKind, n: usize) -> Result<TransistorRing> {
        TransistorRing::uniform(
            kind,
            n,
            self.sizing,
            self.nmos.clone(),
            self.pmos.clone(),
            self.vdd,
        )
    }

    /// A transistor-level ring following a cell-mix configuration.
    ///
    /// # Errors
    ///
    /// Propagates ring-validity errors.
    pub fn ring_from_config(&self, config: &CellConfig) -> Result<TransistorRing> {
        TransistorRing::new(
            config.kinds().to_vec(),
            self.sizing,
            self.nmos.clone(),
            self.pmos.clone(),
            self.vdd,
        )
    }

    /// Characterizes one cell of the library over `temps_c`.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn characterize_cell(&self, kind: GateKind, temps_c: &[f64]) -> Result<TimingTable> {
        let opts = CharacterizeOptions {
            vdd: self.vdd,
            ..CharacterizeOptions::default()
        };
        characterize(kind, self.sizing, &self.nmos, &self.pmos, temps_c, &opts)
    }

    /// SPICE text of one cell's subcircuit.
    pub fn cell_subckt(&self, kind: GateKind) -> String {
        subckt_text(kind, self.sizing, &self.nmos, &self.pmos)
    }

    /// Full library header: both `.model` cards plus every cell subckt —
    /// paste this above instance lines to get a self-contained netlist.
    pub fn library_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("* {}\n", self.name));
        out.push_str(&format!(
            ".model {} NMOS VTO={} KP={} LAMBDA={} TCV={} BEX={} CGW={} CJW={}\n",
            self.nmos.name,
            self.nmos.vto,
            self.nmos.kp,
            self.nmos.lambda,
            self.nmos.vto_tempco,
            self.nmos.mobility_exp,
            self.nmos.cg_per_width,
            self.nmos.cj_per_width,
        ));
        out.push_str(&format!(
            ".model {} PMOS VTO={} KP={} LAMBDA={} TCV={} BEX={} CGW={} CJW={}\n",
            self.pmos.name,
            self.pmos.vto,
            self.pmos.kp,
            self.pmos.lambda,
            self.pmos.vto_tempco,
            self.pmos.mobility_exp,
            self.pmos.cg_per_width,
            self.pmos.cj_per_width,
        ));
        for kind in GateKind::ALL {
            out.push_str(&self.cell_subckt(kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsense_core::ring::CellConfig;

    #[test]
    fn library_builds_paper_rings() {
        let lib = CellLibrary::um350(2.0);
        let ring = lib.uniform_ring(GateKind::Inv, 5).unwrap();
        assert_eq!(ring.stage_count(), 5);
        for cfg in CellConfig::paper_fig3_set() {
            let ring = lib.ring_from_config(&cfg).unwrap();
            assert_eq!(ring.stage_count(), 5);
        }
    }

    #[test]
    fn library_text_parses_and_simulates() {
        let lib = CellLibrary::um350(2.0);
        let src = format!(
            "{}VDD vdd 0 DC 3.3
X1 n0 n1 vdd inv
X2 n1 n2 vdd inv
X3 n2 n0 vdd inv
.ic V(n0)=0 V(n1)=3.3 V(n2)=0
.tran 1p 600p UIC
.end
",
            lib.library_text()
        );
        let deck = spicelite::netlist::parse(&src).unwrap();
        let wave =
            spicelite::transient::run_transient(&deck.circuit, &deck.tran.unwrap().to_options())
                .unwrap();
        let p = wave.period("n0", 1.65, 2).unwrap();
        assert!(p > 20e-12 && p < 500e-12, "period {p}");
    }

    #[test]
    fn analytical_tech_maps_onto_the_level1_cards() {
        let lib = CellLibrary::um350(2.0);
        let tech = lib.analytical_technology();
        assert!((tech.nmos.vth0.get() - lib.nmos.vto).abs() < 1e-12);
        assert!((tech.pmos.mobility_exp - lib.pmos.mobility_exp).abs() < 1e-12);
        // The Level-1 square law (alpha = 2) gets kappa scaled so that
        // alpha*kappa — the overdrive temperature term of d(ln I)/dT —
        // matches the alpha-power model.
        for (ana, l1) in [(&tech.nmos, &lib.nmos), (&tech.pmos, &lib.pmos)] {
            let expect = ana.alpha * ana.vth_tempco / 2.0;
            assert!(
                (l1.vto_tempco - expect).abs() < 0.05e-3,
                "kappa mapping: level-1 {} vs expected {expect}",
                l1.vto_tempco
            );
        }
    }
}
