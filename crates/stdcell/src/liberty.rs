//! Liberty-flavoured timing-library text: export and re-import.
//!
//! Characterized delays become useful to a digital flow as a timing
//! library. This module serializes [`TimingTable`]s into a compact
//! Liberty-like format (one `cell` group per gate, temperature-indexed
//! `cell_fall`/`cell_rise` tables) and parses it back, so characterized
//! data can be cached, diffed, and shipped without rerunning the
//! simulator.
//!
//! The dialect is a subset of Liberty chosen for round-trip fidelity,
//! not for feeding a commercial signoff tool; see the grammar in the
//! [`to_liberty`] docs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use spicelite::error::SimError;
use tsense_core::gate::GateKind;

use crate::characterize::{DelayPair, TimingTable};

/// A set of characterized cells forming a timing library.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingLibrary {
    /// Library name.
    pub name: String,
    /// Tables keyed by cell kind.
    tables: BTreeMap<GateKind, TimingTable>,
}

impl TimingLibrary {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        TimingLibrary {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) one cell's table.
    pub fn insert(&mut self, table: TimingTable) {
        self.tables.insert(table.kind, table);
    }

    /// Table of a cell, if characterized.
    pub fn table(&self, kind: GateKind) -> Option<&TimingTable> {
        self.tables.get(&kind)
    }

    /// Number of characterized cells.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no cell has been characterized.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over the tables in cell order.
    pub fn iter(&self) -> impl Iterator<Item = &TimingTable> {
        self.tables.values()
    }
}

/// Serializes a library:
///
/// ```text
/// library (<name>) {
///   cell (<CELLNAME>) {
///     temperature_index ("t0, t1, ...");
///     cell_fall ("tphl0, tphl1, ...");   /* seconds */
///     cell_rise ("tplh0, tplh1, ...");
///   }
/// }
/// ```
pub fn to_liberty(lib: &TimingLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", lib.name);
    for table in lib.iter() {
        let _ = writeln!(out, "  cell ({}) {{", table.kind.name());
        let temps: Vec<String> = table.temps_c.iter().map(|t| format!("{t:.3}")).collect();
        let falls: Vec<String> = table
            .delays
            .iter()
            .map(|d| format!("{:.6e}", d.tphl))
            .collect();
        let rises: Vec<String> = table
            .delays
            .iter()
            .map(|d| format!("{:.6e}", d.tplh))
            .collect();
        let _ = writeln!(out, "    temperature_index (\"{}\");", temps.join(", "));
        let _ = writeln!(out, "    cell_fall (\"{}\");", falls.join(", "));
        let _ = writeln!(out, "    cell_rise (\"{}\");", rises.join(", "));
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> SimError {
    SimError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_quoted_numbers(text: &str, line_no: usize) -> Result<Vec<f64>, SimError> {
    let start = text
        .find('"')
        .ok_or_else(|| parse_err(line_no, "missing opening quote"))?;
    let end = text
        .rfind('"')
        .filter(|&e| e > start)
        .ok_or_else(|| parse_err(line_no, "missing closing quote"))?;
    text[start + 1..end]
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("malformed number `{}`", tok.trim())))
        })
        .collect()
}

/// Parses library text produced by [`to_liberty`].
///
/// # Errors
///
/// Returns [`SimError::Parse`] with a line number for malformed input
/// (unknown cell names, ragged arrays, missing attributes).
pub fn from_liberty(text: &str) -> Result<TimingLibrary, SimError> {
    let mut lib = TimingLibrary::new("parsed");
    let mut current_cell: Option<GateKind> = None;
    let mut temps: Option<Vec<f64>> = None;
    let mut falls: Option<Vec<f64>> = None;
    let mut rises: Option<Vec<f64>> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("/*") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("library") {
            let name = rest
                .trim()
                .trim_start_matches('(')
                .split(')')
                .next()
                .unwrap_or("parsed")
                .trim();
            lib.name = name.to_string();
        } else if line.starts_with("temperature_index") {
            temps = Some(parse_quoted_numbers(line, line_no)?);
        } else if line.starts_with("cell_fall") {
            falls = Some(parse_quoted_numbers(line, line_no)?);
        } else if line.starts_with("cell_rise") {
            rises = Some(parse_quoted_numbers(line, line_no)?);
        } else if let Some(rest) = line.strip_prefix("cell") {
            // Checked after cell_fall/cell_rise: `cell` is a prefix of both.
            let name = rest
                .trim()
                .trim_start_matches('(')
                .split(')')
                .next()
                .ok_or_else(|| parse_err(line_no, "cell needs a name"))?
                .trim();
            let kind: GateKind = name
                .parse()
                .map_err(|_| parse_err(line_no, format!("unknown cell `{name}`")))?;
            current_cell = Some(kind);
            temps = None;
            falls = None;
            rises = None;
        } else if line.starts_with('}') {
            if let Some(kind) = current_cell.take() {
                let temps = temps.take().ok_or_else(|| {
                    parse_err(line_no, format!("{kind}: missing temperature_index"))
                })?;
                let falls = falls
                    .take()
                    .ok_or_else(|| parse_err(line_no, format!("{kind}: missing cell_fall")))?;
                let rises = rises
                    .take()
                    .ok_or_else(|| parse_err(line_no, format!("{kind}: missing cell_rise")))?;
                if falls.len() != temps.len() || rises.len() != temps.len() {
                    return Err(parse_err(
                        line_no,
                        format!(
                            "{kind}: ragged arrays ({} temps, {} falls, {} rises)",
                            temps.len(),
                            falls.len(),
                            rises.len()
                        ),
                    ));
                }
                if temps.is_empty() {
                    return Err(parse_err(line_no, format!("{kind}: empty table")));
                }
                let delays = falls
                    .iter()
                    .zip(&rises)
                    .map(|(&tphl, &tplh)| DelayPair { tphl, tplh })
                    .collect();
                lib.insert(TimingTable {
                    kind,
                    temps_c: temps,
                    delays,
                });
            }
        }
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    fn small_library() -> TimingLibrary {
        let cells = CellLibrary::um350(2.0);
        let mut lib = TimingLibrary::new("stdcell-0.35um");
        for kind in [GateKind::Inv, GateKind::Nand2, GateKind::Nor2] {
            lib.insert(
                cells
                    .characterize_cell(kind, &[-50.0, 50.0, 150.0])
                    .unwrap(),
            );
        }
        lib
    }

    #[test]
    fn round_trip_preserves_every_value() {
        let lib = small_library();
        let text = to_liberty(&lib);
        let parsed = from_liberty(&text).unwrap();
        assert_eq!(parsed.name, lib.name);
        assert_eq!(parsed.len(), lib.len());
        for table in lib.iter() {
            let back = parsed.table(table.kind).expect("cell survives");
            assert_eq!(back.temps_c.len(), table.temps_c.len());
            for (a, b) in back.delays.iter().zip(&table.delays) {
                // Serialized with 7 significant digits.
                assert!((a.tphl - b.tphl).abs() < 1e-6 * b.tphl, "{}", table.kind);
                assert!((a.tplh - b.tplh).abs() < 1e-6 * b.tplh, "{}", table.kind);
            }
        }
    }

    #[test]
    fn exported_text_is_structured() {
        let lib = small_library();
        let text = to_liberty(&lib);
        assert!(text.starts_with("library (stdcell-0.35um) {"));
        assert!(text.contains("cell (INV) {"));
        assert!(text.contains("cell (NAND2) {"));
        assert!(text.contains("temperature_index"));
        assert_eq!(text.matches("cell_fall").count(), 3);
    }

    #[test]
    fn parsed_tables_interpolate() {
        let lib = small_library();
        let parsed = from_liberty(&to_liberty(&lib)).unwrap();
        let table = parsed.table(GateKind::Inv).unwrap();
        let mid = table.lookup(0.0);
        let lo = table.lookup(-50.0);
        let hi = table.lookup(50.0);
        assert!(mid.tphl > lo.tphl && mid.tphl < hi.tphl);
    }

    #[test]
    fn malformed_inputs_rejected_with_line_numbers() {
        let bad_cell = "library (x) {\n  cell (FOO42) {\n  }\n}\n";
        match from_liberty(bad_cell) {
            Err(SimError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let ragged = "library (x) {\n  cell (INV) {\n    temperature_index (\"0, 50\");\n    cell_fall (\"1e-12\");\n    cell_rise (\"1e-12, 2e-12\");\n  }\n}\n";
        assert!(from_liberty(ragged).is_err());
        let missing = "library (x) {\n  cell (INV) {\n    temperature_index (\"0\");\n  }\n}\n";
        assert!(from_liberty(missing).is_err());
        let bad_number = "library (x) {\n  cell (INV) {\n    temperature_index (\"zero\");\n    cell_fall (\"1\");\n    cell_rise (\"1\");\n  }\n}\n";
        assert!(from_liberty(bad_number).is_err());
    }

    #[test]
    fn empty_library_round_trips() {
        let lib = TimingLibrary::new("empty");
        assert!(lib.is_empty());
        let parsed = from_liberty(&to_liberty(&lib)).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.name, "empty");
    }
}
