//! Transistor-level topologies of the inverting standard cells.
//!
//! Each cell is emitted directly into a [`spicelite`] circuit with its
//! inputs tied together (the configuration used in sensor rings). The
//! topology comes from the cell's [`PullNetwork`] tree, so the same code
//! emits simple stacks (NAND/NOR) and complex series/parallel mixes
//! (AOI21/OAI21):
//!
//! * series compositions get **real internal nodes**, so stack source
//!   degeneration is simulated rather than approximated;
//! * parallel compositions tie their branches between the same pair of
//!   nodes;
//! * the network's output side carries the drain parasitics.
//!
//! Transistor-level simulation therefore captures exactly the effect the
//! paper exploits in Fig. 3: the stacks weight the NMOS and PMOS
//! temperature behaviours differently per cell type.

use spicelite::circuit::{Circuit, NodeId};
use spicelite::devices::MosModel;
use spicelite::error::Result;
use tsense_core::gate::GateKind;
use tsense_core::network::PullNetwork;

/// Per-transistor sizing of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSizing {
    /// NMOS channel width, metres.
    pub wn: f64,
    /// PMOS channel width, metres.
    pub wp: f64,
    /// Channel length, metres.
    pub l: f64,
}

impl CellSizing {
    /// The library default for a 0.35 µm process: 1 µm NMOS, ratio `r`
    /// PMOS, minimum length.
    pub fn um350(ratio: f64) -> Self {
        CellSizing {
            wn: 1.0e-6,
            wp: 1.0e-6 * ratio,
            l: 0.35e-6,
        }
    }
}

/// Emits one tied-input inverting cell into `circuit`.
///
/// `name` prefixes every device; `input` and `output` are the cell pins;
/// `vdd` is the supply rail. Internal stack nodes are named
/// `<name>.n.s<i>` / `<name>.p.s<i>`.
///
/// # Errors
///
/// Propagates device-construction failures (non-positive geometry).
#[allow(clippy::too_many_arguments)]
pub fn emit_cell(
    circuit: &mut Circuit,
    kind: GateKind,
    name: &str,
    input: NodeId,
    output: NodeId,
    vdd: NodeId,
    sizing: CellSizing,
    nmos: &MosModel,
    pmos: &MosModel,
) -> Result<()> {
    // Pull-down network between output (drain side) and ground.
    let mut state = EmitState::new(format!("{name}.n"));
    emit_network(
        circuit,
        &kind.pull_down(),
        &mut state,
        input,
        output,
        Circuit::GROUND,
        sizing.wn,
        sizing.l,
        nmos,
    )?;
    // Pull-up network between output (drain side) and vdd.
    let mut state = EmitState::new(format!("{name}.p"));
    emit_network(
        circuit,
        &kind.pull_up(),
        &mut state,
        input,
        output,
        vdd,
        sizing.wp,
        sizing.l,
        pmos,
    )?;
    Ok(())
}

/// Running counters for unique device / internal-node names within one
/// pull network.
struct EmitState {
    prefix: String,
    devices: usize,
    nodes: usize,
}

impl EmitState {
    fn new(prefix: String) -> Self {
        EmitState {
            prefix,
            devices: 0,
            nodes: 0,
        }
    }

    fn next_device(&mut self) -> String {
        let name = format!("{}{}", self.prefix, self.devices);
        self.devices += 1;
        name
    }

    fn next_node(&mut self, circuit: &mut Circuit) -> NodeId {
        let name = format!("{}.s{}", self.prefix, self.nodes);
        self.nodes += 1;
        circuit.node(&name)
    }
}

/// Recursively emits a pull network between `upper` (the output side,
/// carrying the drains) and `lower` (the rail side).
#[allow(clippy::too_many_arguments)]
fn emit_network(
    circuit: &mut Circuit,
    network: &PullNetwork,
    state: &mut EmitState,
    input: NodeId,
    upper: NodeId,
    lower: NodeId,
    w: f64,
    l: f64,
    model: &MosModel,
) -> Result<()> {
    match network {
        PullNetwork::Device => {
            let name = state.next_device();
            circuit.add_mosfet_with_caps(name, upper, input, lower, model.clone(), w, l)
        }
        PullNetwork::Parallel(children) => {
            for child in children {
                emit_network(circuit, child, state, input, upper, lower, w, l, model)?;
            }
            Ok(())
        }
        PullNetwork::Series(children) => {
            let mut top = upper;
            for (i, child) in children.iter().enumerate() {
                let bottom = if i + 1 == children.len() {
                    lower
                } else {
                    state.next_node(circuit)
                };
                emit_network(circuit, child, state, input, top, bottom, w, l, model)?;
                top = bottom;
            }
            Ok(())
        }
    }
}

/// Number of transistors a cell contains.
pub fn transistor_count(kind: GateKind) -> usize {
    2 * kind.fan_in()
}

/// Maximum fan-out (sink count) a cell output drives before its
/// transition-time budget collapses, at the library's fixed sizing.
/// An inverter's single-device pull networks drive the most; series
/// stacks (NAND3/NAND4, NOR3/NOR4, the complex AOI/OAI cells) lose
/// drive roughly with stack height. Used by `netcheck`'s NC1403
/// structural lint.
pub fn drive_budget(kind: GateKind) -> usize {
    match kind.fan_in() {
        1 => 16,
        2 => 12,
        3 if matches!(kind, GateKind::Aoi21 | GateKind::Oai21) => 8,
        3 => 10,
        _ => 8,
    }
}

/// Text-emission state mirroring [`EmitState`].
struct TextState {
    device_prefix: char,
    node_prefix: String,
    devices: usize,
    nodes: usize,
    out: String,
}

fn text_network(
    network: &PullNetwork,
    state: &mut TextState,
    upper: &str,
    lower: &str,
    model: &str,
    w_um: f64,
    l_um: f64,
) {
    match network {
        PullNetwork::Device => {
            let i = state.devices;
            state.devices += 1;
            state.out.push_str(&format!(
                "M{}{} {} in {} {} W={:.3}u L={:.3}u\n",
                state.device_prefix, i, upper, lower, model, w_um, l_um
            ));
        }
        PullNetwork::Parallel(children) => {
            for child in children {
                text_network(child, state, upper, lower, model, w_um, l_um);
            }
        }
        PullNetwork::Series(children) => {
            let mut top = upper.to_string();
            for (i, child) in children.iter().enumerate() {
                let bottom = if i + 1 == children.len() {
                    lower.to_string()
                } else {
                    let n = format!("{}{}", state.node_prefix, state.nodes);
                    state.nodes += 1;
                    n
                };
                text_network(child, state, &top, &bottom, model, w_um, l_um);
                top = bottom;
            }
        }
    }
}

/// SPICE `.subckt` text of a cell, for interop with external tools and
/// round-trip tests against the netlist parser.
pub fn subckt_text(kind: GateKind, sizing: CellSizing, nmos: &MosModel, pmos: &MosModel) -> String {
    let cell = kind.name().to_ascii_lowercase();
    let mut out = format!(".subckt {cell} in out vdd\n");

    let mut n_state = TextState {
        device_prefix: 'N',
        node_prefix: "sn".to_string(),
        devices: 0,
        nodes: 0,
        out: String::new(),
    };
    text_network(
        &kind.pull_down(),
        &mut n_state,
        "out",
        "0",
        &nmos.name,
        sizing.wn * 1e6,
        sizing.l * 1e6,
    );
    out.push_str(&n_state.out);

    let mut p_state = TextState {
        device_prefix: 'P',
        node_prefix: "sp".to_string(),
        devices: 0,
        nodes: 0,
        out: String::new(),
    };
    text_network(
        &kind.pull_up(),
        &mut p_state,
        "out",
        "vdd",
        &pmos.name,
        sizing.wp * 1e6,
        sizing.l * 1e6,
    );
    out.push_str(&p_state.out);
    out.push_str(".ends\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spicelite::dc::{solve_dc, SolverOptions};
    use spicelite::devices::{models_um350, Device, Stimulus};

    #[test]
    fn drive_budget_decreases_with_stack_height() {
        assert_eq!(drive_budget(GateKind::Inv), 16);
        assert!(drive_budget(GateKind::Nand2) < drive_budget(GateKind::Inv));
        assert!(drive_budget(GateKind::Nand3) < drive_budget(GateKind::Nand2));
        assert!(drive_budget(GateKind::Nand4) < drive_budget(GateKind::Nand3));
        assert_eq!(drive_budget(GateKind::Nor3), drive_budget(GateKind::Nand3));
        assert_eq!(drive_budget(GateKind::Aoi21), drive_budget(GateKind::Nand4));
        for kind in GateKind::ALL {
            assert!(drive_budget(kind) >= 8, "every cell drives something");
        }
    }

    fn cell_circuit(kind: GateKind, vin: f64) -> (Circuit, f64) {
        let (nmos, pmos) = models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(vin))
            .unwrap();
        emit_cell(
            &mut ckt,
            kind,
            "U1",
            inn,
            out,
            vdd,
            CellSizing::um350(2.0),
            &nmos,
            &pmos,
        )
        .unwrap();
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        let v = op.voltage(&ckt, "out").unwrap();
        (ckt, v)
    }

    #[test]
    fn every_cell_inverts_logically() {
        for kind in GateKind::ALL {
            let (_, v_low_in) = cell_circuit(kind, 0.0);
            assert!(v_low_in > 3.2, "{kind}: low in → high out, got {v_low_in}");
            let (_, v_high_in) = cell_circuit(kind, 3.3);
            assert!(
                v_high_in < 0.1,
                "{kind}: high in → low out, got {v_high_in}"
            );
        }
    }

    #[test]
    fn transistor_counts() {
        assert_eq!(transistor_count(GateKind::Inv), 2);
        assert_eq!(transistor_count(GateKind::Nand3), 6);
        assert_eq!(transistor_count(GateKind::Nor4), 8);
        assert_eq!(transistor_count(GateKind::Aoi21), 6);
        for kind in [GateKind::Nand2, GateKind::Aoi21, GateKind::Oai21] {
            let (ckt, _) = cell_circuit(kind, 0.0);
            let fets = ckt
                .devices()
                .iter()
                .filter(|d| matches!(d, Device::Mosfet { .. }))
                .count();
            assert_eq!(fets, transistor_count(kind), "{kind}");
        }
    }

    #[test]
    fn nand_has_internal_stack_nodes() {
        let (ckt, _) = cell_circuit(GateKind::Nand3, 0.0);
        assert!(ckt.find_node("U1.n.s0").is_ok());
        assert!(ckt.find_node("U1.n.s1").is_ok());
        // NOR3's stack sits in the pull-up.
        let (ckt, _) = cell_circuit(GateKind::Nor3, 0.0);
        assert!(ckt.find_node("U1.p.s0").is_ok());
        // AOI21: one internal node in the pull-down (the A·B stack) and
        // one in the pull-up (the series composition).
        let (ckt, _) = cell_circuit(GateKind::Aoi21, 0.0);
        assert!(ckt.find_node("U1.n.s0").is_ok());
        assert!(ckt.find_node("U1.p.s0").is_ok());
    }

    #[test]
    fn subckt_text_round_trips_through_parser() {
        let (nmos, pmos) = models_um350();
        for kind in [
            GateKind::Inv,
            GateKind::Nand2,
            GateKind::Nor3,
            GateKind::Aoi21,
            GateKind::Oai21,
        ] {
            let body = subckt_text(kind, CellSizing::um350(2.0), &nmos, &pmos);
            let cellname = kind.name().to_ascii_lowercase();
            let src = format!(
                "roundtrip
.model {} NMOS VTO=0.55 KP=170u
.model {} PMOS VTO=0.65 KP=58u
{body}VDD vdd 0 DC 3.3
VIN a 0 DC 0
X1 a b vdd {cellname}
.end
",
                nmos.name, pmos.name
            );
            let deck =
                spicelite::netlist::parse(&src).unwrap_or_else(|e| panic!("{kind}: {e}\n{src}"));
            let op = solve_dc(&deck.circuit, &SolverOptions::default()).unwrap();
            let v = op.voltage(&deck.circuit, "b").unwrap();
            assert!(v > 3.2, "{kind}: parsed cell inverts, got {v}");
        }
    }

    #[test]
    fn mid_rail_input_biases_cell_in_transition_region() {
        let (_, v) = cell_circuit(GateKind::Inv, 1.4);
        assert!(v > 0.3 && v < 3.0, "transition region output: {v}");
    }
}
