//! Property-based tests of the standard-cell layer: Liberty round trips
//! on arbitrary tables and timing-table interpolation invariants.

use proptest::prelude::*;

use stdcell::characterize::{DelayPair, TimingTable};
use stdcell::liberty::{from_liberty, to_liberty, TimingLibrary};
use tsense_core::gate::GateKind;

fn arb_table(kind: GateKind) -> impl Strategy<Value = TimingTable> {
    prop::collection::vec((1.0f64..500.0, 1.0f64..500.0), 1..8).prop_map(move |ps| {
        let n = ps.len();
        let temps_c: Vec<f64> = (0..n)
            .map(|i| -50.0 + 200.0 * i as f64 / n.max(2) as f64)
            .collect();
        let delays: Vec<DelayPair> = ps
            .iter()
            .map(|&(f, r)| DelayPair {
                tphl: f * 1e-12,
                tplh: r * 1e-12,
            })
            .collect();
        TimingTable {
            kind,
            temps_c,
            delays,
        }
    })
}

proptest! {
    #[test]
    fn liberty_round_trip_on_arbitrary_tables(
        t_inv in arb_table(GateKind::Inv),
        t_nand in arb_table(GateKind::Nand3),
        t_aoi in arb_table(GateKind::Aoi21),
    ) {
        let mut lib = TimingLibrary::new("prop");
        for t in [t_inv, t_nand, t_aoi] {
            lib.insert(t);
        }
        let parsed = from_liberty(&to_liberty(&lib)).expect("round trip");
        prop_assert_eq!(parsed.len(), lib.len());
        for table in lib.iter() {
            let back = parsed.table(table.kind).expect("cell");
            for (a, b) in back.delays.iter().zip(&table.delays) {
                prop_assert!((a.tphl - b.tphl).abs() < 1e-6 * b.tphl);
                prop_assert!((a.tplh - b.tplh).abs() < 1e-6 * b.tplh);
            }
        }
    }

    #[test]
    fn interpolation_stays_inside_the_hull(
        table in arb_table(GateKind::Inv),
        t in -100.0f64..200.0,
    ) {
        let lo_f = table.delays.iter().map(|d| d.tphl).fold(f64::INFINITY, f64::min);
        let hi_f = table.delays.iter().map(|d| d.tphl).fold(f64::NEG_INFINITY, f64::max);
        let d = table.lookup(t);
        prop_assert!(d.tphl >= lo_f - 1e-18 && d.tphl <= hi_f + 1e-18);
        prop_assert!(d.pair_sum() >= d.tphl);
    }

    #[test]
    fn interpolation_exact_at_the_knots(table in arb_table(GateKind::Nor2)) {
        for (i, &t) in table.temps_c.iter().enumerate() {
            let d = table.lookup(t);
            prop_assert!((d.tphl - table.delays[i].tphl).abs() < 1e-15);
            prop_assert!((d.tplh - table.delays[i].tplh).abs() < 1e-15);
        }
    }
}
