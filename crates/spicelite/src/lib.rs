//! # spicelite — a small transistor-level circuit simulator
//!
//! A from-scratch analog simulator sized for the circuits of the DATE'05
//! smart-temperature-sensor reproduction: ring oscillators and standard
//! cells of a few dozen devices. It implements the classic SPICE
//! architecture:
//!
//! * **Modified nodal analysis** with dense LU ([`linalg`], [`mna`]);
//! * **Newton–Raphson** DC with gmin and source stepping ([`dc`]);
//! * **Transient** analysis with backward-Euler/trapezoidal companions
//!   and adaptive step control ([`transient`]);
//! * **Devices**: resistor, capacitor, independent voltage source
//!   (DC/pulse/PWL) and a Level-1 MOSFET with linear threshold tempco and
//!   power-law mobility roll-off ([`devices`]);
//! * **Netlists**: a SPICE-subset text format with `.subckt` expansion
//!   ([`netlist`]);
//! * **Measurements**: period/frequency by interpolated threshold
//!   crossings, rise/fall times, extrema ([`waveform`]).
//!
//! ## Modelling notes
//!
//! The MOSFET is 3-terminal: the bulk is implicitly tied to the source
//! rail and body effect is *not* modelled (`γ = 0`). Series stacks still
//! behave correctly to first order because source degeneration arises
//! from the real circuit topology. Device capacitances are linear
//! (voltage-independent), attached by
//! [`circuit::Circuit::add_mosfet_with_caps`].
//!
//! ## Example: a ring oscillator from scratch
//!
//! ```
//! use spicelite::circuit::Circuit;
//! use spicelite::devices::{models_um350, Stimulus};
//! use spicelite::transient::{run_transient, TranOptions};
//!
//! let (nmos, pmos) = models_um350();
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))?;
//! let n = 5;
//! for i in 0..n {
//!     let input = ckt.node(&format!("n{i}"));
//!     let output = ckt.node(&format!("n{}", (i + 1) % n));
//!     ckt.add_mosfet_with_caps(format!("MN{i}"), output, input, Circuit::GROUND,
//!                              nmos.clone(), 1.0e-6, 0.35e-6)?;
//!     ckt.add_mosfet_with_caps(format!("MP{i}"), output, input, vdd,
//!                              pmos.clone(), 2.0e-6, 0.35e-6)?;
//! }
//! // Kick the ring: seed alternating initial conditions.
//! for i in 0..n {
//!     let node = ckt.find_node(&format!("n{i}"))?;
//!     ckt.set_initial_condition(node, if i % 2 == 0 { 0.0 } else { 3.3 });
//! }
//! let wave = run_transient(&ckt, &TranOptions::to_time(1.5e-9).with_uic())?;
//! let period = wave.period("n0", 1.65, 2)?;
//! assert!(period > 10e-12 && period < 1.5e-9);
//! # Ok::<(), spicelite::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Validation deliberately writes `!(x > 0.0)` instead of `x <= 0.0`:
// the negated form also rejects NaN, which the comparison form lets
// through silently.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod circuit;
pub mod dc;
pub mod devices;
pub mod error;
pub mod linalg;
pub mod mna;
pub mod netlist;
pub mod transient;
pub mod waveform;

pub use circuit::{Circuit, NodeId};
pub use dc::{dc_sweep, solve_dc, DcSolution, SolverOptions};
pub use devices::{MosModel, MosPolarity, Stimulus};
pub use error::{Result, SimError};
pub use transient::{run_transient, Integrator, TranOptions};
pub use waveform::Waveform;
