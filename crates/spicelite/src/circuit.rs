//! Circuit container: named nodes, devices, analysis conditions.
//!
//! A [`Circuit`] is built programmatically (see the `stdcell` crate for
//! generated standard-cell subcircuits) or parsed from a SPICE-subset
//! netlist (the [`crate::netlist`] module). Node `0` is ground.
//!
//! ```
//! use spicelite::circuit::Circuit;
//! use spicelite::devices::Stimulus;
//!
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let out = ckt.node("out");
//! ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))?;
//! ckt.add_resistor("R1", vdd, out, 10e3)?;
//! ckt.add_resistor("R2", out, Circuit::GROUND, 10e3)?;
//! let op = spicelite::dc::solve_dc(&ckt, &Default::default())?;
//! assert!((op.voltage(&ckt, "out")? - 1.65).abs() < 1e-6);
//! # Ok::<(), spicelite::SimError>(())
//! ```

use std::collections::HashMap;

use crate::devices::{Device, MosModel, Stimulus};
use crate::error::{Result, SimError};

/// Identifier of a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground; unknowns start at 1).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the reference node.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A circuit under construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_id: HashMap<String, NodeId>,
    devices: Vec<Device>,
    temperature_c: f64,
    initial_conditions: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// The ground node, for call-site readability.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit at 27 °C with only the ground node.
    pub fn new() -> Self {
        let mut name_to_id = HashMap::new();
        name_to_id.insert("0".to_string(), NodeId::GROUND);
        name_to_id.insert("gnd".to_string(), NodeId::GROUND);
        Circuit {
            node_names: vec!["0".to_string()],
            name_to_id,
            devices: Vec::new(),
            temperature_c: 27.0,
            initial_conditions: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// Names are case-sensitive except the aliases `0`/`gnd` for ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_id.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_id.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] when no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId> {
        self.name_to_id
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownNode {
                name: name.to_string(),
            })
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of unknown node voltages (excludes ground).
    #[inline]
    pub fn unknown_node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// The devices, in insertion order.
    #[inline]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of voltage-source branches (extra MNA unknowns).
    pub fn branch_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::Vsource { .. }))
            .count()
    }

    /// Size of the MNA unknown vector (nodes + branches).
    pub fn unknown_count(&self) -> usize {
        self.unknown_node_count() + self.branch_count()
    }

    /// Simulation junction temperature in °C (default 27 °C).
    #[inline]
    pub fn temperature(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the simulation junction temperature in °C.
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature_c = celsius;
    }

    /// Declares a transient initial condition `V(node) = volts`.
    pub fn set_initial_condition(&mut self, node: NodeId, volts: f64) {
        self.initial_conditions.push((node, volts));
    }

    /// The declared initial conditions.
    #[inline]
    pub fn initial_conditions(&self) -> &[(NodeId, f64)] {
        &self.initial_conditions
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] for a non-positive resistance.
    pub fn add_resistor(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<()> {
        let name = name.into();
        if !(ohms > 0.0) {
            return Err(SimError::InvalidDevice {
                device: name,
                reason: format!("resistance {ohms} must be positive"),
            });
        }
        self.devices.push(Device::Resistor { name, a, b, ohms });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] for a non-positive capacitance.
    pub fn add_capacitor(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<()> {
        let name = name.into();
        if !(farads > 0.0) {
            return Err(SimError::InvalidDevice {
                device: name,
                reason: format!("capacitance {farads} must be positive"),
            });
        }
        self.devices.push(Device::Capacitor { name, a, b, farads });
        Ok(())
    }

    /// Adds an independent voltage source (`pos` − `neg` = stimulus).
    ///
    /// # Errors
    ///
    /// Currently infallible but returns `Result` for uniformity with the
    /// other constructors; reserved for waveform validation.
    pub fn add_vsource(
        &mut self,
        name: impl Into<String>,
        pos: NodeId,
        neg: NodeId,
        stimulus: Stimulus,
    ) -> Result<()> {
        self.devices.push(Device::Vsource {
            name: name.into(),
            pos,
            neg,
            stimulus,
        });
        Ok(())
    }

    /// Adds an independent DC current source pushing `amps` from
    /// `from` into `to`.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` for uniformity with the other
    /// constructors.
    pub fn add_isource(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        to: NodeId,
        amps: f64,
    ) -> Result<()> {
        self.devices.push(Device::Isource {
            name: name.into(),
            from,
            to,
            amps,
        });
        Ok(())
    }

    /// Replaces the DC value of a named voltage source (used by DC
    /// sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] when no voltage source of
    /// that name exists.
    pub fn set_vsource_value(&mut self, name: &str, volts: f64) -> Result<()> {
        for dev in &mut self.devices {
            if let Device::Vsource {
                name: n, stimulus, ..
            } = dev
            {
                if n == name {
                    *stimulus = Stimulus::Dc(volts);
                    return Ok(());
                }
            }
        }
        Err(SimError::InvalidDevice {
            device: name.to_string(),
            reason: "no voltage source with this name".to_string(),
        })
    }

    /// Adds a bare Level-1 MOSFET (no parasitic capacitances).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] for non-positive geometry.
    #[allow(clippy::too_many_arguments)] // d/g/s + model + geometry are irreducible
    pub fn add_mosfet(
        &mut self,
        name: impl Into<String>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> Result<()> {
        let name = name.into();
        if !(w > 0.0 && l > 0.0) {
            return Err(SimError::InvalidDevice {
                device: name,
                reason: format!("geometry W={w} L={l} must be positive"),
            });
        }
        self.devices.push(Device::Mosfet {
            name,
            d,
            g,
            s,
            model,
            w,
            l,
        });
        Ok(())
    }

    /// Adds a MOSFET together with its linear parasitic capacitances
    /// (Cgs, Cgd from the model's gate capacitance split evenly; Cdb from
    /// the junction capacitance, to ground). This is the constructor the
    /// standard-cell layer uses: delays come out wrong without parasitics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_mosfet`] /
    /// [`Circuit::add_capacitor`].
    #[allow(clippy::too_many_arguments)] // d/g/s + model + geometry are irreducible
    pub fn add_mosfet_with_caps(
        &mut self,
        name: impl Into<String>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> Result<()> {
        let name = name.into();
        let cg_half = 0.5 * model.cg_per_width * w;
        let cj = model.cj_per_width * w;
        self.add_mosfet(name.clone(), d, g, s, model, w, l)?;
        self.add_capacitor(format!("{name}.cgs"), g, s, cg_half)?;
        self.add_capacitor(format!("{name}.cgd"), g, d, cg_half)?;
        self.add_capacitor(format!("{name}.cdb"), d, NodeId::GROUND, cj)?;
        Ok(())
    }

    /// All node names except ground, in index order (the row order of the
    /// MNA unknowns).
    pub fn unknown_node_names(&self) -> Vec<&str> {
        self.node_names[1..].iter().map(|s| s.as_str()).collect()
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_preregistered() {
        let ckt = Circuit::new();
        assert_eq!(ckt.find_node("0").unwrap(), NodeId::GROUND);
        assert_eq!(ckt.find_node("gnd").unwrap(), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(ckt.node_count(), 1);
        assert_eq!(ckt.unknown_node_count(), 0);
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node_name(a), "a");
        assert!(!a.is_ground());
        assert!(ckt.find_node("missing").is_err());
    }

    #[test]
    fn device_counting() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        assert_eq!(ckt.devices().len(), 3);
        assert_eq!(ckt.branch_count(), 1);
        assert_eq!(ckt.unknown_count(), 3); // 2 nodes + 1 branch
        assert_eq!(ckt.unknown_node_names(), vec!["a", "b"]);
    }

    #[test]
    fn invalid_passives_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.add_resistor("R", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("R", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt.add_capacitor("C", a, Circuit::GROUND, 0.0).is_err());
    }

    #[test]
    fn mosfet_with_caps_adds_three_capacitors() {
        let mut ckt = Circuit::new();
        let (nmos, _) = crate::devices::models_um350();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_mosfet_with_caps("M1", d, g, Circuit::GROUND, nmos, 1e-6, 0.35e-6)
            .unwrap();
        assert_eq!(ckt.devices().len(), 4);
        let caps = ckt
            .devices()
            .iter()
            .filter(|d| matches!(d, Device::Capacitor { .. }))
            .count();
        assert_eq!(caps, 3);
    }

    #[test]
    fn geometry_validation() {
        let mut ckt = Circuit::new();
        let (nmos, _) = crate::devices::models_um350();
        let d = ckt.node("d");
        assert!(ckt
            .add_mosfet("M1", d, d, Circuit::GROUND, nmos, 0.0, 0.35e-6)
            .is_err());
    }

    #[test]
    fn temperature_and_ics() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.temperature(), 27.0);
        ckt.set_temperature(125.0);
        assert_eq!(ckt.temperature(), 125.0);
        let a = ckt.node("a");
        ckt.set_initial_condition(a, 3.3);
        assert_eq!(ckt.initial_conditions(), &[(a, 3.3)]);
    }
}
