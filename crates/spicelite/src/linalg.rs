//! Dense linear algebra for modified nodal analysis.
//!
//! Circuit matrices at this scale (a ring oscillator is a few dozen
//! unknowns) are small and only mildly sparse, so a dense LU with partial
//! pivoting is both simple and fast. The factorization is done in place;
//! [`Matrix::solve_in_place`] destroys the matrix, which is fine because
//! MNA rebuilds it every Newton iteration.

use crate::error::{Result, SimError};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n_rows × n_cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        assert!(
            n_rows > 0 && n_cols > 0,
            "matrix dimensions must be positive"
        );
        Matrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Resets every entry to zero (reuse between Newton iterations
    /// without reallocating).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Adds `value` to entry `(row, col)` — the stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        self.data
            .chunks_exact(self.n_cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Solves `self · x = b` in place by LU with partial pivoting,
    /// overwriting both the matrix (with its factors) and `b` (with the
    /// solution).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] when no usable pivot exists
    /// (matrix is singular to working precision).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != n`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<()> {
        assert_eq!(self.n_rows, self.n_cols, "LU needs a square matrix");
        assert_eq!(b.len(), self.n_rows, "rhs dimension mismatch");
        let n = self.n_rows;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = self[(k, k)].abs();
            for r in (k + 1)..n {
                let v = self[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SimError::SingularMatrix { pivot_row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let (a, b2) = (self[(k, c)], self[(pivot_row, c)]);
                    self[(k, c)] = b2;
                    self[(pivot_row, c)] = a;
                }
                b.swap(k, pivot_row);
            }
            // Eliminate below.
            let pivot = self[(k, k)];
            for r in (k + 1)..n {
                let factor = self[(r, k)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self[(r, k)] = 0.0;
                for c in (k + 1)..n {
                    let v = self[(k, c)];
                    self[(r, c)] -= factor * v;
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut s = b[k];
            for c in (k + 1)..n {
                s -= self[(k, c)] * b[c];
            }
            b[k] = s / self[(k, k)];
        }
        Ok(())
    }

    /// Infinity norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| {
                self.data[i * self.n_cols..(i + 1) * self.n_cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        &self.data[r * self.n_cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        &mut self.data[r * self.n_cols + c]
    }
}

/// Infinity norm of a vector.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let mut m = Matrix::identity(4);
        let mut b = vec![1.0, -2.0, 3.0, 0.5];
        let expect = b.clone();
        m.solve_in_place(&mut b).unwrap();
        assert_eq!(b, expect);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10]  ->  x = [1; 3]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 2.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 3.0;
        let mut b = vec![5.0, 10.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3]  ->  x = [3; 2]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let mut b = vec![2.0, 3.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            m.solve_in_place(&mut b),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 4.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 3.0;
        m[(1, 2)] = -1.0;
        m[(2, 1)] = -1.0;
        m[(2, 2)] = 2.0;
        let x = vec![1.0, 2.0, 3.0];
        let b = m.mul_vec(&x);
        let mut m2 = m.clone();
        let mut bb = b.clone();
        m2.solve_in_place(&mut bb).unwrap();
        for (a, e) in bb.iter().zip(&x) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn add_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert!((m[(0, 0)] - 4.0).abs() < 1e-15);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn norms() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = -3.0;
        m[(0, 1)] = 1.0;
        m[(1, 1)] = 2.0;
        assert!((m.norm_inf() - 4.0).abs() < 1e-15);
        assert!((vec_norm_inf(&[1.0, -5.0, 2.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zeros(0, 3);
    }
}
