//! Simulation waveforms and measurements.
//!
//! A [`Waveform`] records every unknown (node voltages, then source
//! branch currents) at every accepted time point. Measurement helpers
//! extract the quantities the paper reports: oscillation period and
//! frequency via interpolated threshold crossings, rise/fall times, and
//! peak-to-peak amplitude.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::error::{Result, SimError};

/// A recorded multi-signal waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    names: Vec<String>,
    /// `data[k]` is the sample vector of signal `k`.
    data: Vec<Vec<f64>>,
}

impl Waveform {
    /// Creates an empty waveform sized for `circuit`'s unknowns: one
    /// signal per non-ground node (named after the node) and one per
    /// voltage source branch (named `i(<source>)`).
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let mut names: Vec<String> = circuit
            .unknown_node_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for dev in circuit.devices() {
            if let crate::devices::Device::Vsource { name, .. } = dev {
                names.push(format!("i({name})"));
            }
        }
        let data = names.iter().map(|_| Vec::new()).collect();
        Waveform {
            times: Vec::new(),
            names,
            data,
        }
    }

    /// Appends one time point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the signal count.
    pub fn push(&mut self, t: f64, x: &[f64]) {
        assert_eq!(x.len(), self.data.len(), "sample width mismatch");
        self.times.push(t);
        for (col, &v) in self.data.iter_mut().zip(x) {
            col.push(v);
        }
    }

    /// The time axis.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Signal names in storage order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded time points.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Samples of a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] when the signal does not exist.
    pub fn signal(&self, name: &str) -> Result<&[f64]> {
        let idx =
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| SimError::UnknownNode {
                    name: name.to_string(),
                })?;
        Ok(&self.data[idx])
    }

    /// Linear interpolation of a signal at time `t` (clamped to the
    /// recorded span).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for an unknown signal or
    /// [`SimError::Measurement`] on an empty waveform.
    pub fn sample_at(&self, name: &str, t: f64) -> Result<f64> {
        let ys = self.signal(name)?;
        if ys.is_empty() {
            return Err(SimError::Measurement {
                message: "waveform is empty".to_string(),
            });
        }
        if t <= self.times[0] {
            return Ok(ys[0]);
        }
        if t >= *self.times.last().expect("non-empty") {
            return Ok(*ys.last().expect("non-empty"));
        }
        let idx = self.times.partition_point(|&x| x < t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (y0, y1) = (ys[idx - 1], ys[idx]);
        if t1 == t0 {
            return Ok(y1);
        }
        Ok(y0 + (y1 - y0) * (t - t0) / (t1 - t0))
    }

    /// Interpolated times at which `name` crosses `threshold` in the
    /// requested direction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for an unknown signal.
    pub fn crossings(&self, name: &str, threshold: f64, rising: bool) -> Result<Vec<f64>> {
        let ys = self.signal(name)?;
        let mut out = Vec::new();
        for i in 1..ys.len() {
            let (y0, y1) = (ys[i - 1], ys[i]);
            let crosses = if rising {
                y0 < threshold && y1 >= threshold
            } else {
                y0 > threshold && y1 <= threshold
            };
            if crosses && y1 != y0 {
                let frac = (threshold - y0) / (y1 - y0);
                out.push(self.times[i - 1] + frac * (self.times[i] - self.times[i - 1]));
            }
        }
        Ok(out)
    }

    /// Average oscillation period of `name`, from rising crossings of
    /// `threshold`. The first `skip` crossings are discarded (start-up
    /// transient), and at least two crossings must remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Measurement`] when too few crossings exist.
    pub fn period(&self, name: &str, threshold: f64, skip: usize) -> Result<f64> {
        let cr = self.crossings(name, threshold, true)?;
        if cr.len() < skip + 2 {
            return Err(SimError::Measurement {
                message: format!(
                    "need at least {} rising crossings of {threshold} on `{name}`, found {}",
                    skip + 2,
                    cr.len()
                ),
            });
        }
        let used = &cr[skip..];
        Ok((used[used.len() - 1] - used[0]) / (used.len() - 1) as f64)
    }

    /// Average oscillation frequency (reciprocal of [`Waveform::period`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Waveform::period`].
    pub fn frequency(&self, name: &str, threshold: f64, skip: usize) -> Result<f64> {
        Ok(1.0 / self.period(name, threshold, skip)?)
    }

    /// Time-weighted average of a signal over `[t_start, t_end]`
    /// (trapezoidal integration over the recorded points).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for an unknown signal or
    /// [`SimError::Measurement`] when the window is empty or outside the
    /// recording.
    pub fn average(&self, name: &str, t_start: f64, t_end: f64) -> Result<f64> {
        let ys = self.signal(name)?;
        if t_end <= t_start {
            return Err(SimError::Measurement {
                message: format!("empty averaging window [{t_start:.3e}, {t_end:.3e}]"),
            });
        }
        if self.times.len() < 2
            || t_start < self.times[0]
            || t_end > *self.times.last().expect("non-empty")
        {
            return Err(SimError::Measurement {
                message: "averaging window extends outside the recording".to_string(),
            });
        }
        let mut integral = 0.0;
        let mut t_prev = t_start;
        let mut y_prev = self.sample_at(name, t_start)?;
        for (i, &t) in self.times.iter().enumerate() {
            if t <= t_start {
                continue;
            }
            if t >= t_end {
                break;
            }
            integral += 0.5 * (y_prev + ys[i]) * (t - t_prev);
            t_prev = t;
            y_prev = ys[i];
        }
        let y_end = self.sample_at(name, t_end)?;
        integral += 0.5 * (y_prev + y_end) * (t_end - t_prev);
        Ok(integral / (t_end - t_start))
    }

    /// Minimum and maximum of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for an unknown signal or
    /// [`SimError::Measurement`] on an empty waveform.
    pub fn extrema(&self, name: &str) -> Result<(f64, f64)> {
        let ys = self.signal(name)?;
        if ys.is_empty() {
            return Err(SimError::Measurement {
                message: "waveform is empty".to_string(),
            });
        }
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok((min, max))
    }

    /// 10 %–90 % rise time of the first rising edge after `after`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Measurement`] when no complete edge exists.
    pub fn rise_time(&self, name: &str, after: f64) -> Result<f64> {
        let (lo, hi) = self.extrema(name)?;
        let t10 = lo + 0.1 * (hi - lo);
        let t90 = lo + 0.9 * (hi - lo);
        let c10: Vec<f64> = self
            .crossings(name, t10, true)?
            .into_iter()
            .filter(|&t| t >= after)
            .collect();
        let c90: Vec<f64> = self
            .crossings(name, t90, true)?
            .into_iter()
            .filter(|&t| t >= after)
            .collect();
        for &a in &c10 {
            if let Some(&b) = c90.iter().find(|&&b| b > a) {
                return Ok(b - a);
            }
        }
        Err(SimError::Measurement {
            message: format!("no complete rising edge on `{name}` after {after:.3e} s"),
        })
    }

    /// Serializes the waveform as CSV (`time` column then one column per
    /// signal), suitable for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("time");
        for n in &self.names {
            let _ = write!(out, ",{n}");
        }
        out.push('\n');
        for (i, &t) in self.times.iter().enumerate() {
            let _ = write!(out, "{t:.6e}");
            for col in &self.data {
                let _ = write!(out, ",{:.6e}", col[i]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::Stimulus;

    fn sine_waveform() -> Waveform {
        // A pure 100 MHz sine on node "out".
        let mut ckt = Circuit::new();
        let _ = ckt.node("out");
        let mut w = Waveform::for_circuit(&ckt);
        let f = 100e6;
        for i in 0..=1000 {
            let t = i as f64 * 1e-10; // 100 ns total, 10 points per period
            w.push(t, &[(2.0 * std::f64::consts::PI * f * t).sin()]);
        }
        w
    }

    #[test]
    fn period_of_sine_recovered() {
        let w = sine_waveform();
        let p = w.period("out", 0.0, 2).unwrap();
        assert!((p - 10e-9).abs() < 1e-11, "period {p}");
        let f = w.frequency("out", 0.0, 2).unwrap();
        assert!((f - 100e6).abs() < 1e5);
    }

    #[test]
    fn crossings_alternate_by_direction() {
        let w = sine_waveform();
        let up = w.crossings("out", 0.0, true).unwrap();
        let down = w.crossings("out", 0.0, false).unwrap();
        assert!(!up.is_empty() && !down.is_empty());
        // Rising and falling crossings interleave half a period apart.
        assert!((down[0] - up[0]).abs() - 5e-9 < 1e-10);
    }

    #[test]
    fn extrema_and_sampling() {
        let w = sine_waveform();
        let (lo, hi) = w.extrema("out").unwrap();
        assert!(lo < -0.99 && hi > 0.99);
        let v = w.sample_at("out", 2.5e-9).unwrap();
        assert!((v - 1.0).abs() < 2e-2, "quarter period ≈ peak: {v}");
        // Clamped outside the span.
        assert_eq!(
            w.sample_at("out", -1.0).unwrap(),
            w.signal("out").unwrap()[0]
        );
    }

    #[test]
    fn unknown_signal_reported() {
        let w = sine_waveform();
        assert!(matches!(
            w.signal("nope"),
            Err(SimError::UnknownNode { .. })
        ));
    }

    #[test]
    fn too_few_crossings_is_a_measurement_error() {
        let mut ckt = Circuit::new();
        let _ = ckt.node("out");
        let mut w = Waveform::for_circuit(&ckt);
        w.push(0.0, &[0.0]);
        w.push(1.0, &[1.0]);
        assert!(matches!(
            w.period("out", 0.5, 0),
            Err(SimError::Measurement { .. })
        ));
    }

    #[test]
    fn average_of_square_wave_is_its_duty_value() {
        let mut ckt = Circuit::new();
        let _ = ckt.node("out");
        let mut w = Waveform::for_circuit(&ckt);
        // 25 % duty square wave between 0 and 4 → average 1.
        for i in 0..=400 {
            let t = i as f64 * 1e-9;
            let phase = (i % 4) as f64;
            w.push(t, &[if phase < 1.0 { 4.0 } else { 0.0 }]);
        }
        let avg = w.average("out", 0.0, 400e-9).unwrap();
        assert!((avg - 1.0).abs() < 0.1, "avg {avg}");
        // Constant sub-window.
        let flat = w.average("out", 101e-9, 103e-9).unwrap();
        assert!(flat < 0.6, "inside the low phase: {flat}");
        assert!(w.average("out", 10e-9, 5e-9).is_err());
        assert!(w.average("out", -1.0, 5e-9).is_err());
    }

    #[test]
    fn rise_time_of_ramp() {
        let mut ckt = Circuit::new();
        let _ = ckt.node("out");
        let mut w = Waveform::for_circuit(&ckt);
        // 0→1 linear ramp over 100 ns: 10–90 % takes 80 ns.
        for i in 0..=100 {
            let t = i as f64 * 1e-9;
            w.push(t, &[(t / 100e-9).min(1.0)]);
        }
        let tr = w.rise_time("out", 0.0).unwrap();
        assert!((tr - 80e-9).abs() < 1e-9, "rise {tr}");
    }

    #[test]
    fn branch_current_signal_named_after_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("VDD", a, Circuit::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        let w = Waveform::for_circuit(&ckt);
        assert_eq!(w.names(), &["a".to_string(), "i(VDD)".to_string()]);
        assert!(w.is_empty());
    }

    #[test]
    fn csv_round_trippable_shape() {
        let w = sine_waveform();
        let csv = w.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,out");
        assert_eq!(lines.len(), w.len() + 1);
        assert!(lines[1].contains(','));
    }
}
