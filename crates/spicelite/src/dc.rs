//! DC operating-point analysis: Newton–Raphson with gmin and source
//! stepping.
//!
//! The solver relinearizes the circuit around the current guess
//! ([`crate::mna::assemble`]), solves the linear system, damps the update
//! and iterates to convergence. When plain Newton fails (strongly
//! nonlinear bias points), two homotopies are tried in order: *gmin
//! stepping* (start with large leak conductances and relax them) and
//! *source stepping* (ramp the supplies from zero).

use crate::circuit::{Circuit, NodeId};
use crate::error::{Result, SimError};
use crate::linalg::vec_norm_inf;
use crate::mna::{assemble, node_voltage, CapCompanion};

/// Tolerances and iteration limits of the Newton solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Maximum Newton iterations per attempt.
    pub max_iterations: usize,
    /// Absolute voltage tolerance, volts.
    pub vtol: f64,
    /// Relative tolerance against the solution magnitude.
    pub reltol: f64,
    /// Maximum per-unknown update per iteration (damping), volts.
    pub max_step: f64,
    /// Baseline leak conductance, siemens.
    pub gmin: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 200,
            vtol: 1e-6,
            reltol: 1e-4,
            max_step: 0.5,
            gmin: 1e-12,
        }
    }
}

/// A solved operating point (node voltages + source branch currents).
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    x: Vec<f64>,
    n_nodes: usize,
}

impl DcSolution {
    pub(crate) fn new(x: Vec<f64>, n_nodes: usize) -> Self {
        DcSolution { x, n_nodes }
    }

    /// The raw unknown vector (node voltages then branch currents).
    #[inline]
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }

    /// Voltage of a node by id.
    #[inline]
    pub fn node_voltage(&self, node: NodeId) -> f64 {
        node_voltage(&self.x, node)
    }

    /// Voltage of a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for an unknown name.
    pub fn voltage(&self, circuit: &Circuit, name: &str) -> Result<f64> {
        Ok(self.node_voltage(circuit.find_node(name)?))
    }

    /// Branch current of the `k`-th voltage source (device order).
    /// Positive current flows *into* the source's positive terminal
    /// (SPICE convention: a sourcing supply reads negative).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn source_current(&self, k: usize) -> f64 {
        self.x[self.n_nodes + k]
    }
}

/// One full Newton solve (shared by DC and each transient step).
///
/// `time`/`cap_companions` select the analysis context; see
/// [`crate::mna::assemble`].
pub(crate) fn newton_solve(
    circuit: &Circuit,
    x0: &[f64],
    time: Option<f64>,
    cap_companions: Option<&[CapCompanion]>,
    gmin: f64,
    source_scale: f64,
    opts: &SolverOptions,
) -> Result<Vec<f64>> {
    let mut x = x0.to_vec();
    if x.is_empty() {
        return Ok(x);
    }
    for _iter in 0..opts.max_iterations {
        let mut sys = assemble(circuit, &x, time, cap_companions, gmin, source_scale);
        let mut rhs = sys.z.clone();
        sys.a.solve_in_place(&mut rhs)?;
        // Damped update.
        let mut max_delta = 0.0_f64;
        for (xi, xn) in x.iter_mut().zip(&rhs) {
            let mut delta = xn - *xi;
            if delta > opts.max_step {
                delta = opts.max_step;
            } else if delta < -opts.max_step {
                delta = -opts.max_step;
            }
            max_delta = max_delta.max(delta.abs());
            *xi += delta;
        }
        if max_delta < opts.vtol + opts.reltol * vec_norm_inf(&x) {
            return Ok(x);
        }
    }
    Err(SimError::NoConvergence {
        analysis: if time.is_some() {
            "transient step"
        } else {
            "DC"
        },
        iterations: opts.max_iterations,
    })
}

/// Solves the DC operating point of `circuit`.
///
/// Initial conditions declared on the circuit seed the Newton guess (they
/// are not enforced as constraints in DC; use them to pick a stable
/// equilibrium of multistable circuits).
///
/// # Errors
///
/// Returns [`SimError::NoConvergence`] when Newton, gmin stepping and
/// source stepping all fail, or [`SimError::SingularMatrix`] for a
/// structurally defective circuit.
pub fn solve_dc(circuit: &Circuit, opts: &SolverOptions) -> Result<DcSolution> {
    let n = circuit.unknown_count();
    let n_nodes = circuit.unknown_node_count();
    let mut x0 = vec![0.0; n];
    for &(node, v) in circuit.initial_conditions() {
        if !node.is_ground() {
            x0[node.index() - 1] = v;
        }
    }

    // Plain Newton.
    if let Ok(x) = newton_solve(circuit, &x0, None, None, opts.gmin, 1.0, opts) {
        return Ok(DcSolution::new(x, n_nodes));
    }

    // Gmin stepping: solve with a large leak, relax geometrically.
    let mut x = x0.clone();
    let mut gmin = 1e-2;
    let mut ok = true;
    while gmin >= opts.gmin {
        match newton_solve(circuit, &x, None, None, gmin, 1.0, opts) {
            Ok(sol) => x = sol,
            Err(_) => {
                ok = false;
                break;
            }
        }
        gmin /= 100.0;
    }
    if ok {
        if let Ok(sol) = newton_solve(circuit, &x, None, None, opts.gmin, 1.0, opts) {
            return Ok(DcSolution::new(sol, n_nodes));
        }
    }

    // Source stepping: ramp the supplies from 10 % to 100 %.
    let mut x = x0;
    for step in 1..=10 {
        let scale = step as f64 / 10.0;
        x = newton_solve(circuit, &x, None, None, opts.gmin, scale, opts).map_err(|_| {
            SimError::NoConvergence {
                analysis: "DC",
                iterations: opts.max_iterations,
            }
        })?;
    }
    Ok(DcSolution::new(x, n_nodes))
}

/// Sweeps the DC value of the named voltage source over `values`,
/// solving the operating point at each step (warm-started from the
/// previous solution, as SPICE's `.dc` does).
///
/// Returns `(value, solution)` pairs in sweep order.
///
/// # Errors
///
/// Returns [`SimError::InvalidDevice`] when the source does not exist,
/// or propagates solver failures at any sweep point.
pub fn dc_sweep(
    circuit: &Circuit,
    source: &str,
    values: &[f64],
    opts: &SolverOptions,
) -> Result<Vec<(f64, DcSolution)>> {
    let mut work = circuit.clone();
    let n_nodes = work.unknown_node_count();
    let mut out = Vec::with_capacity(values.len());
    let mut seed: Option<Vec<f64>> = None;
    for &v in values {
        work.set_vsource_value(source, v)?;
        let x0 = match &seed {
            Some(x) => x.clone(),
            None => {
                let mut x0 = vec![0.0; work.unknown_count()];
                for &(node, ic) in work.initial_conditions() {
                    if !node.is_ground() {
                        x0[node.index() - 1] = ic;
                    }
                }
                x0
            }
        };
        // Warm-started Newton; fall back to the full homotopy ladder.
        let x = match newton_solve(&work, &x0, None, None, opts.gmin, 1.0, opts) {
            Ok(x) => x,
            Err(_) => solve_dc(&work, opts)?.unknowns().to_vec(),
        };
        seed = Some(x.clone());
        out.push((v, DcSolution::new(x, n_nodes)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::{models_um350, Stimulus};

    #[test]
    fn resistor_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(3.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 2e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&ckt, "b").unwrap() - 1.0).abs() < 1e-5);
        assert!((op.source_current(0) + 1e-3).abs() < 1e-7);
    }

    #[test]
    fn nmos_diode_connected_bias() {
        // Diode-connected NMOS pulled up through a resistor: the gate
        // voltage settles a bit above Vth.
        let (nmos, _) = models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        ckt.add_resistor("R1", vdd, d, 100e3).unwrap();
        ckt.add_mosfet("M1", d, d, Circuit::GROUND, nmos.clone(), 2e-6, 0.35e-6)
            .unwrap();
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        let vd = op.voltage(&ckt, "d").unwrap();
        assert!(vd > nmos.vto && vd < 1.5, "v(d) = {vd}");
        // KCL check: resistor current equals device current.
        let ir = (3.3 - vd) / 100e3;
        assert!(ir > 1e-6, "device is conducting");
    }

    #[test]
    fn cmos_inverter_transfer_extremes() {
        let (nmos, pmos) = models_um350();
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inn = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
                .unwrap();
            ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(vin))
                .unwrap();
            ckt.add_mosfet("MN", out, inn, Circuit::GROUND, nmos.clone(), 1e-6, 0.35e-6)
                .unwrap();
            ckt.add_mosfet("MP", out, inn, vdd, pmos.clone(), 2e-6, 0.35e-6)
                .unwrap();
            ckt
        };
        let lo = build(0.0);
        let op = solve_dc(&lo, &SolverOptions::default()).unwrap();
        assert!(
            (op.voltage(&lo, "out").unwrap() - 3.3).abs() < 0.01,
            "input low → output high"
        );
        let hi = build(3.3);
        let op = solve_dc(&hi, &SolverOptions::default()).unwrap();
        assert!(
            op.voltage(&hi, "out").unwrap() < 0.01,
            "input high → output low"
        );
    }

    #[test]
    fn cmos_inverter_switching_threshold_moves_with_ratio() {
        // A stronger PMOS pushes the switching threshold upward.
        let (nmos, pmos) = models_um350();
        let vm = |wp: f64| {
            // Bisection on the input for v(out) = vdd/2.
            let eval = |vin: f64| {
                let mut ckt = Circuit::new();
                let vdd = ckt.node("vdd");
                let inn = ckt.node("in");
                let out = ckt.node("out");
                ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
                    .unwrap();
                ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(vin))
                    .unwrap();
                ckt.add_mosfet("MN", out, inn, Circuit::GROUND, nmos.clone(), 1e-6, 0.35e-6)
                    .unwrap();
                ckt.add_mosfet("MP", out, inn, vdd, pmos.clone(), wp, 0.35e-6)
                    .unwrap();
                let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
                op.voltage(&ckt, "out").unwrap()
            };
            let (mut lo, mut hi) = (0.5, 2.8);
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                if eval(mid) > 1.65 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        let vm_weak = vm(1e-6);
        let vm_strong = vm(4e-6);
        assert!(
            vm_strong > vm_weak + 0.1,
            "weak {vm_weak} strong {vm_strong}"
        );
        // Both thresholds are inside the rails, away from them.
        assert!(vm_weak > 0.8 && vm_strong < 2.5);
    }

    #[test]
    fn initial_conditions_select_latch_state() {
        // Two cross-coupled inverters (a latch). Seeding picks the state.
        let (nmos, pmos) = models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        for (name, inn, out) in [("i1", q, qb), ("i2", qb, q)] {
            ckt.add_mosfet(
                format!("MN{name}"),
                out,
                inn,
                Circuit::GROUND,
                nmos.clone(),
                1e-6,
                0.35e-6,
            )
            .unwrap();
            ckt.add_mosfet(
                format!("MP{name}"),
                out,
                inn,
                vdd,
                pmos.clone(),
                2e-6,
                0.35e-6,
            )
            .unwrap();
        }
        ckt.set_initial_condition(q, 3.3);
        ckt.set_initial_condition(qb, 0.0);
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        let (vq, vqb) = (
            op.voltage(&ckt, "q").unwrap(),
            op.voltage(&ckt, "qb").unwrap(),
        );
        assert!(vq > 3.0 && vqb < 0.3, "latched high/low: q={vq} qb={vqb}");
    }

    #[test]
    fn floating_node_is_singular_without_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        // b floats entirely — only the solver's gmin ties it down.
        let _ = b;
        // With gmin the solve still succeeds (gmin ties b to ground).
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&ckt, "a").unwrap() - 1.0).abs() < 1e-6);
        assert!(op.voltage(&ckt, "b").unwrap().abs() < 1e-6);
    }

    #[test]
    fn dc_sweep_traces_the_inverter_vtc() {
        let (nmos, pmos) = models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(0.0))
            .unwrap();
        ckt.add_mosfet("MN", out, inn, Circuit::GROUND, nmos, 1e-6, 0.35e-6)
            .unwrap();
        ckt.add_mosfet("MP", out, inn, vdd, pmos, 2e-6, 0.35e-6)
            .unwrap();
        let values: Vec<f64> = (0..=33).map(|i| 3.3 * i as f64 / 33.0).collect();
        let sweep = dc_sweep(&ckt, "VIN", &values, &SolverOptions::default()).unwrap();
        assert_eq!(sweep.len(), 34);
        // Monotone falling VTC from rail to rail.
        let outs: Vec<f64> = sweep
            .iter()
            .map(|(_, s)| s.voltage(&ckt, "out").unwrap())
            .collect();
        assert!(outs[0] > 3.29);
        assert!(outs[33] < 0.01);
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "monotone VTC");
        }
        // The original circuit is untouched by the sweep.
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&ckt, "out").unwrap() - 3.3).abs() < 0.01);
    }

    #[test]
    fn dc_sweep_unknown_source_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(
            dc_sweep(&ckt, "nope", &[1.0], &SolverOptions::default()),
            Err(SimError::InvalidDevice { .. })
        ));
    }

    #[test]
    fn isource_into_resistor_sets_ohms_law_voltage() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, 1e-3).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 2.2e3).unwrap();
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&ckt, "a").unwrap() - 2.2).abs() < 1e-6);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let ckt = Circuit::new();
        let op = solve_dc(&ckt, &SolverOptions::default()).unwrap();
        assert!(op.unknowns().is_empty());
    }
}
