//! Modified nodal analysis: assembling the linearized system.
//!
//! Unknown vector layout: node voltages for nodes `1..n` (ground excluded)
//! followed by one branch current per voltage source, in device order.
//!
//! Every call to [`assemble`] rebuilds the matrix for the supplied
//! operating-point guess `x` (Newton–Raphson relinearizes nonlinear
//! devices each iteration). Capacitors are stamped from caller-provided
//! Norton companions so that DC (open), backward-Euler and trapezoidal
//! integration all share this code path.

use crate::circuit::{Circuit, NodeId};
use crate::devices::{eval_nmos, Device, MosPolarity};
use crate::linalg::Matrix;

/// Norton companion model of one capacitor for the current time step:
/// `i = geq·v + jeq` (with `v` the voltage across the capacitor).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CapCompanion {
    /// Companion conductance, siemens.
    pub geq: f64,
    /// Companion current source, amperes.
    pub jeq: f64,
}

/// The assembled linear system `A·x = z`.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    /// System matrix.
    pub a: Matrix,
    /// Right-hand side.
    pub z: Vec<f64>,
    n_nodes: usize,
}

impl MnaSystem {
    fn new(n_unknowns: usize, n_nodes: usize) -> Self {
        MnaSystem {
            a: Matrix::zeros(n_unknowns, n_unknowns),
            z: vec![0.0; n_unknowns],
            n_nodes,
        }
    }

    #[inline]
    fn row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    pub fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        if let Some(i) = self.row(a) {
            self.a.add(i, i, g);
        }
        if let Some(j) = self.row(b) {
            self.a.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (self.row(a), self.row(b)) {
            self.a.add(i, j, -g);
            self.a.add(j, i, -g);
        }
    }

    /// Stamps a current source driving `amps` from node `a` into node `b`
    /// (i.e. the current leaves `a` and enters `b`).
    pub fn stamp_current(&mut self, a: NodeId, b: NodeId, amps: f64) {
        if let Some(i) = self.row(a) {
            self.z[i] -= amps;
        }
        if let Some(j) = self.row(b) {
            self.z[j] += amps;
        }
    }

    /// Stamps a transconductance: a current `g·(vc − vd)` flowing from
    /// node `a` into node `b`.
    pub fn stamp_transconductance(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId, g: f64) {
        for (node, sign) in [(a, 1.0), (b, -1.0)] {
            if let Some(i) = self.row(node) {
                if let Some(k) = self.row(c) {
                    self.a.add(i, k, sign * g);
                }
                if let Some(k) = self.row(d) {
                    self.a.add(i, k, -sign * g);
                }
            }
        }
    }

    /// Stamps a voltage source occupying branch row `branch_row`
    /// (absolute row index in the unknown vector) forcing
    /// `v(pos) − v(neg) = volts`.
    pub fn stamp_vsource(&mut self, branch_row: usize, pos: NodeId, neg: NodeId, volts: f64) {
        if let Some(i) = self.row(pos) {
            self.a.add(i, branch_row, 1.0);
            self.a.add(branch_row, i, 1.0);
        }
        if let Some(j) = self.row(neg) {
            self.a.add(j, branch_row, -1.0);
            self.a.add(branch_row, j, -1.0);
        }
        self.z[branch_row] = volts;
    }

    /// Number of unknown node voltages (rows before the branch block).
    #[inline]
    pub fn node_rows(&self) -> usize {
        self.n_nodes
    }
}

/// Reads the voltage of `node` from an unknown vector.
#[inline]
pub fn node_voltage(x: &[f64], node: NodeId) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.index() - 1]
    }
}

/// Assembles the MNA system for the guess `x`.
///
/// * `time`: `None` for DC (time-varying sources evaluate at `t = 0`,
///   capacitors open), `Some(t)` for a transient step.
/// * `cap_companions`: one entry per capacitor device in device order
///   (required iff `time.is_some()`).
/// * `gmin`: leak conductance stamped from every node to ground and
///   across every MOSFET channel (convergence aid).
/// * `source_scale`: multiplier on every independent source (source
///   stepping uses values < 1).
///
/// # Panics
///
/// Panics if `cap_companions` is shorter than the number of capacitors
/// when a transient step is assembled.
pub fn assemble(
    circuit: &Circuit,
    x: &[f64],
    time: Option<f64>,
    cap_companions: Option<&[CapCompanion]>,
    gmin: f64,
    source_scale: f64,
) -> MnaSystem {
    let n_nodes = circuit.unknown_node_count();
    let n_unknowns = circuit.unknown_count();
    let mut sys = MnaSystem::new(n_unknowns.max(1), n_nodes);
    let temp = circuit.temperature();

    // Convergence leak on every node.
    if gmin > 0.0 {
        for i in 1..circuit.node_count() {
            sys.stamp_conductance(NodeId(i), NodeId::GROUND, gmin);
        }
    }

    let mut branch_row = n_nodes;
    let mut cap_index = 0usize;
    for dev in circuit.devices() {
        match dev {
            Device::Resistor { a, b, ohms, .. } => {
                sys.stamp_conductance(*a, *b, 1.0 / ohms);
            }
            Device::Capacitor { a, b, .. } => {
                if time.is_some() {
                    let comp = cap_companions
                        .expect("transient assembly requires capacitor companions")[cap_index];
                    sys.stamp_conductance(*a, *b, comp.geq);
                    sys.stamp_current(*a, *b, comp.jeq);
                }
                cap_index += 1;
            }
            Device::Vsource {
                pos, neg, stimulus, ..
            } => {
                let t = time.unwrap_or(0.0);
                sys.stamp_vsource(branch_row, *pos, *neg, source_scale * stimulus.value_at(t));
                branch_row += 1;
            }
            Device::Isource { from, to, amps, .. } => {
                sys.stamp_current(*from, *to, source_scale * amps);
            }
            Device::Mosfet {
                d,
                g,
                s,
                model,
                w,
                l,
                ..
            } => {
                let sign = match model.polarity {
                    MosPolarity::Nmos => 1.0,
                    MosPolarity::Pmos => -1.0,
                };
                // Work in a frame where the device is N-type: mirror all
                // potentials for PMOS. Conductance stamps are invariant
                // under mirroring; the companion current flips sign.
                let vd = sign * node_voltage(x, *d);
                let vg = sign * node_voltage(x, *g);
                let vs = sign * node_voltage(x, *s);
                let reversed = vd < vs;
                let (nd, ns, vdx, vsx) = if reversed {
                    (*s, *d, vs, vd)
                } else {
                    (*d, *s, vd, vs)
                };
                let beta = model.kp_at(temp) * w / l;
                let vth = model.vth(temp);
                let (op, _region) = eval_nmos(vdx, vg, vsx, beta, vth, model.lambda);
                debug_assert!(!op.reversed, "frame already oriented");
                // i(nd→ns) = gm·(vg − v_ns) + gds·(v_nd − v_ns) + sign·jeq
                let jeq = op.ids - op.gm * (vg - vsx) - op.gds * (vdx - vsx);
                sys.stamp_conductance(nd, ns, op.gds);
                sys.stamp_transconductance(nd, ns, *g, ns, op.gm);
                sys.stamp_current(nd, ns, sign * jeq);
                // Channel leak keeps the matrix regular when the device
                // is cut off.
                if gmin > 0.0 {
                    sys.stamp_conductance(*d, *s, gmin);
                }
            }
        }
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{models_um350, Stimulus};

    #[test]
    fn resistor_divider_assembles_and_solves() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let x = vec![0.0; ckt.unknown_count()];
        let mut sys = assemble(&ckt, &x, None, None, 1e-12, 1.0);
        let mut rhs = sys.z.clone();
        sys.a.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 2.0).abs() < 1e-9, "v(a)");
        assert!((rhs[1] - 1.0).abs() < 1e-6, "v(b)");
        // Branch current: 1 mA flowing out of the source's positive
        // terminal through R1–R2 (MNA convention: current pos→neg inside
        // the source, so the unknown is −1 mA).
        assert!((rhs[2] + 1e-3).abs() < 1e-8, "i(V1) = {}", rhs[2]);
    }

    #[test]
    fn current_stamp_sign_convention() {
        // 1 A pushed into node b through a 1 Ω resistor to ground: v(b) = 1 V.
        let mut ckt = Circuit::new();
        let b = ckt.node("b");
        ckt.add_resistor("R", b, Circuit::GROUND, 1.0).unwrap();
        let x = vec![0.0; ckt.unknown_count()];
        let mut sys = assemble(&ckt, &x, None, None, 0.0, 1.0);
        sys.stamp_current(Circuit::GROUND, b, 1.0);
        let mut rhs = sys.z.clone();
        sys.a.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacitor_open_in_dc_companion_in_transient() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let x = vec![0.0; ckt.unknown_count()];
        let dc = assemble(&ckt, &x, None, None, 0.0, 1.0);
        assert!(
            (dc.a[(0, 0)] - 1e-3).abs() < 1e-12,
            "only the resistor in DC"
        );
        let comps = [CapCompanion {
            geq: 2e-3,
            jeq: 0.0,
        }];
        let tr = assemble(&ckt, &x, Some(1e-9), Some(&comps), 0.0, 1.0);
        assert!((tr.a[(0, 0)] - 3e-3).abs() < 1e-12, "resistor + companion");
    }

    #[test]
    fn nmos_source_follower_stamp_directions() {
        // NMOS: drain at 3.3 V, gate at 2 V, source through 10 kΩ to
        // ground. The source node must settle positive (device conducts
        // d→s, raising the source).
        let (nmos, _) = models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let s = ckt.node("s");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        ckt.add_vsource("VG", g, Circuit::GROUND, Stimulus::Dc(2.0))
            .unwrap();
        ckt.add_mosfet("M1", vdd, g, s, nmos, 10e-6, 0.35e-6)
            .unwrap();
        ckt.add_resistor("RS", s, Circuit::GROUND, 10e3).unwrap();
        // One Newton step from a reasonable guess must push v(s) upward.
        let mut x = vec![0.0; ckt.unknown_count()];
        x[0] = 3.3;
        x[1] = 2.0;
        let mut sys = assemble(&ckt, &x, None, None, 1e-12, 1.0);
        let mut rhs = sys.z.clone();
        sys.a.solve_in_place(&mut rhs).unwrap();
        let vs_new = rhs[2];
        assert!(vs_new > 0.1, "source node must rise, got {vs_new}");
    }

    #[test]
    fn source_scale_scales_rhs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let x = vec![0.0; ckt.unknown_count()];
        let sys = assemble(&ckt, &x, None, None, 0.0, 0.5);
        assert!((sys.z[1] - 1.0).abs() < 1e-12, "half the 2 V source");
    }

    #[test]
    fn node_voltage_helper() {
        let x = [1.5, 2.5];
        assert_eq!(node_voltage(&x, NodeId::GROUND), 0.0);
        assert_eq!(node_voltage(&x, NodeId(1)), 1.5);
        assert_eq!(node_voltage(&x, NodeId(2)), 2.5);
    }
}
