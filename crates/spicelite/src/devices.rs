//! Circuit elements: passives, sources and the Level-1 MOSFET.
//!
//! The MOSFET is a Shichman–Hodges (SPICE Level-1) model extended with
//! the two first-order temperature dependences the sensor physics needs:
//! a linear threshold temperature coefficient and a power-law mobility
//! roll-off. That matches the analytical layer in `tsense-core`, so the
//! transistor-level and closed-form paths describe the same silicon.

use crate::circuit::NodeId;

/// Reference temperature for nominal device parameters, in kelvin (27 °C).
pub const T_REF_K: f64 = 300.15;

/// Time-dependent value of an independent voltage source.
#[derive(Debug, Clone, PartialEq)]
pub enum Stimulus {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse train.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width (time at `v2`), seconds.
        width: f64,
        /// Repetition period, seconds (0 ⇒ single pulse).
        period: f64,
    },
    /// Piece-wise linear waveform as `(time, value)` breakpoints sorted by
    /// time. Held at the first/last value outside the breakpoint span.
    Pwl(Vec<(f64, f64)>),
}

impl Stimulus {
    /// Source value at simulation time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise == 0.0 {
                        return *v2;
                    }
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    if *fall == 0.0 {
                        return *v1;
                    }
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Stimulus::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// `true` when the source never changes (a DC bias).
    pub fn is_static(&self) -> bool {
        match self {
            Stimulus::Dc(_) => true,
            Stimulus::Pulse { .. } => false,
            Stimulus::Pwl(points) => points.len() <= 1,
        }
    }
}

/// MOS device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 MOSFET model card with temperature extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Model name as referenced by instances.
    pub name: String,
    /// Polarity.
    pub polarity: MosPolarity,
    /// Threshold-voltage magnitude at `T_REF_K`, volts.
    pub vto: f64,
    /// Transconductance parameter `KP = µ·Cox` at `T_REF_K`, A/V².
    pub kp: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Threshold temperature coefficient `κ` (magnitude decreases by `κ`
    /// per kelvin), V/K.
    pub vto_tempco: f64,
    /// Mobility power-law exponent `m` in `µ ∝ T^(−m)`.
    pub mobility_exp: f64,
    /// Gate-source/gate-drain overlap + channel capacitance per metre of
    /// width, F/m.
    pub cg_per_width: f64,
    /// Drain/source junction capacitance per metre of width, F/m.
    pub cj_per_width: f64,
}

impl MosModel {
    /// Threshold magnitude at junction temperature `t_celsius`.
    #[inline]
    pub fn vth(&self, t_celsius: f64) -> f64 {
        self.vto - self.vto_tempco * (t_celsius + 273.15 - T_REF_K)
    }

    /// Transconductance parameter at junction temperature `t_celsius`.
    #[inline]
    pub fn kp_at(&self, t_celsius: f64) -> f64 {
        self.kp * ((t_celsius + 273.15) / T_REF_K).powf(-self.mobility_exp)
    }
}

/// Small-signal linearization of a MOSFET at an operating point, ready
/// for MNA stamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain current flowing drain → source (signed, positive into the
    /// drain terminal for NMOS conduction).
    pub ids: f64,
    /// Transconductance ∂I/∂Vgs.
    pub gm: f64,
    /// Output conductance ∂I/∂Vds.
    pub gds: f64,
    /// `true` when drain and source were swapped internally (Vds < 0).
    pub reversed: bool,
}

/// Conduction region of a MOSFET operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// Off: `Vgs ≤ Vth`.
    Cutoff,
    /// Triode/linear: `Vds < Vgs − Vth`.
    Triode,
    /// Saturation: `Vds ≥ Vgs − Vth`.
    Saturation,
}

/// Evaluates the Level-1 equations for an *N-type* device given terminal
/// voltages (the PMOS case is handled by the caller via sign reflection).
/// `beta = KP(T)·W/L`, `vth = Vth(T)`. Returns the linearization and the
/// region.
pub fn eval_nmos(
    vd: f64,
    vg: f64,
    vs: f64,
    beta: f64,
    vth: f64,
    lambda: f64,
) -> (MosOperatingPoint, MosRegion) {
    // The Level-1 device is symmetric: conduct from the higher of (d, s).
    let reversed = vd < vs;
    let (vd_e, vs_e) = if reversed { (vs, vd) } else { (vd, vs) };
    let vgs = vg - vs_e;
    let vds = vd_e - vs_e;
    let vov = vgs - vth;

    let (mut ids, mut gm, mut gds, region);
    if vov <= 0.0 {
        ids = 0.0;
        gm = 0.0;
        gds = 0.0;
        region = MosRegion::Cutoff;
    } else if vds < vov {
        let clm = 1.0 + lambda * vds;
        ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
        gm = beta * vds * clm;
        gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * lambda;
        region = MosRegion::Triode;
    } else {
        let clm = 1.0 + lambda * vds;
        ids = 0.5 * beta * vov * vov * clm;
        gm = beta * vov * clm;
        gds = 0.5 * beta * vov * vov * lambda;
        region = MosRegion::Saturation;
    }
    // Numerical hygiene: never let the linearization go exactly flat.
    const G_FLOOR: f64 = 1e-12;
    if gds < G_FLOOR {
        gds = G_FLOOR;
    }
    if gm < 0.0 {
        gm = 0.0;
    }
    if reversed {
        ids = -ids;
    }
    (
        MosOperatingPoint {
            ids,
            gm,
            gds,
            reversed,
        },
        region,
    )
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (positive).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (positive).
        farads: f64,
    },
    /// Independent voltage source from `pos` to `neg`; adds one MNA
    /// branch unknown (its current).
    Vsource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform.
        stimulus: Stimulus,
    },
    /// Independent DC current source pushing `amps` from `from` into
    /// `to` (through the source externally, i.e. raising `to`'s
    /// potential for positive `amps`).
    Isource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Source current, amperes.
        amps: f64,
    },
    /// Level-1 MOSFET (3-terminal; bulk tied to the source rail
    /// implicitly — see crate docs for the modelling note).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Model card.
        model: MosModel,
        /// Channel width, metres.
        w: f64,
        /// Channel length, metres.
        l: f64,
    },
}

impl Device {
    /// Instance name of the device.
    pub fn name(&self) -> &str {
        match self {
            Device::Resistor { name, .. }
            | Device::Capacitor { name, .. }
            | Device::Vsource { name, .. }
            | Device::Isource { name, .. }
            | Device::Mosfet { name, .. } => name,
        }
    }
}

/// Representative Level-1 model cards for the 0.35 µm-class process used
/// by the paper, aligned with `tsense-core`'s analytical parameters.
pub fn models_um350() -> (MosModel, MosModel) {
    let nmos = MosModel {
        name: "nmos350".to_string(),
        polarity: MosPolarity::Nmos,
        vto: 0.55,
        kp: 170e-6,
        lambda: 0.06,
        // Chosen so the Level-1 square law (alpha = 2) reproduces the
        // alpha-power model's d(ln I)/dT: kappa_L1 = alpha*kappa/2.
        vto_tempco: 0.62e-3,
        // Calibrated (1.55 -> 1.66) so the *simulated* ring reproduces
        // the curvature balance of the alpha-power layer: transient
        // effects absent from the simple delay formula (input slew,
        // triode traversal, short-circuit current) shift the effective
        // exponent the ring sees.
        mobility_exp: 1.66,
        cg_per_width: 2.0e-9,
        cj_per_width: 1.0e-9,
    };
    let pmos = MosModel {
        name: "pmos350".to_string(),
        polarity: MosPolarity::Pmos,
        vto: 0.65,
        kp: 58e-6,
        lambda: 0.08,
        vto_tempco: 1.28e-3,
        mobility_exp: 1.15,
        cg_per_width: 2.0e-9,
        cj_per_width: 1.0e-9,
    };
    (nmos, pmos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_stimulus_constant() {
        let s = Stimulus::Dc(3.3);
        assert_eq!(s.value_at(0.0), 3.3);
        assert_eq!(s.value_at(1.0), 3.3);
        assert!(s.is_static());
    }

    #[test]
    fn pulse_stimulus_shape() {
        let s = Stimulus::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 2e-9,
            period: 10e-9,
        };
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.5e-9) - 0.5).abs() < 1e-12, "mid-rise");
        assert_eq!(s.value_at(3e-9), 1.0);
        assert!((s.value_at(4.5e-9) - 0.5).abs() < 1e-12, "mid-fall");
        assert_eq!(s.value_at(6e-9), 0.0);
        // Periodic repeat.
        assert!((s.value_at(11.5e-9) - 0.5).abs() < 1e-12);
        assert!(!s.is_static());
    }

    #[test]
    fn pwl_stimulus_interpolates_and_clamps() {
        let s = Stimulus::Pwl(vec![(1.0, 0.0), (2.0, 10.0)]);
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.5) - 5.0).abs() < 1e-12);
        assert_eq!(s.value_at(3.0), 10.0);
    }

    #[test]
    fn mos_model_temperature_laws() {
        let (n, _) = models_um350();
        assert!((n.vth(27.0) - 0.55).abs() < 1e-9);
        assert!(n.vth(150.0) < n.vth(27.0));
        assert!((n.kp_at(27.0) - n.kp).abs() / n.kp < 1e-9);
        assert!(n.kp_at(150.0) < n.kp_at(27.0));
    }

    #[test]
    fn nmos_regions() {
        let beta = 1e-3;
        let vth = 0.5;
        // Cutoff.
        let (op, reg) = eval_nmos(1.0, 0.3, 0.0, beta, vth, 0.0);
        assert_eq!(reg, MosRegion::Cutoff);
        assert_eq!(op.ids, 0.0);
        // Triode: vds(0.1) < vov(0.5).
        let (op, reg) = eval_nmos(0.1, 1.0, 0.0, beta, vth, 0.0);
        assert_eq!(reg, MosRegion::Triode);
        let expect = beta * (0.5 * 0.1 - 0.5 * 0.01);
        assert!((op.ids - expect).abs() < 1e-12);
        // Saturation: vds(2.0) > vov(0.5).
        let (op, reg) = eval_nmos(2.0, 1.0, 0.0, beta, vth, 0.0);
        assert_eq!(reg, MosRegion::Saturation);
        assert!((op.ids - 0.5 * beta * 0.25).abs() < 1e-12);
        assert!(op.gm > 0.0 && op.gds >= 1e-12);
    }

    #[test]
    fn nmos_current_continuous_at_triode_saturation_boundary() {
        let beta = 1e-3;
        let vth = 0.5;
        let vov = 0.5; // vg = 1.0, vs = 0
        let below = eval_nmos(vov - 1e-9, 1.0, 0.0, beta, vth, 0.05).0.ids;
        let above = eval_nmos(vov + 1e-9, 1.0, 0.0, beta, vth, 0.05).0.ids;
        assert!((below - above).abs() < 1e-9 * beta.max(1.0));
    }

    #[test]
    fn nmos_symmetric_reversal() {
        // Drain below source: current flips sign, magnitude matches the
        // mirrored bias.
        let beta = 1e-3;
        let vth = 0.5;
        let fwd = eval_nmos(2.0, 2.5, 0.0, beta, vth, 0.0).0;
        let rev = eval_nmos(0.0, 2.5, 2.0, beta, vth, 0.0).0;
        assert!(rev.reversed);
        assert!((fwd.ids + rev.ids).abs() < 1e-15);
    }

    #[test]
    fn gm_matches_finite_difference_in_saturation() {
        let beta = 2e-3;
        let vth = 0.6;
        let lambda = 0.05;
        let h = 1e-7;
        let base = eval_nmos(2.0, 1.5, 0.0, beta, vth, lambda).0;
        let up = eval_nmos(2.0, 1.5 + h, 0.0, beta, vth, lambda).0;
        let gm_fd = (up.ids - base.ids) / h;
        assert!((gm_fd - base.gm).abs() / base.gm < 1e-5);
        let up_d = eval_nmos(2.0 + h, 1.5, 0.0, beta, vth, lambda).0;
        let gds_fd = (up_d.ids - base.ids) / h;
        assert!((gds_fd - base.gds).abs() / base.gds.max(1e-12) < 1e-4);
    }

    #[test]
    fn device_names_accessible() {
        let d = Device::Resistor {
            name: "R1".into(),
            a: NodeId::GROUND,
            b: NodeId::GROUND,
            ohms: 1.0,
        };
        assert_eq!(d.name(), "R1");
    }
}
