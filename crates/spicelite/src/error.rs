//! Error type of the circuit simulator.

use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A device referenced a node that does not exist in the circuit.
    UnknownNode {
        /// The offending node name.
        name: String,
    },
    /// A device parameter was out of its physical domain.
    InvalidDevice {
        /// Device instance name.
        device: String,
        /// Reason the device is rejected.
        reason: String,
    },
    /// The linear solver met a (numerically) singular matrix. Usually a
    /// floating node or an inconsistent source loop.
    SingularMatrix {
        /// Row index at which elimination failed.
        pivot_row: usize,
    },
    /// Newton–Raphson failed to converge within the iteration budget,
    /// even after gmin and source stepping.
    NoConvergence {
        /// What analysis was running.
        analysis: &'static str,
        /// Iterations spent in the final attempt.
        iterations: usize,
    },
    /// The transient integrator could not proceed (time step underflow).
    StepUnderflow {
        /// Simulation time at which the step collapsed, in seconds.
        at_time: f64,
    },
    /// The transient watchdog budget
    /// ([`TranOptions::max_steps`](crate::transient::TranOptions::max_steps))
    /// was exhausted before the run reached its stop time.
    ConvergenceTimeout {
        /// The step budget that was exhausted.
        steps: u64,
        /// Simulation time reached when the budget ran out, in seconds.
        at_time: f64,
    },
    /// A netlist could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A requested measurement could not be extracted from a waveform.
    Measurement {
        /// Description of the problem (e.g. too few crossings).
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            SimError::InvalidDevice { device, reason } => {
                write!(f, "invalid device `{device}`: {reason}")
            }
            SimError::SingularMatrix { pivot_row } => {
                write!(
                    f,
                    "singular matrix at pivot row {pivot_row} (floating node or source loop?)"
                )
            }
            SimError::NoConvergence {
                analysis,
                iterations,
            } => {
                write!(
                    f,
                    "{analysis} analysis failed to converge after {iterations} iterations"
                )
            }
            SimError::StepUnderflow { at_time } => {
                write!(f, "time step underflow at t = {at_time:.3e} s")
            }
            SimError::ConvergenceTimeout { steps, at_time } => {
                write!(
                    f,
                    "transient watchdog: step budget of {steps} exhausted at t = {at_time:.3e} s"
                )
            }
            SimError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            SimError::Measurement { message } => write!(f, "measurement failed: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(SimError::UnknownNode { name: "out".into() }
            .to_string()
            .contains("out"));
        assert!(SimError::SingularMatrix { pivot_row: 3 }
            .to_string()
            .contains("3"));
        assert!(SimError::NoConvergence {
            analysis: "DC",
            iterations: 100
        }
        .to_string()
        .contains("DC"));
        assert!(SimError::Parse {
            line: 7,
            message: "bad token".into()
        }
        .to_string()
        .contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<SimError>();
    }
}
