//! Transient analysis: backward-Euler / trapezoidal integration with
//! adaptive step control.
//!
//! Every accepted step solves the nonlinear circuit with Newton–Raphson
//! around capacitor Norton companions. The step shrinks on Newton failure
//! and grows after a run of easy steps, bounded by `[dt_min, dt_max]`.
//! Ring oscillators are started either from declared initial conditions
//! (`uic`, the usual way — SPICE's `.tran ... UIC`) or from a DC
//! operating point.

use crate::circuit::{Circuit, NodeId};
use crate::dc::{newton_solve, solve_dc, SolverOptions};
use crate::devices::Device;
use crate::error::{Result, SimError};
use crate::mna::{node_voltage, CapCompanion};
use crate::waveform::Waveform;

/// Numerical integration scheme for capacitor currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable, slightly lossy (numerical damping).
    BackwardEuler,
    /// Second-order, energy-preserving; the default, matching HSPICE's
    /// default for oscillator work.
    #[default]
    Trapezoidal,
}

/// Transient analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Initial/nominal time step, seconds.
    pub dt: f64,
    /// Smallest allowed step before the run aborts.
    pub dt_min: f64,
    /// Largest allowed step (accuracy bound).
    pub dt_max: f64,
    /// Integration scheme.
    pub integrator: Integrator,
    /// `true`: start from the declared initial conditions without a DC
    /// solve (needed for oscillators, which have no useful DC point).
    pub uic: bool,
    /// Newton solver settings per step.
    pub solver: SolverOptions,
    /// Watchdog budget: total Newton step *attempts* (accepted or
    /// rejected) before the run aborts with
    /// [`SimError::ConvergenceTimeout`]. Keeps pathological decks —
    /// e.g. fault-injected supplies that thrash the adaptive step
    /// controller — from looping effectively forever between `dt_min`
    /// retries. The default (10 million) is far above any healthy run
    /// in this workspace (thousands of steps).
    pub max_steps: u64,
}

impl TranOptions {
    /// Sensible defaults for a run to `t_stop`: `dt = t_stop/1000`,
    /// `dt_min = dt/10⁶`, `dt_max = dt`, trapezoidal, `uic = false`.
    pub fn to_time(t_stop: f64) -> Self {
        let dt = t_stop / 1000.0;
        TranOptions {
            t_stop,
            dt,
            dt_min: dt * 1e-6,
            dt_max: dt,
            integrator: Integrator::Trapezoidal,
            uic: false,
            solver: SolverOptions::default(),
            max_steps: 10_000_000,
        }
    }

    /// Switches on `uic` (start from initial conditions).
    #[must_use]
    pub fn with_uic(mut self) -> Self {
        self.uic = true;
        self
    }

    /// Selects the integration scheme.
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Overrides the step bounds.
    #[must_use]
    pub fn with_steps(mut self, dt: f64, dt_max: f64) -> Self {
        self.dt = dt;
        self.dt_max = dt_max;
        self.dt_min = dt * 1e-6;
        self
    }

    /// Overrides the Newton step-attempt watchdog budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Internal per-capacitor integration state.
#[derive(Debug, Clone, Copy, Default)]
struct CapState {
    /// Voltage across the capacitor at the last accepted time point.
    v: f64,
    /// Current through the capacitor at the last accepted time point
    /// (used by the trapezoidal rule).
    i: f64,
}

fn capacitor_terminals(circuit: &Circuit) -> Vec<(NodeId, NodeId, f64)> {
    circuit
        .devices()
        .iter()
        .filter_map(|d| match d {
            Device::Capacitor { a, b, farads, .. } => Some((*a, *b, *farads)),
            _ => None,
        })
        .collect()
}

/// Runs a transient analysis and records every accepted time point.
///
/// # Errors
///
/// * [`SimError::NoConvergence`] if the initial DC point (non-`uic` runs)
///   cannot be found;
/// * [`SimError::StepUnderflow`] if Newton keeps failing even at
///   `dt_min`;
/// * [`SimError::ConvergenceTimeout`] if the watchdog budget
///   ([`TranOptions::max_steps`]) is exhausted before reaching `t_stop`;
/// * [`SimError::SingularMatrix`] for structurally defective circuits.
///
/// # Panics
///
/// Panics if `t_stop`, `dt` or the step bounds are not positive and
/// ordered (`0 < dt_min ≤ dt ≤ dt_max`).
pub fn run_transient(circuit: &Circuit, opts: &TranOptions) -> Result<Waveform> {
    run_transient_inner(circuit, opts)
}

/// Runs a transient analysis after an opt-in preflight check.
///
/// `preflight` inspects the circuit before any stepping begins;
/// returning `Err` aborts the run. The error type only has to absorb
/// [`SimError`] (via `From`), so lint frontends can thread their own
/// structured rejection through unchanged.
///
/// # Errors
///
/// Whatever `preflight` reports, or any [`run_transient`] failure
/// converted into `E`.
///
/// # Panics
///
/// Same step-bound preconditions as [`run_transient`].
pub fn run_transient_checked<E: From<SimError>>(
    circuit: &Circuit,
    opts: &TranOptions,
    preflight: impl FnOnce(&Circuit) -> std::result::Result<(), E>,
) -> std::result::Result<Waveform, E> {
    preflight(circuit)?;
    run_transient_inner(circuit, opts).map_err(E::from)
}

fn run_transient_inner(circuit: &Circuit, opts: &TranOptions) -> Result<Waveform> {
    assert!(opts.t_stop > 0.0, "t_stop must be positive");
    assert!(
        opts.dt_min > 0.0 && opts.dt_min <= opts.dt && opts.dt <= opts.dt_max,
        "need 0 < dt_min <= dt <= dt_max"
    );
    let caps = capacitor_terminals(circuit);
    let n = circuit.unknown_count();

    // Initial state.
    let mut x = if opts.uic {
        let mut x0 = vec![0.0; n];
        for &(node, v) in circuit.initial_conditions() {
            if !node.is_ground() {
                x0[node.index() - 1] = v;
            }
        }
        x0
    } else {
        solve_dc(circuit, &opts.solver)?.unknowns().to_vec()
    };

    let mut cap_state: Vec<CapState> = caps
        .iter()
        .map(|&(a, b, _)| CapState {
            v: node_voltage(&x, a) - node_voltage(&x, b),
            i: 0.0,
        })
        .collect();

    let mut wave = Waveform::for_circuit(circuit);
    wave.push(0.0, &x);

    let mut t = 0.0;
    let mut h = opts.dt;
    let mut easy_streak = 0u32;
    let mut attempts: u64 = 0;

    while t < opts.t_stop {
        if t + h > opts.t_stop {
            h = opts.t_stop - t;
        }
        attempts += 1;
        if attempts > opts.max_steps {
            return Err(SimError::ConvergenceTimeout {
                steps: opts.max_steps,
                at_time: t,
            });
        }
        // Build companions for this step size. The very first step always
        // uses backward Euler: the capacitor currents stored at t = 0 are
        // not yet consistent with the circuit (especially under `uic`),
        // and trapezoidal integration would ring on that inconsistency.
        let scheme = if t == 0.0 {
            Integrator::BackwardEuler
        } else {
            opts.integrator
        };
        let companions: Vec<CapCompanion> = caps
            .iter()
            .zip(&cap_state)
            .map(|(&(_, _, c), st)| match scheme {
                Integrator::BackwardEuler => {
                    let geq = c / h;
                    CapCompanion {
                        geq,
                        jeq: -geq * st.v,
                    }
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * c / h;
                    CapCompanion {
                        geq,
                        jeq: -geq * st.v - st.i,
                    }
                }
            })
            .collect();

        match newton_solve(
            circuit,
            &x,
            Some(t + h),
            Some(&companions),
            opts.solver.gmin,
            1.0,
            &opts.solver,
        ) {
            Ok(x_new) => {
                // Accept: update capacitor memory.
                for ((st, comp), &(a, b, _)) in cap_state.iter_mut().zip(&companions).zip(&caps) {
                    let v_new = node_voltage(&x_new, a) - node_voltage(&x_new, b);
                    st.i = comp.geq * v_new + comp.jeq;
                    st.v = v_new;
                }
                x = x_new;
                t += h;
                wave.push(t, &x);
                easy_streak += 1;
                if easy_streak >= 4 && h < opts.dt_max {
                    h = (h * 1.3).min(opts.dt_max);
                    easy_streak = 0;
                }
            }
            Err(SimError::NoConvergence { .. }) => {
                easy_streak = 0;
                h *= 0.5;
                if h < opts.dt_min {
                    return Err(SimError::StepUnderflow { at_time: t });
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(wave)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::Stimulus;

    fn rc_circuit(r: f64, c: f64, v: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(v))
            .unwrap();
        ckt.add_resistor("R1", a, out, r).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, c).unwrap();
        ckt
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // τ = 1 µs; check v(τ) ≈ V(1 − 1/e).
        let ckt = rc_circuit(1e3, 1e-9, 1.0);
        let opts = TranOptions::to_time(5e-6).with_uic().with_steps(5e-9, 5e-9);
        let wave = run_transient(&ckt, &opts).unwrap();
        let v_tau = wave.sample_at("out", 1e-6).unwrap();
        let expect = 1.0 - (-1.0_f64).exp();
        assert!(
            (v_tau - expect).abs() < 5e-3,
            "v(τ) = {v_tau}, expect {expect}"
        );
        let v_end = wave.sample_at("out", 5e-6).unwrap();
        assert!((v_end - 1.0).abs() < 1e-2, "fully charged: {v_end}");
    }

    #[test]
    fn backward_euler_also_converges_to_final_value() {
        let ckt = rc_circuit(1e3, 1e-9, 2.0);
        let opts = TranOptions::to_time(10e-6)
            .with_uic()
            .with_steps(10e-9, 10e-9)
            .with_integrator(Integrator::BackwardEuler);
        let wave = run_transient(&ckt, &opts).unwrap();
        let v_end = wave.sample_at("out", 10e-6).unwrap();
        assert!((v_end - 2.0).abs() < 2e-2);
    }

    #[test]
    fn trapezoidal_more_accurate_than_backward_euler() {
        let ckt = rc_circuit(1e3, 1e-9, 1.0);
        let run = |integ: Integrator| {
            let opts = TranOptions::to_time(2e-6)
                .with_uic()
                .with_steps(20e-9, 20e-9)
                .with_integrator(integ);
            let wave = run_transient(&ckt, &opts).unwrap();
            wave.sample_at("out", 1e-6).unwrap()
        };
        let expect = 1.0 - (-1.0_f64).exp();
        let err_be = (run(Integrator::BackwardEuler) - expect).abs();
        let err_tr = (run(Integrator::Trapezoidal) - expect).abs();
        assert!(err_tr < err_be, "trap {err_tr} vs BE {err_be}");
    }

    #[test]
    fn dc_start_skips_the_transient() {
        // Starting from the DC point, the RC output is already charged.
        let ckt = rc_circuit(1e3, 1e-9, 1.0);
        let opts = TranOptions::to_time(1e-6).with_steps(10e-9, 10e-9);
        let wave = run_transient(&ckt, &opts).unwrap();
        let v0 = wave.sample_at("out", 0.0).unwrap();
        assert!((v0 - 1.0).abs() < 1e-4, "starts charged: {v0}");
    }

    #[test]
    fn pulse_propagates_through_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            Stimulus::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 100e-9,
                rise: 1e-9,
                fall: 1e-9,
                width: 400e-9,
                period: 0.0,
            },
        )
        .unwrap();
        ckt.add_resistor("R1", a, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, 10e-12)
            .unwrap();
        let opts = TranOptions::to_time(1e-6).with_uic().with_steps(1e-9, 1e-9);
        let wave = run_transient(&ckt, &opts).unwrap();
        assert!(
            wave.sample_at("out", 50e-9).unwrap().abs() < 1e-3,
            "before the pulse"
        );
        assert!(
            wave.sample_at("out", 400e-9).unwrap() > 0.99,
            "charged during the pulse"
        );
        assert!(
            wave.sample_at("out", 900e-9).unwrap() < 0.01,
            "discharged after"
        );
    }

    #[test]
    fn initial_conditions_respected_with_uic() {
        let mut ckt = rc_circuit(1e3, 1e-9, 0.0);
        let out = ckt.find_node("out").unwrap();
        ckt.set_initial_condition(out, 1.0);
        let opts = TranOptions::to_time(3e-6)
            .with_uic()
            .with_steps(10e-9, 10e-9);
        let wave = run_transient(&ckt, &opts).unwrap();
        assert!((wave.sample_at("out", 0.0).unwrap() - 1.0).abs() < 1e-12);
        // Discharges toward the 0 V source.
        let v_tau = wave.sample_at("out", 1e-6).unwrap();
        assert!((v_tau - (-1.0_f64).exp()).abs() < 5e-3);
    }

    #[test]
    fn step_budget_times_out_typed() {
        // 5000 steps are needed (5 µs at 1 ns); a 100-step budget must
        // abort with the typed watchdog error, not hang or underflow.
        let ckt = rc_circuit(1e3, 1e-9, 1.0);
        let opts = TranOptions::to_time(5e-6)
            .with_uic()
            .with_steps(1e-9, 1e-9)
            .with_max_steps(100);
        match run_transient(&ckt, &opts) {
            Err(SimError::ConvergenceTimeout { steps, at_time }) => {
                assert_eq!(steps, 100);
                assert!(at_time > 0.0 && at_time < 5e-6, "aborted at {at_time}");
            }
            other => panic!("expected ConvergenceTimeout, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "t_stop must be positive")]
    fn bad_options_rejected() {
        let ckt = rc_circuit(1e3, 1e-9, 1.0);
        let mut opts = TranOptions::to_time(1e-6);
        opts.t_stop = -1.0;
        let _ = run_transient(&ckt, &opts);
    }
}
