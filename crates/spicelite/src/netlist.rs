//! SPICE-subset netlist parser with `.subckt` expansion.
//!
//! Supported cards (case-insensitive keywords, `*` comments, `+`
//! continuation lines, engineering suffixes `t g meg k m u n p f`):
//!
//! ```text
//! * title line is free text
//! R<name> n1 n2 <ohms>
//! C<name> n1 n2 <farads>
//! V<name> n+ n- DC <volts>
//! V<name> n+ n- PULSE(v1 v2 td tr tf pw per)
//! V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//! I<name> n+ n- <amps>          (DC current from n+ into n-)
//! M<name> d g s <model> W=<w> L=<l>
//! X<name> <nodes...> <subckt>
//! .model <name> NMOS|PMOS (VTO=.. KP=.. LAMBDA=.. TCV=.. BEX=.. CGW=.. CJW=..)
//! .subckt <name> <ports...> / .ends
//! .ic V(node)=value ...
//! .temp <celsius>
//! .tran <tstep> <tstop> [UIC]
//! .dc <VSOURCE> <start> <stop> <step>
//! .end
//! ```
//!
//! MOSFETs are instantiated **with** their parasitic capacitances (the
//! same convention as [`crate::circuit::Circuit::add_mosfet_with_caps`]),
//! because netlists here describe physical cells.
//!
//! ```
//! use spicelite::netlist::parse;
//!
//! let deck = parse("divider
//! V1 in 0 DC 2.0
//! R1 in out 1k
//! R2 out 0 1k
//! .end
//! ")?;
//! let op = spicelite::dc::solve_dc(&deck.circuit, &Default::default())?;
//! assert!((op.voltage(&deck.circuit, "out")? - 1.0).abs() < 1e-6);
//! # Ok::<(), spicelite::SimError>(())
//! ```

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::devices::{MosModel, MosPolarity, Stimulus};
use crate::error::{Result, SimError};
use crate::transient::TranOptions;

/// A parsed netlist: the flattened circuit plus analysis directives.
#[derive(Debug, Clone)]
pub struct Deck {
    /// Title (first line of the netlist).
    pub title: String,
    /// The flattened circuit (subcircuits expanded).
    pub circuit: Circuit,
    /// `.tran` directive, if present.
    pub tran: Option<TranDirective>,
    /// `.dc` sweep directive, if present.
    pub dc: Option<DcDirective>,
}

/// A `.dc VSOURCE start stop step` card.
#[derive(Debug, Clone, PartialEq)]
pub struct DcDirective {
    /// The swept voltage source's instance name.
    pub source: String,
    /// Sweep start value, volts.
    pub start: f64,
    /// Sweep stop value, volts.
    pub stop: f64,
    /// Sweep step, volts (positive).
    pub step: f64,
}

impl DcDirective {
    /// The sweep values, inclusive of both ends.
    pub fn values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut v = self.start;
        while v <= self.stop + 1e-12 {
            out.push(v);
            v += self.step;
        }
        out
    }
}

/// A `.tran tstep tstop [UIC]` card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranDirective {
    /// Suggested time step, seconds.
    pub tstep: f64,
    /// Stop time, seconds.
    pub tstop: f64,
    /// Start from initial conditions without a DC solve.
    pub uic: bool,
}

impl TranDirective {
    /// Converts the directive into solver options (fixed maximum step =
    /// `tstep`, trapezoidal).
    pub fn to_options(self) -> TranOptions {
        let mut o = TranOptions::to_time(self.tstop).with_steps(self.tstep, self.tstep);
        o.uic = self.uic;
        o
    }
}

/// Parses an engineering-notation number (`4.7k`, `100n`, `2meg`, `1e-9`).
///
/// # Errors
///
/// Returns a description of the malformed number (line info is added by
/// the caller).
fn parse_number(tok: &str) -> std::result::Result<f64, String> {
    let t = tok.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty number".to_string());
    }
    // Longest-suffix-first so `meg` beats `m`.
    const SUFFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("t", 1e12),
        ("g", 1e9),
        ("k", 1e3),
        ("m", 1e-3),
        ("u", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
        ("f", 1e-15),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(stripped) = t.strip_suffix(suffix) {
            // Guard against stripping the exponent `e` forms (`1e-9` has
            // no suffix) and against bare suffixes.
            if !stripped.is_empty() {
                if let Ok(mantissa) = stripped.parse::<f64>() {
                    return Ok(mantissa * scale);
                }
            }
        }
    }
    t.parse::<f64>()
        .map_err(|_| format!("malformed number `{tok}`"))
}

#[derive(Debug, Clone)]
struct Card {
    line: usize,
    tokens: Vec<String>,
}

#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    cards: Vec<Card>,
}

fn err(line: usize, message: impl Into<String>) -> SimError {
    SimError::Parse {
        line,
        message: message.into(),
    }
}

/// Splits a card into tokens, treating `(`, `)`, `=` and `,` as
/// separators so `PULSE(0 3.3 ...)` and `W=1u` tokenize naturally.
fn tokenize(text: &str) -> Vec<String> {
    text.replace(['(', ')', '=', ','], " ")
        .split_whitespace()
        .map(|s| s.to_string())
        .collect()
}

/// Joins continuation lines, strips comments, and produces cards.
fn preprocess(source: &str) -> (String, Vec<Card>) {
    let mut title = String::new();
    let mut cards: Vec<Card> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = line.trim();
        if idx == 0 && !trimmed.starts_with('.') && !trimmed.is_empty() {
            // SPICE convention: the first line is the title...
            let toks = tokenize(trimmed);
            // ...unless it clearly looks like an element card.
            let looks_like_element = toks.len() >= 3
                && matches!(
                    trimmed.chars().next().map(|c| c.to_ascii_uppercase()),
                    Some('R' | 'C' | 'V' | 'M' | 'X')
                )
                && toks
                    .last()
                    .map(|t| parse_number(t).is_ok())
                    .unwrap_or(false);
            if !looks_like_element {
                title = trimmed.to_string();
                continue;
            }
        }
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            if let Some(last) = cards.last_mut() {
                last.tokens.extend(tokenize(rest));
                continue;
            }
        }
        // A line of only separator characters (`(((`, `= ,`) tokenizes
        // to nothing; pushing it would make every tokens[0] downstream a
        // panic site, so keep the card only if it has content.
        let tokens = tokenize(trimmed);
        if !tokens.is_empty() {
            cards.push(Card {
                line: line_no,
                tokens,
            });
        }
    }
    (title, cards)
}

/// Parses `KEY value` pairs out of a token stream (already `=`-split).
fn keyed_values(tokens: &[String], line: usize) -> Result<HashMap<String, f64>> {
    if !tokens.len().is_multiple_of(2) {
        return Err(err(line, "expected KEY=VALUE pairs"));
    }
    let mut map = HashMap::new();
    for pair in tokens.chunks(2) {
        let v = parse_number(&pair[1]).map_err(|m| err(line, m))?;
        map.insert(pair[0].to_ascii_uppercase(), v);
    }
    Ok(map)
}

struct Parser {
    models: HashMap<String, MosModel>,
    subckts: HashMap<String, Subckt>,
    circuit: Circuit,
    tran: Option<TranDirective>,
    dc: Option<DcDirective>,
}

impl Parser {
    fn new() -> Self {
        Parser {
            models: HashMap::new(),
            subckts: HashMap::new(),
            circuit: Circuit::new(),
            tran: None,
            dc: None,
        }
    }

    fn parse_model(&mut self, card: &Card) -> Result<()> {
        // .model name NMOS|PMOS key value ...
        if card.tokens.len() < 3 {
            return Err(err(card.line, ".model needs a name and a type"));
        }
        let name = card.tokens[1].to_ascii_lowercase();
        let polarity = match card.tokens[2].to_ascii_uppercase().as_str() {
            "NMOS" => MosPolarity::Nmos,
            "PMOS" => MosPolarity::Pmos,
            other => return Err(err(card.line, format!("unknown model type `{other}`"))),
        };
        let kv = keyed_values(&card.tokens[3..], card.line)?;
        let model = MosModel {
            name: name.clone(),
            polarity,
            vto: kv.get("VTO").copied().unwrap_or(0.5).abs(),
            kp: kv.get("KP").copied().unwrap_or(100e-6),
            lambda: kv.get("LAMBDA").copied().unwrap_or(0.05),
            vto_tempco: kv.get("TCV").copied().unwrap_or(1e-3),
            mobility_exp: kv.get("BEX").copied().unwrap_or(1.5),
            cg_per_width: kv.get("CGW").copied().unwrap_or(2e-9),
            cj_per_width: kv.get("CJW").copied().unwrap_or(1e-9),
        };
        self.models.insert(name, model);
        Ok(())
    }

    /// Maps a node name through subcircuit port bindings / prefixing.
    fn map_node(name: &str, bindings: &HashMap<String, String>, prefix: &str) -> String {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return "0".to_string();
        }
        if let Some(mapped) = bindings.get(name) {
            return mapped.clone();
        }
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}{name}")
        }
    }

    fn instantiate(
        &mut self,
        card: &Card,
        bindings: &HashMap<String, String>,
        prefix: &str,
        depth: usize,
    ) -> Result<()> {
        if depth > 16 {
            return Err(err(
                card.line,
                "subcircuit nesting deeper than 16 (recursive?)",
            ));
        }
        let toks = &card.tokens;
        let kind = toks
            .first()
            .and_then(|t| t.chars().next())
            .ok_or_else(|| err(card.line, "empty element card"))?
            .to_ascii_uppercase();
        let dev_name = format!("{prefix}{}", toks[0]);
        match kind {
            'R' | 'C' => {
                if toks.len() != 4 {
                    return Err(err(
                        card.line,
                        format!("`{}` needs 2 nodes and a value", toks[0]),
                    ));
                }
                let a = Self::map_node(&toks[1], bindings, prefix);
                let b = Self::map_node(&toks[2], bindings, prefix);
                let value = parse_number(&toks[3]).map_err(|m| err(card.line, m))?;
                let (na, nb) = (self.circuit.node(&a), self.circuit.node(&b));
                if kind == 'R' {
                    self.circuit.add_resistor(dev_name, na, nb, value)?;
                } else {
                    self.circuit.add_capacitor(dev_name, na, nb, value)?;
                }
            }
            'V' => {
                if toks.len() < 4 {
                    return Err(err(
                        card.line,
                        "voltage source needs 2 nodes and a waveform",
                    ));
                }
                let pos = Self::map_node(&toks[1], bindings, prefix);
                let neg = Self::map_node(&toks[2], bindings, prefix);
                let stim = match toks[3].to_ascii_uppercase().as_str() {
                    "DC" => {
                        let v = toks
                            .get(4)
                            .ok_or_else(|| err(card.line, "DC needs a value"))
                            .and_then(|t| parse_number(t).map_err(|m| err(card.line, m)))?;
                        Stimulus::Dc(v)
                    }
                    "PULSE" => {
                        let nums: Vec<f64> = toks[4..]
                            .iter()
                            .map(|t| parse_number(t).map_err(|m| err(card.line, m)))
                            .collect::<Result<_>>()?;
                        if nums.len() < 6 {
                            return Err(err(card.line, "PULSE needs v1 v2 td tr tf pw [per]"));
                        }
                        Stimulus::Pulse {
                            v1: nums[0],
                            v2: nums[1],
                            delay: nums[2],
                            rise: nums[3],
                            fall: nums[4],
                            width: nums[5],
                            period: nums.get(6).copied().unwrap_or(0.0),
                        }
                    }
                    "PWL" => {
                        let nums: Vec<f64> = toks[4..]
                            .iter()
                            .map(|t| parse_number(t).map_err(|m| err(card.line, m)))
                            .collect::<Result<_>>()?;
                        if nums.len() < 2 || !nums.len().is_multiple_of(2) {
                            return Err(err(card.line, "PWL needs time/value pairs"));
                        }
                        Stimulus::Pwl(nums.chunks(2).map(|p| (p[0], p[1])).collect())
                    }
                    _ => {
                        // Bare value shorthand: `V1 a 0 3.3`.
                        let v = parse_number(&toks[3]).map_err(|m| err(card.line, m))?;
                        Stimulus::Dc(v)
                    }
                };
                let (np, nn) = (self.circuit.node(&pos), self.circuit.node(&neg));
                self.circuit.add_vsource(dev_name, np, nn, stim)?;
            }
            'I' => {
                if toks.len() != 4 {
                    return Err(err(card.line, "current source needs 2 nodes and a value"));
                }
                let from = Self::map_node(&toks[1], bindings, prefix);
                let to = Self::map_node(&toks[2], bindings, prefix);
                let amps = parse_number(&toks[3]).map_err(|m| err(card.line, m))?;
                let (nf, nt) = (self.circuit.node(&from), self.circuit.node(&to));
                self.circuit.add_isource(dev_name, nf, nt, amps)?;
            }
            'M' => {
                if toks.len() < 5 {
                    return Err(err(card.line, "MOSFET needs d g s and a model"));
                }
                let d = Self::map_node(&toks[1], bindings, prefix);
                let g = Self::map_node(&toks[2], bindings, prefix);
                let s = Self::map_node(&toks[3], bindings, prefix);
                let model_name = toks[4].to_ascii_lowercase();
                let model = self
                    .models
                    .get(&model_name)
                    .cloned()
                    .ok_or_else(|| err(card.line, format!("unknown model `{model_name}`")))?;
                let kv = keyed_values(&toks[5..], card.line)?;
                let w = kv.get("W").copied().unwrap_or(1e-6);
                let l = kv.get("L").copied().unwrap_or(0.35e-6);
                let (nd, ng, ns) = (
                    self.circuit.node(&d),
                    self.circuit.node(&g),
                    self.circuit.node(&s),
                );
                self.circuit
                    .add_mosfet_with_caps(dev_name, nd, ng, ns, model, w, l)?;
            }
            'X' => {
                if toks.len() < 3 {
                    return Err(err(card.line, "subcircuit instance needs nodes and a name"));
                }
                let sub_name = toks[toks.len() - 1].to_ascii_lowercase();
                let sub =
                    self.subckts.get(&sub_name).cloned().ok_or_else(|| {
                        err(card.line, format!("unknown subcircuit `{sub_name}`"))
                    })?;
                let actuals = &toks[1..toks.len() - 1];
                if actuals.len() != sub.ports.len() {
                    return Err(err(
                        card.line,
                        format!(
                            "`{sub_name}` has {} ports but {} nodes were given",
                            sub.ports.len(),
                            actuals.len()
                        ),
                    ));
                }
                let mut inner_bindings = HashMap::new();
                for (port, actual) in sub.ports.iter().zip(actuals) {
                    inner_bindings.insert(port.clone(), Self::map_node(actual, bindings, prefix));
                }
                let inner_prefix = format!("{dev_name}.");
                for inner_card in &sub.cards {
                    self.instantiate(inner_card, &inner_bindings, &inner_prefix, depth + 1)?;
                }
            }
            other => {
                return Err(err(
                    card.line,
                    format!("unsupported element type `{other}`"),
                ));
            }
        }
        Ok(())
    }

    fn parse_directive(&mut self, card: &Card) -> Result<()> {
        let head = card
            .tokens
            .first()
            .ok_or_else(|| err(card.line, "empty directive card"))?
            .to_ascii_lowercase();
        match head.as_str() {
            ".model" => self.parse_model(card),
            ".temp" => {
                let t = card
                    .tokens
                    .get(1)
                    .ok_or_else(|| err(card.line, ".temp needs a value"))
                    .and_then(|t| parse_number(t).map_err(|m| err(card.line, m)))?;
                self.circuit.set_temperature(t);
                Ok(())
            }
            ".ic" => {
                // Tokens arrive as: .ic V node value [V node value ...]
                // (the `(`/`)`/`=` separators were stripped by tokenize).
                let rest = &card.tokens[1..];
                if !rest.len().is_multiple_of(3) {
                    return Err(err(card.line, ".ic expects V(node)=value entries"));
                }
                for chunk in rest.chunks(3) {
                    if !chunk[0].eq_ignore_ascii_case("v") {
                        return Err(err(card.line, "only V(node)=value initial conditions"));
                    }
                    let node = self.circuit.node(&chunk[1]);
                    let v = parse_number(&chunk[2]).map_err(|m| err(card.line, m))?;
                    self.circuit.set_initial_condition(node, v);
                }
                Ok(())
            }
            ".tran" => {
                let nums: Vec<&String> = card.tokens[1..]
                    .iter()
                    .filter(|t| !t.eq_ignore_ascii_case("uic"))
                    .collect();
                if nums.len() < 2 {
                    return Err(err(card.line, ".tran needs tstep and tstop"));
                }
                let tstep = parse_number(nums[0]).map_err(|m| err(card.line, m))?;
                let tstop = parse_number(nums[1]).map_err(|m| err(card.line, m))?;
                let uic = card.tokens.iter().any(|t| t.eq_ignore_ascii_case("uic"));
                self.tran = Some(TranDirective { tstep, tstop, uic });
                Ok(())
            }
            ".dc" => {
                if card.tokens.len() != 5 {
                    return Err(err(card.line, ".dc needs SOURCE start stop step"));
                }
                let start = parse_number(&card.tokens[2]).map_err(|m| err(card.line, m))?;
                let stop = parse_number(&card.tokens[3]).map_err(|m| err(card.line, m))?;
                let step = parse_number(&card.tokens[4]).map_err(|m| err(card.line, m))?;
                if step <= 0.0 || stop < start {
                    return Err(err(
                        card.line,
                        ".dc needs start <= stop and a positive step",
                    ));
                }
                self.dc = Some(DcDirective {
                    source: card.tokens[1].clone(),
                    start,
                    stop,
                    step,
                });
                Ok(())
            }
            ".end" | ".ends" => Ok(()),
            other => Err(err(card.line, format!("unknown directive `{other}`"))),
        }
    }
}

/// Parses a netlist into a flattened [`Deck`].
///
/// # Errors
///
/// Returns [`SimError::Parse`] describing the first malformed card, or
/// device-construction errors from the underlying circuit builder.
pub fn parse(source: &str) -> Result<Deck> {
    let (title, cards) = preprocess(source);
    let mut parser = Parser::new();

    // Pass 1: collect models and subcircuit bodies.
    let mut top_cards: Vec<Card> = Vec::new();
    let mut current_sub: Option<(String, Subckt)> = None;
    for card in cards {
        let head = match card.tokens.first() {
            Some(tok) => tok.to_ascii_lowercase(),
            None => return Err(err(card.line, "empty card")),
        };
        match head.as_str() {
            ".subckt" => {
                if current_sub.is_some() {
                    return Err(err(
                        card.line,
                        "nested .subckt definitions are not supported",
                    ));
                }
                if card.tokens.len() < 3 {
                    return Err(err(card.line, ".subckt needs a name and at least one port"));
                }
                let name = card.tokens[1].to_ascii_lowercase();
                let ports = card.tokens[2..].to_vec();
                current_sub = Some((
                    name,
                    Subckt {
                        ports,
                        cards: Vec::new(),
                    },
                ));
            }
            ".ends" => match current_sub.take() {
                Some((name, sub)) => {
                    parser.subckts.insert(name, sub);
                }
                None => return Err(err(card.line, ".ends without .subckt")),
            },
            ".model" => parser.parse_model(&card)?,
            _ => match &mut current_sub {
                Some((_, sub)) => sub.cards.push(card),
                None => top_cards.push(card),
            },
        }
    }
    if let Some((name, _)) = current_sub {
        return Err(err(0, format!(".subckt `{name}` never closed with .ends")));
    }

    // Pass 2: instantiate the top level.
    let empty = HashMap::new();
    for card in &top_cards {
        if card.tokens.first().is_some_and(|t| t.starts_with('.')) {
            parser.parse_directive(card)?;
        } else {
            parser.instantiate(card, &empty, "", 0)?;
        }
    }
    Ok(Deck {
        title,
        circuit: parser.circuit,
        tran: parser.tran,
        dc: parser.dc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{solve_dc, SolverOptions};
    use crate::transient::run_transient;

    #[test]
    fn number_suffixes() {
        fn close(tok: &str, expect: f64) {
            let got = parse_number(tok).unwrap();
            assert!(
                (got - expect).abs() <= 1e-12 * expect.abs().max(1.0),
                "{tok}: got {got}, expected {expect}"
            );
        }
        close("4.7k", 4700.0);
        close("100n", 100e-9);
        close("2meg", 2e6);
        close("5f", 5e-15);
        close("1e-9", 1e-9);
        close("-3.3", -3.3);
        close("10p", 10e-12);
        assert!(parse_number("abc").is_err());
        assert!(parse_number("").is_err());
        assert!(parse_number("k").is_err());
    }

    #[test]
    fn divider_parses_and_solves() {
        let deck = parse(
            "test divider
V1 in 0 DC 2.0
R1 in out 1k
R2 out 0 1k
.end
",
        )
        .unwrap();
        assert_eq!(deck.title, "test divider");
        let op = solve_dc(&deck.circuit, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&deck.circuit, "out").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn continuation_and_comments() {
        let deck = parse(
            "title
* a comment
V1 a 0
+ DC 1.0   ; trailing comment
R1 a 0 1k
",
        )
        .unwrap();
        assert_eq!(deck.circuit.devices().len(), 2);
    }

    #[test]
    fn subckt_expansion_flattens_with_prefixes() {
        let deck = parse(
            "hierarchy
.model n1 NMOS VTO=0.5 KP=100u
.subckt stage in out vdd
M1 out in 0 n1 W=1u L=0.35u
R1 out vdd 10k
.ends
VDD vdd 0 DC 3.3
X1 a b vdd stage
X2 b c vdd stage
.end
",
        )
        .unwrap();
        // Each stage: 1 MOSFET + 3 parasitic caps + 1 resistor = 5 devices;
        // plus the supply.
        assert_eq!(deck.circuit.devices().len(), 11);
        // Prefixed instance names.
        assert!(deck.circuit.devices().iter().any(|d| d.name() == "X1.M1"));
        assert!(deck.circuit.devices().iter().any(|d| d.name() == "X2.R1"));
        // Shared nodes resolved: X1's `out` is the global `b` = X2's `in`.
        assert!(deck.circuit.find_node("b").is_ok());
        // Internal nodes are not leaked unprefixed.
        assert!(deck.circuit.find_node("out").is_err());
    }

    #[test]
    fn ring_oscillator_netlist_runs() {
        let deck = parse(
            "5-stage inverter ring
.model nm NMOS VTO=0.55 KP=170u LAMBDA=0.06 TCV=0.8m BEX=1.55
.model pm PMOS VTO=0.65 KP=58u LAMBDA=0.08 TCV=1.5m BEX=1.15
.subckt inv in out vdd
MN out in 0 nm W=1u L=0.35u
MP out in vdd pm W=2u L=0.35u
.ends
VDD vdd 0 DC 3.3
X1 n0 n1 vdd inv
X2 n1 n2 vdd inv
X3 n2 n3 vdd inv
X4 n3 n4 vdd inv
X5 n4 n0 vdd inv
.ic V(n0)=0 V(n1)=3.3 V(n2)=0 V(n3)=3.3 V(n4)=0
.tran 2p 1500p UIC
.end
",
        )
        .unwrap();
        let tran = deck.tran.expect(".tran parsed");
        assert!(tran.uic);
        assert!((tran.tstop - 1.5e-9).abs() < 1e-15);
        let wave = run_transient(&deck.circuit, &tran.to_options()).unwrap();
        let period = wave.period("n0", 1.65, 2).unwrap();
        assert!(period > 50e-12 && period < 1e-9, "period {period}");
    }

    #[test]
    fn pulse_and_pwl_sources() {
        let deck = parse(
            "sources
V1 a 0 PULSE(0 3.3 1n 0.1n 0.1n 5n 10n)
V2 b 0 PWL(0 0 1n 1 2n 0)
R1 a 0 1k
R2 b 0 1k
",
        )
        .unwrap();
        assert_eq!(deck.circuit.branch_count(), 2);
    }

    #[test]
    fn isource_element_parses_and_solves() {
        let deck = parse("t\nI1 0 a 1m\nR1 a 0 1k\n").unwrap();
        let op = solve_dc(&deck.circuit, &SolverOptions::default()).unwrap();
        assert!((op.voltage(&deck.circuit, "a").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn temp_directive() {
        let deck = parse("t\nV1 a 0 DC 1\nR1 a 0 1k\n.temp 125\n").unwrap();
        assert_eq!(deck.circuit.temperature(), 125.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("t\nR1 a b\n").unwrap_err();
        match e {
            SimError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse("t\nM1 a b c missing_model W=1u L=1u\n").is_err());
        assert!(parse("t\nX1 a b nothere\n").is_err());
        assert!(
            parse("t\n.subckt s a\nR1 a 0 1k\n").is_err(),
            "unclosed subckt"
        );
        assert!(parse("t\n.ends\n").is_err());
        assert!(parse("t\nQ1 a b c d\n").is_err(), "unsupported element");
    }

    #[test]
    fn dc_directive_drives_a_sweep() {
        let deck = parse(
            "vtc
.model nm NMOS VTO=0.55 KP=170u
.model pm PMOS VTO=0.65 KP=58u
VDD vdd 0 DC 3.3
VIN in 0 DC 0
MN out in 0 nm W=1u L=0.35u
MP out in vdd pm W=2u L=0.35u
.dc VIN 0 3.3 0.33
.end
",
        )
        .unwrap();
        let dc = deck.dc.expect(".dc parsed");
        assert_eq!(dc.source, "VIN");
        let values = dc.values();
        assert_eq!(values.len(), 11);
        let sweep = crate::dc::dc_sweep(
            &deck.circuit,
            &dc.source,
            &values,
            &SolverOptions::default(),
        )
        .unwrap();
        let first = sweep[0].1.voltage(&deck.circuit, "out").unwrap();
        let last = sweep[10].1.voltage(&deck.circuit, "out").unwrap();
        assert!(
            first > 3.2 && last < 0.1,
            "VTC endpoints: {first} .. {last}"
        );
        // Malformed cards rejected.
        assert!(parse("t\n.dc VIN 0 3.3\n").is_err());
        assert!(parse("t\n.dc VIN 3.3 0 0.1\n").is_err());
    }

    #[test]
    fn nested_subckt_instances_expand() {
        // An inverter subckt used inside a buffer subckt: two levels of
        // hierarchy, flattened with composed prefixes.
        let deck = parse(
            "nested
.model nm NMOS VTO=0.55 KP=170u
.model pm PMOS VTO=0.65 KP=58u
.subckt inv in out vdd
MN out in 0 nm W=1u L=0.35u
MP out in vdd pm W=2u L=0.35u
.ends
.subckt buf in out vdd
X1 in mid vdd inv
X2 mid out vdd inv
.ends
VDD vdd 0 DC 3.3
VIN a 0 DC 3.3
XB a y vdd buf
.end
",
        )
        .unwrap();
        // 4 MOSFETs, each with 3 parasitic caps, plus 2 sources.
        assert_eq!(deck.circuit.devices().len(), 4 * 4 + 2);
        assert!(deck
            .circuit
            .devices()
            .iter()
            .any(|d| d.name() == "XB.X1.MN"));
        assert!(
            deck.circuit.find_node("XB.mid").is_ok(),
            "internal node prefixed"
        );
        let op = solve_dc(&deck.circuit, &SolverOptions::default()).unwrap();
        let v = op.voltage(&deck.circuit, "y").unwrap();
        assert!(v > 3.2, "buffer passes the high level: {v}");
    }

    #[test]
    fn port_count_mismatch_detected() {
        let src = "t
.subckt s a b
R1 a b 1k
.ends
X1 n1 s
";
        assert!(parse(src).is_err());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Each of these once hit an index/expect panic path; they must
        // all come back as Err, never unwind.
        let bad_sources = [
            "t\n+R1 a 0 1k\n",         // continuation with no prior card
            "t\nR1 a 0 k\n",           // bare suffix is not a number
            "t\nR1 a 0\n",             // missing value
            "t\n.tran\n",              // directive with no operands
            "t\n.ic V n1\n",           // truncated .ic
            "t\nV1 a 0 PULSE 0 3.3\n", // truncated PULSE
            "t\nV1 a 0 PWL 0\n",       // odd PWL pairs
            "t\nM1 d g s nomodel\n",   // unknown model
            "t\n.model m NMOS VTO\n",  // dangling key
            "t\nQ1 a b c\n",           // unsupported element
        ];
        for src in bad_sources {
            let result = std::panic::catch_unwind(|| parse(src));
            let outcome = result.unwrap_or_else(|_| panic!("parse panicked on {src:?}"));
            assert!(outcome.is_err(), "expected parse error for {src:?}");
        }
    }

    #[test]
    fn separator_only_lines_are_skipped() {
        let deck = parse("t\n(((\nV1 a 0 1\nR1 a 0 1k\n").unwrap();
        assert_eq!(deck.circuit.devices().len(), 2);
    }
}
