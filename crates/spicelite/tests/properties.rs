//! Property-based tests of the circuit simulator's numerical kernels.

use proptest::prelude::*;

use spicelite::circuit::Circuit;
use spicelite::dc::{solve_dc, SolverOptions};
use spicelite::devices::{eval_nmos, Stimulus};
use spicelite::linalg::Matrix;
use spicelite::transient::{run_transient, TranOptions};

/// A random diagonally dominant matrix (guaranteed solvable).
fn arb_dd_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (
        prop::collection::vec(prop::collection::vec(-1.0f64..1.0, n), n),
        prop::collection::vec(-10.0f64..10.0, n),
    )
        .prop_map(move |(mut a, x)| {
            for (i, row) in a.iter_mut().enumerate() {
                let off: f64 = row.iter().map(|v| v.abs()).sum();
                row[i] = off + 1.0; // strict dominance
            }
            (a, x)
        })
}

proptest! {
    #[test]
    fn lu_solves_diagonally_dominant_systems((a, x_true) in arb_dd_system(6)) {
        let n = x_true.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = a[i][j];
            }
        }
        let b = m.mul_vec(&x_true);
        let mut m2 = m.clone();
        let mut sol = b;
        m2.solve_in_place(&mut sol).expect("dominant systems are regular");
        for (got, want) in sol.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()), "{got} vs {want}");
        }
    }

    #[test]
    fn mosfet_current_continuous_across_regions(
        beta in 1e-5f64..1e-2,
        vth in 0.2f64..1.0,
        lambda in 0.0f64..0.2,
        vg in 0.0f64..3.3,
    ) {
        // Walk vds in small steps; the current must be continuous and
        // non-decreasing for an NMOS with rising drain bias.
        let mut last = None;
        for i in 0..=60 {
            let vd = 3.3 * i as f64 / 60.0;
            let (op, _) = eval_nmos(vd, vg, 0.0, beta, vth, lambda);
            if let Some(prev) = last {
                let step: f64 = op.ids - prev;
                prop_assert!(step > -1e-12, "current must not decrease: {step}");
                prop_assert!(step.abs() < 0.2 * beta * 3.3 * 3.3 + 1e-9, "no jumps: {step}");
            }
            last = Some(op.ids);
        }
    }

    #[test]
    fn mosfet_symmetric_in_drain_source(
        beta in 1e-5f64..1e-2,
        vth in 0.2f64..1.0,
        va in 0.0f64..3.3,
        vb in 0.0f64..3.3,
        vg in 0.0f64..3.3,
    ) {
        let fwd = eval_nmos(va, vg, vb, beta, vth, 0.0).0.ids;
        let rev = eval_nmos(vb, vg, va, beta, vth, 0.0).0.ids;
        prop_assert!((fwd + rev).abs() < 1e-15, "ids(a,b) = -ids(b,a): {fwd} vs {rev}");
    }

    #[test]
    fn pulse_stimulus_bounded(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        delay in 0.0f64..1e-6,
        rise in 1e-12f64..1e-7,
        fall in 1e-12f64..1e-7,
        width in 1e-9f64..1e-6,
        t in 0.0f64..1e-5,
    ) {
        let s = Stimulus::Pulse { v1, v2, delay, rise, fall, width, period: 0.0 };
        let v = s.value_at(t);
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn pwl_stimulus_within_breakpoint_hull(
        points in prop::collection::vec((0.0f64..1e-6, -5.0f64..5.0), 2..8),
        t in 0.0f64..2e-6,
    ) {
        let mut pts = points;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let s = Stimulus::Pwl(pts);
        let v = s.value_at(t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn resistor_ladder_voltages_monotone(
        resistors in prop::collection::vec(100.0f64..100e3, 2..8),
        v in 0.5f64..10.0,
    ) {
        // A series ladder from v to ground: node voltages decrease
        // strictly along the chain and stay inside the rails.
        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.add_vsource("V1", top, Circuit::GROUND, Stimulus::Dc(v)).expect("source");
        let mut prev = top;
        for (i, &r) in resistors.iter().enumerate() {
            let next = if i + 1 == resistors.len() {
                Circuit::GROUND
            } else {
                ckt.node(&format!("n{}", i + 1))
            };
            ckt.add_resistor(format!("R{i}"), prev, next, r).expect("resistor");
            prev = next;
        }
        let op = solve_dc(&ckt, &SolverOptions::default()).expect("dc");
        let mut last = v + 1e-9;
        for i in 0..resistors.len() {
            let vi = op.voltage(&ckt, &format!("n{i}")).expect("node");
            prop_assert!(vi < last, "monotone ladder: v(n{i}) = {vi} >= {last}");
            prop_assert!(vi > -1e-9);
            last = vi;
        }
    }

    #[test]
    fn rc_transient_settles_to_source(
        r in 100.0f64..10e3,
        c_pf in 0.1f64..100.0,
        v in 0.5f64..5.0,
    ) {
        let c = c_pf * 1e-12;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add_vsource("V1", a, Circuit::GROUND, Stimulus::Dc(v)).expect("source");
        ckt.add_resistor("R1", a, out, r).expect("resistor");
        ckt.add_capacitor("C1", out, Circuit::GROUND, c).expect("cap");
        let opts = TranOptions::to_time(10.0 * tau).with_uic();
        let wave = run_transient(&ckt, &opts).expect("transient");
        let v_end = wave.sample_at("out", 10.0 * tau).expect("sample");
        prop_assert!((v_end - v).abs() < 0.01 * v, "settled to {v_end}, source {v}");
        // And the charging is monotone.
        let ys = wave.signal("out").expect("signal");
        for w in ys.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9 * v, "monotone charge");
        }
    }

    #[test]
    fn cmos_inverter_output_always_inside_rails(vin in 0.0f64..3.3) {
        let (nmos, pmos) = spicelite::devices::models_um350();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3)).expect("vdd");
        ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(vin)).expect("vin");
        ckt.add_mosfet("MN", out, inn, Circuit::GROUND, nmos, 1e-6, 0.35e-6).expect("mn");
        ckt.add_mosfet("MP", out, inn, vdd, pmos, 2e-6, 0.35e-6).expect("mp");
        let op = solve_dc(&ckt, &SolverOptions::default()).expect("dc");
        let v = op.voltage(&ckt, "out").expect("node");
        prop_assert!((-1e-6..=3.3 + 1e-6).contains(&v), "v(out) = {v}");
    }
}

#[test]
fn cmos_inverter_transfer_curve_is_monotone_decreasing() {
    // Not random, but a sweep: the VTC must fall monotonically.
    let (nmos, pmos) = spicelite::devices::models_um350();
    let mut last = f64::INFINITY;
    for i in 0..=33 {
        let vin = 3.3 * i as f64 / 33.0;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(3.3))
            .expect("vdd");
        ckt.add_vsource("VIN", inn, Circuit::GROUND, Stimulus::Dc(vin))
            .expect("vin");
        ckt.add_mosfet("MN", out, inn, Circuit::GROUND, nmos.clone(), 1e-6, 0.35e-6)
            .expect("mn");
        ckt.add_mosfet("MP", out, inn, vdd, pmos.clone(), 2e-6, 0.35e-6)
            .expect("mp");
        let op = solve_dc(&ckt, &SolverOptions::default()).expect("dc");
        let v = op.voltage(&ckt, "out").expect("node");
        assert!(
            v <= last + 1e-6,
            "VTC monotone: v({vin:.2}) = {v:.4} after {last:.4}"
        );
        last = v;
    }
}
