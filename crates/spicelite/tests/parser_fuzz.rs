//! No-panic fuzzing of the deck parser.
//!
//! The parser's contract is total: any byte stream produces either a
//! flattened `Deck` or a typed `SimError::Parse` — never a panic, an
//! index out of bounds, or an arithmetic overflow. Three generators
//! approach that claim from different angles: raw byte noise (exercises
//! tokenization), SPICE-flavored token soup (exercises every card
//! handler with almost-valid input), and single-point mutations and
//! truncations of a known-good deck (exercises the deep, structured
//! paths that random noise never reaches).

use proptest::prelude::*;

use spicelite::netlist::parse;

/// A deck that parses clean: models, a subcircuit, instantiation,
/// sources, passives, and analysis cards.
const VALID_DECK: &str = "ring fuzz seed deck
.model nm NMOS VTO=0.55 KP=170u LAMBDA=0.06
.model pm PMOS VTO=0.65 KP=58u LAMBDA=0.08
.subckt inv in out vdd
MN out in 0 nm W=1u L=0.35u
MP out in vdd pm W=2u L=0.35u
.ends
VDD vdd 0 DC 3.3
X1 a b vdd inv
X2 b c vdd inv
X3 c a vdd inv
R1 a 0 100k
C1 b 0 10f
.tran 2p 100p UIC
.end
";

#[test]
fn the_seed_deck_is_valid() {
    let deck = parse(VALID_DECK).expect("seed deck parses");
    assert_eq!(deck.title, "ring fuzz seed deck");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&source);
    }

    #[test]
    fn spice_token_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                ".model", ".subckt", ".ends", ".tran", ".end", ".include", "+",
                "NMOS", "PMOS", "DC", "PULSE", "PWL", "UIC",
                "R1", "C9", "MN", "MP", "VDD", "X1", "X", "*comment",
                "W=1u", "L=0.35u", "VTO=0.55", "KP=", "=", "1k", "10f", "2p",
                "0", "1", "-3.3", "1e308", "-1e-308", "nan", "in", "out", "vdd",
            ]),
            0..60,
        ),
        breaks in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        // Join with a random mix of spaces and newlines so cards form
        // and break at arbitrary points.
        let mut source = String::new();
        for (i, tok) in tokens.iter().enumerate() {
            source.push_str(tok);
            source.push(if breaks.get(i).copied().unwrap_or(false) { '\n' } else { ' ' });
        }
        let _ = parse(&source);
    }

    #[test]
    fn truncating_a_valid_deck_never_panics(cut in 0usize..VALID_DECK.len()) {
        // Cut on a char boundary (the deck is ASCII, so every byte is).
        let _ = parse(&VALID_DECK[..cut]);
    }

    #[test]
    fn mutating_one_byte_of_a_valid_deck_never_panics(
        pos in 0usize..VALID_DECK.len(),
        replacement in any::<u8>(),
    ) {
        let mut bytes = VALID_DECK.as_bytes().to_vec();
        bytes[pos] = replacement;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&source);
    }

    #[test]
    fn splicing_noise_into_a_valid_deck_never_panics(
        pos in 0usize..VALID_DECK.len(),
        noise in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut bytes = VALID_DECK.as_bytes()[..pos].to_vec();
        bytes.extend_from_slice(&noise);
        bytes.extend_from_slice(&VALID_DECK.as_bytes()[pos..]);
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&source);
    }
}
