//! Seeded fault schedules: faults as *events in time* rather than
//! one-shot campaign variants.
//!
//! A campaign ([`crate::run_campaign`]) injects one fault per run, at
//! the start of the run. A long-lived monitoring service needs the
//! complementary shape: a [`FaultSchedule`] — a deterministic, seeded
//! list of [`FaultEvent`]s, each naming *when* a fault strikes, *which*
//! array channel it strikes, *what* it is, and *how long* it lasts —
//! so a chaos source can replay the same storm against a running
//! system on every seed. The `runtime` crate's soak mode is the
//! primary consumer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::Fault;

/// One scheduled fault: strike `channel` with `fault` at `at_ms`,
/// clear it `duration_ms` later.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Injection time, milliseconds from schedule start.
    pub at_ms: u64,
    /// How long the fault persists before the chaos source clears it,
    /// milliseconds.
    pub duration_ms: u64,
    /// The array channel the fault strikes.
    pub channel: usize,
    /// The defect itself.
    pub fault: Fault,
}

impl FaultEvent {
    /// The time at which the chaos source clears this fault.
    #[inline]
    pub fn clears_at_ms(&self) -> u64 {
        self.at_ms.saturating_add(self.duration_ms)
    }
}

/// A time-ordered, replayable list of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events (sorted by strike time;
    /// the given order breaks ties).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_ms);
        FaultSchedule { events }
    }

    /// The behavioral fault universe a chaos source can inject into a
    /// live [`sensor::SmartSensorUnit`] mid-run: every fault with a
    /// [`Fault::as_ring_fault`] mapping. Gate-level, deck, and
    /// environment faults (which need a rebuilt netlist, deck, or
    /// field) are excluded by construction.
    pub fn unit_universe() -> Vec<Fault> {
        let mut u = Vec::new();
        u.push(Fault::DeadRing);
        for period_s in [100e-12, 500e-12, 2e-9] {
            u.push(Fault::StuckRing { period_s });
        }
        for factor in [0.5, 1.05, 1.5, 4.0] {
            u.push(Fault::SlowRing { factor });
        }
        for bit in [0u8, 4, 10, 15] {
            u.push(Fault::CounterBitFlip { bit });
        }
        for captures in [4u32, 64, 100_000] {
            u.push(Fault::MetastableCapture { captures });
        }
        for delta_v in [0.05, 0.1, 0.3] {
            u.push(Fault::SupplyDroop { delta_v });
        }
        debug_assert!(u.iter().all(|f| f.as_ring_fault().is_some()));
        u
    }

    /// The network fault universe a fleet simulator can apply to one
    /// node's fabric link mid-run: severed, lossy at several rates,
    /// and slow at several added latencies. Every entry satisfies
    /// [`Fault::is_network_fault`].
    pub fn net_universe() -> Vec<Fault> {
        let mut u = vec![Fault::LinkPartition];
        for drop in [0.05, 0.25, 1.0] {
            u.push(Fault::LinkLoss { drop });
        }
        for add_ms in [10, 50, 200] {
            u.push(Fault::LinkDelay { add_ms });
        }
        debug_assert!(u.iter().all(Fault::is_network_fault));
        u
    }

    /// [`FaultSchedule::seeded`] over the network universe
    /// ([`FaultSchedule::net_universe`]); `channel` names the fleet
    /// node whose link is struck. The constructor the fleet
    /// simulator's chaos source uses.
    pub fn seeded_net_faults(seed: u64, count: usize, horizon_ms: u64, nodes: usize) -> Self {
        FaultSchedule::seeded(seed, count, horizon_ms, nodes, &Self::net_universe())
    }

    /// Samples a seeded schedule of `count` events uniformly over
    /// `[0, horizon_ms)` against an array of `channels` sites, drawing
    /// faults (with replacement) from `universe`. Durations are
    /// sampled between 5 % and 20 % of the horizon, so faults overlap
    /// and clear while the run is still going — the storm a soak test
    /// wants. The same `(seed, count, horizon_ms, channels, universe)`
    /// always replays the identical schedule.
    ///
    /// # Panics
    ///
    /// Panics when `universe` is empty or `channels == 0` — there is
    /// nothing to schedule.
    pub fn seeded(
        seed: u64,
        count: usize,
        horizon_ms: u64,
        channels: usize,
        universe: &[Fault],
    ) -> Self {
        assert!(!universe.is_empty(), "fault universe is empty");
        assert!(channels > 0, "schedule needs at least one channel");
        let horizon = horizon_ms.max(1);
        let dur_lo = (horizon / 20).max(1);
        let dur_hi = (horizon / 5).max(dur_lo + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let events = (0..count)
            .map(|_| FaultEvent {
                at_ms: rng.random_range(0..horizon),
                duration_ms: rng.random_range(dur_lo..dur_hi),
                channel: rng.random_range(0..channels as u64) as usize,
                fault: universe[rng.random_range(0..universe.len() as u64) as usize].clone(),
            })
            .collect();
        FaultSchedule::new(events)
    }

    /// [`FaultSchedule::seeded`] over the injectable behavioral
    /// universe ([`FaultSchedule::unit_universe`]) — the constructor
    /// the runtime's chaos source uses.
    pub fn seeded_unit_faults(seed: u64, count: usize, horizon_ms: u64, channels: usize) -> Self {
        FaultSchedule::seeded(seed, count, horizon_ms, channels, &Self::unit_universe())
    }

    /// Every event, in strike order.
    #[inline]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events striking inside `[from_ms, to_ms)` — the polling
    /// window a chaos source checks each tick.
    pub fn due(&self, from_ms: u64, to_ms: u64) -> &[FaultEvent] {
        let start = self.events.partition_point(|e| e.at_ms < from_ms);
        let end = self.events.partition_point(|e| e.at_ms < to_ms);
        &self.events[start..end]
    }

    /// Latest clear time across the schedule: after this instant no
    /// scheduled fault is still active.
    pub fn all_clear_ms(&self) -> u64 {
        self.events
            .iter()
            .map(FaultEvent::clears_at_ms)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedule_is_deterministic_and_sorted() {
        let a = FaultSchedule::seeded_unit_faults(7, 25, 60_000, 9);
        let b = FaultSchedule::seeded_unit_faults(7, 25, 60_000, 9);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultSchedule::seeded_unit_faults(8, 25, 60_000, 9);
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.len(), 25);
        for w in a.events().windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "events in strike order");
        }
        for e in a.events() {
            assert!(e.at_ms < 60_000);
            assert!(e.channel < 9);
            assert!(e.duration_ms >= 1);
            assert!(e.clears_at_ms() > e.at_ms);
        }
    }

    #[test]
    fn unit_universe_is_fully_injectable() {
        let u = FaultSchedule::unit_universe();
        assert!(!u.is_empty());
        for f in &u {
            assert!(
                f.as_ring_fault().is_some(),
                "{f} is not injectable into a live unit"
            );
        }
    }

    #[test]
    fn net_universe_is_fully_network_and_schedulable() {
        let u = FaultSchedule::net_universe();
        assert!(!u.is_empty());
        for f in &u {
            assert!(f.is_network_fault(), "{f} is not a network fault");
        }
        let a = FaultSchedule::seeded_net_faults(11, 8, 30_000, 4);
        let b = FaultSchedule::seeded_net_faults(11, 8, 30_000, 4);
        assert_eq!(a, b, "same seed, same storm");
        for e in a.events() {
            assert!(e.channel < 4);
            assert!(e.fault.is_network_fault());
        }
    }

    #[test]
    fn due_windows_partition_the_schedule() {
        let s = FaultSchedule::seeded_unit_faults(42, 40, 10_000, 3);
        let mut seen = 0;
        let mut cursor = 0;
        while cursor < 10_000 {
            seen += s.due(cursor, cursor + 777).len();
            cursor += 777;
        }
        assert_eq!(seen, s.len(), "tiling windows see every event once");
        assert!(s.due(10_000, u64::MAX).is_empty());
        assert!(s.all_clear_ms() > 0);
    }

    #[test]
    fn explicit_events_sort_by_strike_time() {
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at_ms: 500,
                duration_ms: 10,
                channel: 0,
                fault: Fault::DeadRing,
            },
            FaultEvent {
                at_ms: 100,
                duration_ms: 10,
                channel: 1,
                fault: Fault::SlowRing { factor: 2.0 },
            },
        ]);
        assert_eq!(s.events()[0].at_ms, 100);
        assert_eq!(s.due(0, 200).len(), 1);
        assert_eq!(s.due(100, 501).len(), 2);
    }
}
