//! Text and JSON rendering of campaign results for the `faultsim` CLI.
//!
//! JSON is emitted by hand (the workspace is offline — no serde), with
//! the same escaping discipline as `netcheck` and `sta`.

use crate::campaign::{CampaignResult, Outcome};

/// Escapes a string for inclusion in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn outcome_name(o: &Outcome) -> &'static str {
    match o {
        Outcome::Detected { .. } => "detected",
        Outcome::SilentCorruption { .. } => "silent-corruption",
        Outcome::Benign { .. } => "benign",
        Outcome::Hang { .. } => "hang",
    }
}

fn outcome_detail(o: &Outcome) -> String {
    match o {
        Outcome::Detected { how } => how.clone(),
        Outcome::SilentCorruption { error_c } | Outcome::Benign { error_c } => {
            format!("{error_c:+.2} °C")
        }
        Outcome::Hang { detail } => detail.clone(),
    }
}

/// Renders the campaign as a human-readable report.
pub fn render_text(result: &CampaignResult, verbose: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault campaign: seed {}  {} fault(s)  {:.2} s  {:.1} faults/s\n",
        result.config.seed,
        result.runs.len(),
        result.elapsed_s,
        result.throughput(),
    ));
    out.push_str(&format!(
        "outcomes: {} detected  {} benign  {} silent  {} hang  ({} panic(s))\n",
        result.detected(),
        result.benign(),
        result.silent(),
        result.hung(),
        result.panics,
    ));
    out.push_str("per class:\n");
    out.push_str(&format!(
        "  {:<18} {:>5} {:>9} {:>7} {:>7} {:>5}  coverage\n",
        "class", "total", "detected", "benign", "silent", "hang"
    ));
    for (class, n, det, ben, sil, hung) in result.per_class() {
        out.push_str(&format!(
            "  {:<18} {:>5} {:>9} {:>7} {:>7} {:>5}  {:>6.1} %\n",
            class.to_string(),
            n,
            det,
            ben,
            sil,
            hung,
            100.0 * (det + ben) as f64 / n as f64,
        ));
    }
    out.push_str(&format!(
        "fault coverage: {:.1} %\n",
        result.coverage() * 100.0
    ));
    if verbose {
        out.push_str("runs:\n");
        for run in &result.runs {
            out.push_str(&format!(
                "  {:<18} {:<42} {}\n",
                outcome_name(&run.outcome),
                run.fault.to_string(),
                outcome_detail(&run.outcome),
            ));
        }
    } else {
        // Always surface the runs that demand attention.
        for run in &result.runs {
            if matches!(
                run.outcome,
                Outcome::SilentCorruption { .. } | Outcome::Hang { .. }
            ) {
                out.push_str(&format!(
                    "  !! {:<18} {:<42} {}\n",
                    outcome_name(&run.outcome),
                    run.fault.to_string(),
                    outcome_detail(&run.outcome),
                ));
            }
        }
    }
    out
}

/// Renders the campaign as a JSON object (no trailing newline).
pub fn render_json(result: &CampaignResult) -> String {
    let classes: Vec<String> = result
        .per_class()
        .iter()
        .map(|(class, n, det, ben, sil, hung)| {
            format!(
                "{{\"class\":\"{}\",\"total\":{},\"detected\":{},\"benign\":{},\
                 \"silent\":{},\"hang\":{},\"coverage\":{:.4}}}",
                class,
                n,
                det,
                ben,
                sil,
                hung,
                (det + ben) as f64 / *n as f64,
            )
        })
        .collect();
    let runs: Vec<String> = result
        .runs
        .iter()
        .map(|run| {
            format!(
                "{{\"fault\":\"{}\",\"class\":\"{}\",\"outcome\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&run.fault.to_string()),
                run.fault.class(),
                outcome_name(&run.outcome),
                json_escape(&outcome_detail(&run.outcome)),
            )
        })
        .collect();
    format!(
        "{{\"seed\":{},\"faults\":{},\"elapsed_s\":{:.4},\"throughput_per_s\":{:.2},\
         \"detected\":{},\"benign\":{},\"silent\":{},\"hang\":{},\"panics\":{},\
         \"coverage\":{:.4},\"classes\":[{}],\"runs\":[{}]}}",
        result.config.seed,
        result.runs.len(),
        result.elapsed_s,
        result.throughput(),
        result.detected(),
        result.benign(),
        result.silent(),
        result.hung(),
        result.panics,
        result.coverage(),
        classes.join(","),
        runs.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, FaultRun};
    use crate::fault::Fault;

    fn tiny_result() -> CampaignResult {
        CampaignResult {
            runs: vec![
                FaultRun {
                    fault: Fault::DeadRing,
                    outcome: Outcome::Detected {
                        how: "quarantine".to_string(),
                    },
                },
                FaultRun {
                    fault: Fault::CounterBitFlip { bit: 1 },
                    outcome: Outcome::Benign { error_c: 0.26 },
                },
            ],
            panics: 0,
            elapsed_s: 0.5,
            config: CampaignConfig::default(),
        }
    }

    #[test]
    fn text_report_carries_totals_and_classes() {
        let r = tiny_result();
        let text = render_text(&r, false);
        assert!(text.contains("2 fault(s)"));
        assert!(text.contains("1 detected  1 benign  0 silent  0 hang"));
        assert!(text.contains("dead-ring"));
        assert!(text.contains("counter-bit-flip"));
        assert!(text.contains("fault coverage: 100.0 %"));
        // Verbose mode lists every run.
        let verbose = render_text(&r, true);
        assert!(verbose.contains("dead ring"));
        assert!(verbose.contains("+0.26 °C"));
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let mut r = tiny_result();
        r.runs[0].outcome = Outcome::Detected {
            how: "quoted \"cause\"\nwith newline".to_string(),
        };
        let json = render_json(&r);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"cause\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"coverage\":1.0000"));
        assert!(!json.contains('\n'), "single-line JSON");
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\tb"), "a\\tb");
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape(r#"a\b"#), r#"a\\b"#);
    }
}
