//! The seeded fault-injection campaign runner.
//!
//! A campaign takes a fault universe (every enumerable fault site of the
//! reference sensing stack), optionally samples it with a seeded RNG,
//! runs each faulted variant under watchdog budgets, and classifies
//! every run into exactly one [`Outcome`]:
//!
//! * [`Outcome::Detected`] — a typed error, alarm, or quarantine fired;
//!   the stack *knows* something is wrong;
//! * [`Outcome::SilentCorruption`] — the stack returned `Ok` with a
//!   reading off by more than the tolerance and no flag raised — the
//!   outcome the hardening exists to eliminate;
//! * [`Outcome::Benign`] — the reading stayed within tolerance;
//! * [`Outcome::Hang`] — a watchdog budget expired (the faulted variant
//!   would otherwise run away). Panics caught during a run are also
//!   folded here and counted separately — both must be zero on the
//!   reference stack.
//!
//! Fault coverage is `(detected + benign) / classified`: the fraction
//! of the universe that is either caught or harmless.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use dsim::{ring_oscillator, GateOp, Logic, Netlist, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensor::health::HealthPolicy;
use sensor::unit::{SensorConfig, SmartSensorUnit};
use sensor::{SensorArray, SensorError};
use spicelite::{run_transient, Circuit, SimError, Stimulus, TranOptions};
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, TempRange};

use crate::fault::{Fault, FaultClass};

/// Classification of one fault run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A typed error, alarm, or quarantine fired.
    Detected {
        /// What fired, for the report.
        how: String,
    },
    /// `Ok` with a wrong reading and no flag: the failure mode the
    /// hardening must eliminate.
    SilentCorruption {
        /// Reading error vs the healthy baseline, °C.
        error_c: f64,
    },
    /// The reading stayed within tolerance.
    Benign {
        /// Reading error vs the healthy baseline, °C.
        error_c: f64,
    },
    /// A watchdog budget expired (or a panic was caught).
    Hang {
        /// Which budget (or panic payload).
        detail: String,
    },
}

/// One completed fault run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRun {
    /// The injected fault.
    pub fault: Fault,
    /// Its classification.
    pub outcome: Outcome,
}

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// RNG seed for fault sampling — same seed, same campaign.
    pub seed: u64,
    /// How many faults to run. `0` enumerates the whole universe once;
    /// otherwise faults are sampled uniformly (with replacement) from
    /// the universe.
    pub faults: usize,
    /// Nominal junction temperature of the campaign, °C.
    pub junction_c: f64,
    /// Silent-corruption tolerance on the reading, °C. Matched to the
    /// health policy's neighbor tolerance so the silent window between
    /// "too small to matter" and "big enough to quarantine" is empty.
    pub tolerance_c: f64,
    /// dsim watchdog: maximum events per gate-level run.
    pub event_budget: u64,
    /// Gate-level observation window, femtoseconds.
    pub window_fs: u64,
    /// Include transistor-level deck faults (slow; off for the smoke
    /// campaign).
    pub with_spice: bool,
}

impl Default for CampaignConfig {
    /// The CI smoke setup: seed 42, sampled 100-fault campaign at
    /// 85 °C, 3 °C tolerance, 200k-event / 50-period budgets, no SPICE.
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            faults: 100,
            junction_c: 85.0,
            tolerance_c: 3.0,
            event_budget: 200_000,
            window_fs: 50_000_000,
            with_spice: false,
        }
    }
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Every run, in execution order.
    pub runs: Vec<FaultRun>,
    /// Panics caught (also folded into [`Outcome::Hang`]); must be zero.
    pub panics: u64,
    /// Wall-clock duration of the campaign, seconds.
    pub elapsed_s: f64,
    /// The configuration that produced this result.
    pub config: CampaignConfig,
}

impl CampaignResult {
    fn count(&self, pred: impl Fn(&Outcome) -> bool) -> usize {
        self.runs.iter().filter(|r| pred(&r.outcome)).count()
    }

    /// Number of detected runs.
    pub fn detected(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Detected { .. }))
    }

    /// Number of silently corrupted runs.
    pub fn silent(&self) -> usize {
        self.count(|o| matches!(o, Outcome::SilentCorruption { .. }))
    }

    /// Number of benign runs.
    pub fn benign(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Benign { .. }))
    }

    /// Number of hung (budget-exhausted or panicked) runs.
    pub fn hung(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Hang { .. }))
    }

    /// Fault coverage: `(detected + benign) / classified`.
    pub fn coverage(&self) -> f64 {
        if self.runs.is_empty() {
            return 1.0;
        }
        (self.detected() + self.benign()) as f64 / self.runs.len() as f64
    }

    /// Campaign throughput, faults per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.runs.len() as f64 / self.elapsed_s
    }

    /// `(class, total, detected, benign, silent, hung)` rows in class
    /// order — the per-class coverage table.
    pub fn per_class(&self) -> Vec<(FaultClass, usize, usize, usize, usize, usize)> {
        let mut classes: Vec<FaultClass> = self.runs.iter().map(|r| r.fault.class()).collect();
        classes.sort();
        classes.dedup();
        classes
            .into_iter()
            .map(|c| {
                let of_class = |pred: &dyn Fn(&Outcome) -> bool| {
                    self.runs
                        .iter()
                        .filter(|r| r.fault.class() == c && pred(&r.outcome))
                        .count()
                };
                (
                    c,
                    self.runs.iter().filter(|r| r.fault.class() == c).count(),
                    of_class(&|o| matches!(o, Outcome::Detected { .. })),
                    of_class(&|o| matches!(o, Outcome::Benign { .. })),
                    of_class(&|o| matches!(o, Outcome::SilentCorruption { .. })),
                    of_class(&|o| matches!(o, Outcome::Hang { .. })),
                )
            })
            .collect()
    }
}

/// Gate delay of the reference gate-level ring, femtoseconds.
pub const REF_GATE_DELAY_FS: u64 = 100_000;
/// Stage count of the reference ring (the paper's 5×INV element).
pub const REF_STAGES: usize = 5;

/// Enumerates the fault universe of the 5×INV reference ring: every
/// stuck-at site, per-stage delay faults, and the behavioral unit
/// faults. Deck faults are appended only when `with_spice` is set.
pub fn reference_universe(with_spice: bool) -> Vec<Fault> {
    let mut u = Vec::new();
    for stage in 0..REF_STAGES {
        for value in [Logic::Zero, Logic::One] {
            u.push(Fault::StuckAt { stage, value });
        }
    }
    for component in 0..REF_STAGES {
        for factor in [1.005, 1.2, 2.0, 4.0] {
            u.push(Fault::DelayFault { component, factor });
        }
    }
    u.push(Fault::DeadRing);
    for period_s in [100e-12, 500e-12, 2e-9] {
        u.push(Fault::StuckRing { period_s });
    }
    for factor in [0.5, 0.999, 1.001, 1.05, 1.5, 4.0] {
        u.push(Fault::SlowRing { factor });
    }
    for bit in 0..16 {
        u.push(Fault::CounterBitFlip { bit });
    }
    for captures in [1, 2, 4, 8, 64, 1000] {
        u.push(Fault::MetastableCapture { captures });
    }
    for delta_v in [0.002, 0.005, 0.05, 0.1, 0.3] {
        u.push(Fault::SupplyDroop { delta_v });
    }
    for junction_c in [165.0, 200.0, 300.0] {
        u.push(Fault::ThermalRunaway { junction_c });
    }
    if with_spice {
        for fraction in [0.02, 0.3, 0.7] {
            u.push(Fault::DeckSupplyDroop { fraction });
        }
    }
    u
}

/// The reference behavioral sensing unit (5×INV, 0.35 µm, calibrated
/// over the paper range).
fn reference_unit() -> SmartSensorUnit {
    let tech = Technology::um350();
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).expect("reference gate is valid");
    let ring = RingOscillator::uniform(gate, REF_STAGES).expect("reference ring is valid");
    let mut unit =
        SmartSensorUnit::new(SensorConfig::new(ring, tech)).expect("reference config is valid");
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
        .expect("reference calibration");
    unit
}

/// Builds the 3-site reference array: the faulted site plus two healthy
/// neighbors, as neighbor-vote monitoring requires.
fn reference_array() -> SensorArray {
    let mut a = SensorArray::new();
    for i in 0..3 {
        a = a.with_site(format!("s{i}"), 1e-3 * i as f64, 1e-3, reference_unit());
    }
    a
}

/// Builds the gate-level reference ring and returns the netlist and its
/// stage nets.
fn reference_netlist() -> (Netlist, Vec<dsim::SignalId>) {
    let mut nl = Netlist::new();
    let ports = ring_oscillator(
        &mut nl,
        &[GateOp::Inv; REF_STAGES],
        "ring",
        REF_GATE_DELAY_FS,
    )
    .expect("reference ring builds");
    (nl, ports.stages)
}

/// Measures the steady ring period at gate level from traced rising
/// edges of `out`, under the event watchdog.
///
/// Returns `Ok(None)` when the ring shows no (or too little) activity,
/// `Err(at_fs)` when the event budget expired.
fn gate_period_fs(
    nl: Netlist,
    out: dsim::SignalId,
    window_fs: u64,
    event_budget: u64,
) -> Result<Option<f64>, u64> {
    let mut sim = Simulator::new(nl);
    sim.enable_trace();
    match sim.run_until_budget(window_fs, event_budget) {
        Err(_) => Err(sim.time_fs()),
        Ok(_) => {
            let rises: Vec<u64> = sim
                .changes()
                .iter()
                .filter(|c| c.signal == out && c.value == Logic::One)
                .map(|c| c.time_fs)
                .collect();
            // Skip the first edges (settlement) and require a real run.
            if rises.len() < 6 {
                return Ok(None);
            }
            let first = rises[2];
            let last = *rises.last().expect("len checked");
            Ok(Some((last - first) as f64 / (rises.len() as f64 - 3.0)))
        }
    }
}

/// Relative period slope of the reference sensing element, 1/°C —
/// converts a fractional period deviation into an equivalent
/// temperature error for gate-level classification.
fn relative_slope_per_c(at: Celsius) -> f64 {
    let unit = reference_unit();
    let cfg = unit.config();
    let p0 = cfg
        .ring
        .period(&cfg.tech, Celsius::new(at.get() - 5.0))
        .expect("reference period")
        .get();
    let p1 = cfg
        .ring
        .period(&cfg.tech, Celsius::new(at.get() + 5.0))
        .expect("reference period")
        .get();
    let pm = cfg
        .ring
        .period(&cfg.tech, at)
        .expect("reference period")
        .get();
    (p1 - p0) / (10.0 * pm)
}

/// Runs one gate-level fault (stuck-at or delay) and classifies it.
fn run_gate_fault(fault: &Fault, config: &CampaignConfig) -> Outcome {
    let (mut nl, stages) = reference_netlist();
    if let Err(e) = fault.inject_netlist(&mut nl) {
        return Outcome::Detected {
            how: format!("injection rejected: {e}"),
        };
    }
    let out = *stages.last().expect("ring has stages");
    // Healthy baseline on the pristine netlist.
    let (healthy_nl, _) = reference_netlist();
    let healthy = match gate_period_fs(healthy_nl, out, config.window_fs, config.event_budget) {
        Ok(Some(p)) => p,
        Ok(None) => {
            return Outcome::Hang {
                detail: "healthy reference ring shows no activity".to_string(),
            }
        }
        Err(at) => {
            return Outcome::Hang {
                detail: format!("healthy reference exhausted budget at {at} fs"),
            }
        }
    };
    let mut sim = Simulator::new(nl);
    sim.enable_trace();
    fault.apply_stuck_at(&mut sim, &stages);
    let faulted = match sim.run_until_budget(config.window_fs, config.event_budget) {
        Err(_) => {
            return Outcome::Hang {
                detail: format!(
                    "event budget {} exhausted at {} fs",
                    config.event_budget,
                    sim.time_fs()
                ),
            }
        }
        Ok(_) => {
            let rises: Vec<u64> = sim
                .changes()
                .iter()
                .filter(|c| c.signal == out && c.value == Logic::One)
                .map(|c| c.time_fs)
                .collect();
            if rises.len() < 6 {
                return Outcome::Detected {
                    how: "no-activity monitor: ring output stopped toggling".to_string(),
                };
            }
            let first = rises[2];
            let last = *rises.last().expect("len checked");
            (last - first) as f64 / (rises.len() as f64 - 3.0)
        }
    };
    let deviation = (faulted - healthy) / healthy;
    if deviation.abs() > 0.25 {
        return Outcome::Detected {
            how: format!(
                "period plausible-band monitor: {:+.1} % off nominal",
                deviation * 100.0
            ),
        };
    }
    let equiv_c = deviation / relative_slope_per_c(Celsius::new(config.junction_c));
    if equiv_c.abs() > config.tolerance_c {
        Outcome::Detected {
            how: format!("neighbor-vote monitor: {equiv_c:+.1} °C equivalent deviation"),
        }
    } else {
        Outcome::Benign { error_c: equiv_c }
    }
}

/// Runs one behavioral unit fault through the hardened 3-site array and
/// classifies it.
fn run_unit_fault(fault: &Fault, config: &CampaignConfig) -> Outcome {
    let mut array = reference_array();
    fault.inject_unit(&mut array.sites_mut()[0].unit);
    let policy = {
        let mut p = HealthPolicy::for_unit(&array.sites()[1].unit, TempRange::paper(), 0.25)
            .expect("reference policy derives");
        p.neighbor_tolerance_c = config.tolerance_c;
        p
    };
    let nominal = config.junction_c;
    // Thermal runaway is an environment fault: the faulted site's
    // neighborhood overheats while the rest of the die stays nominal.
    let hot = match *fault {
        Fault::ThermalRunaway { junction_c } => Some(junction_c),
        _ => None,
    };
    let field = move |x: f64, _y: f64| -> f64 {
        match hot {
            Some(h) if x < 0.5e-3 => h,
            _ => nominal,
        }
    };
    match array.scan_degraded(&field, &policy) {
        Err(SensorError::NoHealthyRings { total, quarantined }) => Outcome::Detected {
            how: format!("quarantine exhausted the array ({quarantined}/{total})"),
        },
        Err(e) => Outcome::Detected {
            how: format!("typed error: {e}"),
        },
        Ok(reading) => {
            let error_c = reading.value - nominal;
            if reading.is_degraded() {
                if error_c.abs() <= config.tolerance_c {
                    Outcome::Detected {
                        how: format!(
                            "quarantine: {}",
                            reading
                                .quarantined
                                .iter()
                                .map(|(n, s)| format!("{n} ({s:?})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    }
                } else {
                    // Quarantine fired but the served value is still off:
                    // the degradation contract is broken — count it
                    // against coverage, not for it.
                    Outcome::SilentCorruption { error_c }
                }
            } else if error_c.abs() <= config.tolerance_c {
                Outcome::Benign { error_c }
            } else {
                Outcome::SilentCorruption { error_c }
            }
        }
    }
}

/// Runs one transistor-level deck fault: an RC supply deck with the
/// sagged rail, watched by a rail monitor and the step-budget watchdog.
fn run_deck_fault(fault: &Fault, _config: &CampaignConfig) -> Outcome {
    let nominal = 3.3;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let rail = ckt.node("rail");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, Stimulus::Dc(nominal))
        .expect("deck builds");
    ckt.add_resistor("Rgrid", vdd, rail, 1.0)
        .expect("deck builds");
    ckt.add_capacitor("Cdecap", rail, Circuit::GROUND, 1e-9)
        .expect("deck builds");
    fault.inject_circuit(&mut ckt);
    let opts = TranOptions::to_time(50e-9)
        .with_uic()
        .with_steps(0.5e-9, 0.5e-9)
        .with_max_steps(10_000);
    match run_transient(&ckt, &opts) {
        Err(SimError::ConvergenceTimeout { steps, at_time }) => Outcome::Hang {
            detail: format!("step budget {steps} exhausted at t = {at_time:.3e} s"),
        },
        Err(e) => Outcome::Detected {
            how: format!("typed error: {e}"),
        },
        Ok(wave) => {
            let v = wave.sample_at("rail", 50e-9).expect("rail is a deck node");
            let sag = (nominal - v) / nominal;
            if sag.abs() > 0.05 {
                Outcome::Detected {
                    how: format!(
                        "supply monitor: rail at {:.1} % of nominal",
                        (v / nominal) * 100.0
                    ),
                }
            } else {
                // Rail noise below the monitor threshold shifts the
                // reading negligibly.
                Outcome::Benign { error_c: 0.0 }
            }
        }
    }
}

/// Runs a single fault and classifies it; panics inside the run are
/// caught and reported as [`Outcome::Hang`].
pub fn run_fault(fault: &Fault, config: &CampaignConfig) -> (Outcome, bool) {
    let f = fault.clone();
    let cfg = config.clone();
    let result = catch_unwind(AssertUnwindSafe(move || match f {
        Fault::StuckAt { .. } | Fault::DelayFault { .. } => run_gate_fault(&f, &cfg),
        Fault::DeckSupplyDroop { .. } => run_deck_fault(&f, &cfg),
        // Network faults strike the fleet fabric, not a sensor stack:
        // a single-unit campaign run cannot observe them.
        Fault::LinkPartition | Fault::LinkLoss { .. } | Fault::LinkDelay { .. } => {
            Outcome::Benign { error_c: 0.0 }
        }
        _ => run_unit_fault(&f, &cfg),
    }));
    match result {
        Ok(outcome) => (outcome, false),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (
                Outcome::Hang {
                    detail: format!("panic: {msg}"),
                },
                true,
            )
        }
    }
}

/// Runs a full seeded campaign over the reference stack.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    let universe = reference_universe(config.with_spice);
    let plan: Vec<Fault> = if config.faults == 0 {
        universe
    } else {
        let mut rng = StdRng::seed_from_u64(config.seed);
        (0..config.faults)
            .map(|_| universe[rng.random_range(0..universe.len() as u64) as usize].clone())
            .collect()
    };
    let start = Instant::now();
    let mut runs = Vec::with_capacity(plan.len());
    let mut panics = 0u64;
    for fault in plan {
        let (outcome, panicked) = run_fault(&fault, config);
        if panicked {
            panics += 1;
        }
        runs.push(FaultRun { fault, outcome });
    }
    CampaignResult {
        runs,
        panics,
        elapsed_s: start.elapsed().as_secs_f64(),
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            faults: 0, // full enumeration
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn full_reference_campaign_is_clean() {
        let result = run_campaign(&quick_config());
        assert_eq!(result.panics, 0, "no panics");
        assert_eq!(result.hung(), 0, "no hangs: {:?}", hung_runs(&result));
        assert_eq!(
            result.silent(),
            0,
            "no silent corruption: {:?}",
            silent_runs(&result)
        );
        assert!(
            result.coverage() >= 0.9,
            "coverage {:.3}",
            result.coverage()
        );
        assert_eq!(
            result.runs.len(),
            reference_universe(false).len(),
            "every fault classified"
        );
    }

    fn hung_runs(r: &CampaignResult) -> Vec<&FaultRun> {
        r.runs
            .iter()
            .filter(|x| matches!(x.outcome, Outcome::Hang { .. }))
            .collect()
    }

    fn silent_runs(r: &CampaignResult) -> Vec<&FaultRun> {
        r.runs
            .iter()
            .filter(|x| matches!(x.outcome, Outcome::SilentCorruption { .. }))
            .collect()
    }

    #[test]
    fn sampled_campaign_is_deterministic_per_seed() {
        let cfg = CampaignConfig {
            faults: 20,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.runs, b.runs, "same seed, same campaign");
        let c = run_campaign(&CampaignConfig { seed: 43, ..cfg });
        assert_ne!(
            a.runs.iter().map(|r| &r.fault).collect::<Vec<_>>(),
            c.runs.iter().map(|r| &r.fault).collect::<Vec<_>>(),
            "different seed, different sample"
        );
    }

    #[test]
    fn stuck_at_faults_are_all_detected() {
        let cfg = quick_config();
        for stage in 0..REF_STAGES {
            for value in [Logic::Zero, Logic::One] {
                let (outcome, panicked) = run_fault(&Fault::StuckAt { stage, value }, &cfg);
                assert!(!panicked);
                assert!(
                    matches!(outcome, Outcome::Detected { .. }),
                    "stuck-at-{value:?} stage {stage}: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn dead_ring_detected_and_reading_served() {
        let cfg = quick_config();
        let (outcome, _) = run_fault(&Fault::DeadRing, &cfg);
        match outcome {
            Outcome::Detected { how } => assert!(how.contains("quarantine"), "{how}"),
            other => panic!("dead ring must be quarantined, got {other:?}"),
        }
    }

    #[test]
    fn deck_droop_classified_by_supply_monitor() {
        let cfg = CampaignConfig {
            with_spice: true,
            ..quick_config()
        };
        let (big, _) = run_fault(&Fault::DeckSupplyDroop { fraction: 0.3 }, &cfg);
        assert!(matches!(big, Outcome::Detected { .. }), "{big:?}");
        let (small, _) = run_fault(&Fault::DeckSupplyDroop { fraction: 0.02 }, &cfg);
        assert!(matches!(small, Outcome::Benign { .. }), "{small:?}");
    }

    #[test]
    fn per_class_rows_sum_to_totals() {
        let result = run_campaign(&quick_config());
        let rows = result.per_class();
        let total: usize = rows.iter().map(|r| r.1).sum();
        assert_eq!(total, result.runs.len());
        for (class, n, det, ben, sil, hung) in rows {
            assert_eq!(det + ben + sil + hung, n, "{class}: partition is exact");
        }
    }
}
