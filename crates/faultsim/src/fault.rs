//! The fault taxonomy and its injection implementations.
//!
//! A [`Fault`] names one concrete defect at one concrete site. Faults
//! strike three layers of the stack:
//!
//! * **gate level** ([`Fault::StuckAt`], [`Fault::DelayFault`]) —
//!   injected into a [`dsim`] netlist/simulator via the `force`
//!   primitive and the component-delay mutation API;
//! * **behavioral unit** (dead/stuck/slow ring, counter bit flip,
//!   metastable capture, supply droop, thermal runaway) — injected into
//!   a [`sensor::SmartSensorUnit`] through its [`RingFault`] hooks;
//! * **transistor level** ([`Fault::DeckSupplyDroop`]) — injected into
//!   a [`spicelite`] [`Circuit`] by sagging every DC supply.
//!
//! [`FaultClass`] buckets faults for per-class coverage reporting.

use dsim::{Logic, Netlist, Simulator};
use sensor::unit::RingFault;
use sensor::SmartSensorUnit;
use spicelite::devices::Device;
use spicelite::{Circuit, Stimulus};

use std::fmt;

/// One concrete injectable defect.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// A ring net is stuck at a logic level (gate-level `force`).
    StuckAt {
        /// Ring stage index whose output net is pinned.
        stage: usize,
        /// The pinned level.
        value: Logic,
    },
    /// A gate's propagation delay is scaled (resistive open / bridging
    /// defect on one cell arc), gate level.
    DelayFault {
        /// Netlist component index.
        component: usize,
        /// Multiplier on the healthy delay.
        factor: f64,
    },
    /// The sensing ring is dead: no oscillation at all.
    DeadRing,
    /// The ring oscillates at a fixed, temperature-insensitive period.
    StuckRing {
        /// The pinned period, seconds.
        period_s: f64,
    },
    /// Every stage slowed/sped by a common factor (behavioral delay
    /// fault on the sensing element).
    SlowRing {
        /// Multiplier on the healthy period.
        factor: f64,
    },
    /// One digitizer count bit is stuck-flipped.
    CounterBitFlip {
        /// The flipped bit.
        bit: u8,
    },
    /// The next `captures` digitizer captures resolve metastably.
    MetastableCapture {
        /// Number of corrupted captures.
        captures: u32,
    },
    /// The unit's local supply sags.
    SupplyDroop {
        /// Droop magnitude, volts.
        delta_v: f64,
    },
    /// Thermal runaway drives the faulted site's junction far beyond
    /// the qualified range.
    ThermalRunaway {
        /// The runaway junction temperature, °C.
        junction_c: f64,
    },
    /// Every DC supply of a SPICE deck sags by the given fraction
    /// (transistor level).
    DeckSupplyDroop {
        /// Relative sag, e.g. `0.3` for a rail at 70 %.
        fraction: f64,
    },
    /// The struck node's fleet link is severed for the event's
    /// duration (network level; the schedule's `channel` names the
    /// node). In-flight traffic is held until heal — see
    /// `dst::SimNet`.
    LinkPartition,
    /// The struck node's fleet link drops a fraction of messages
    /// (network level).
    LinkLoss {
        /// Drop probability in `[0, 1]`; `1.0` is a black-hole link.
        drop: f64,
    },
    /// The struck node's fleet link gains extra one-way latency
    /// (network level).
    LinkDelay {
        /// Added latency, milliseconds.
        add_ms: u64,
    },
}

/// Coarse fault classes for coverage bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Stuck-at-0/1 on a ring net.
    StuckAt,
    /// Gate-level delay fault.
    Delay,
    /// Dead ring.
    DeadRing,
    /// Temperature-insensitive stuck period.
    StuckRing,
    /// Behavioral whole-ring delay scale.
    SlowRing,
    /// Counter bit flip.
    CounterBitFlip,
    /// Metastable digitizer capture.
    Metastable,
    /// Unit-local supply droop.
    SupplyDroop,
    /// Thermal runaway scenario.
    ThermalRunaway,
    /// SPICE-deck supply droop.
    DeckSupplyDroop,
    /// Severed fleet link.
    LinkPartition,
    /// Lossy fleet link.
    LinkLoss,
    /// Slow fleet link.
    LinkDelay,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::StuckAt => "stuck-at",
            FaultClass::Delay => "delay",
            FaultClass::DeadRing => "dead-ring",
            FaultClass::StuckRing => "stuck-ring",
            FaultClass::SlowRing => "slow-ring",
            FaultClass::CounterBitFlip => "counter-bit-flip",
            FaultClass::Metastable => "metastable",
            FaultClass::SupplyDroop => "supply-droop",
            FaultClass::ThermalRunaway => "thermal-runaway",
            FaultClass::DeckSupplyDroop => "deck-supply-droop",
            FaultClass::LinkPartition => "link-partition",
            FaultClass::LinkLoss => "link-loss",
            FaultClass::LinkDelay => "link-delay",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StuckAt { stage, value } => write!(f, "stuck-at-{value:?} on stage {stage}"),
            Fault::DelayFault { component, factor } => {
                write!(f, "delay ×{factor} on component {component}")
            }
            Fault::DeadRing => write!(f, "dead ring"),
            Fault::StuckRing { period_s } => write!(f, "ring stuck at {period_s:.3e} s"),
            Fault::SlowRing { factor } => write!(f, "ring period ×{factor}"),
            Fault::CounterBitFlip { bit } => write!(f, "counter bit {bit} flipped"),
            Fault::MetastableCapture { captures } => {
                write!(f, "{captures} metastable capture(s)")
            }
            Fault::SupplyDroop { delta_v } => write!(f, "supply droop {delta_v} V"),
            Fault::ThermalRunaway { junction_c } => {
                write!(f, "thermal runaway to {junction_c} °C")
            }
            Fault::DeckSupplyDroop { fraction } => {
                write!(f, "deck supplies sagged by {:.0} %", fraction * 100.0)
            }
            Fault::LinkPartition => write!(f, "link partitioned"),
            Fault::LinkLoss { drop } => write!(f, "link loss p={drop}"),
            Fault::LinkDelay { add_ms } => write!(f, "link +{add_ms} ms latency"),
        }
    }
}

impl Fault {
    /// The coverage bucket this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            Fault::StuckAt { .. } => FaultClass::StuckAt,
            Fault::DelayFault { .. } => FaultClass::Delay,
            Fault::DeadRing => FaultClass::DeadRing,
            Fault::StuckRing { .. } => FaultClass::StuckRing,
            Fault::SlowRing { .. } => FaultClass::SlowRing,
            Fault::CounterBitFlip { .. } => FaultClass::CounterBitFlip,
            Fault::MetastableCapture { .. } => FaultClass::Metastable,
            Fault::SupplyDroop { .. } => FaultClass::SupplyDroop,
            Fault::ThermalRunaway { .. } => FaultClass::ThermalRunaway,
            Fault::DeckSupplyDroop { .. } => FaultClass::DeckSupplyDroop,
            Fault::LinkPartition => FaultClass::LinkPartition,
            Fault::LinkLoss { .. } => FaultClass::LinkLoss,
            Fault::LinkDelay { .. } => FaultClass::LinkDelay,
        }
    }

    /// `true` when the fault strikes the behavioral sensing unit (and
    /// thus maps onto a [`RingFault`]).
    pub fn is_unit_fault(&self) -> bool {
        self.as_ring_fault().is_some() || matches!(self, Fault::ThermalRunaway { .. })
    }

    /// `true` when the fault strikes a fleet network link rather than
    /// any layer of one sensor stack. Network faults are consumed by
    /// the fleet simulator (`runtime::sim::fleet`), not by campaigns.
    pub fn is_network_fault(&self) -> bool {
        matches!(
            self,
            Fault::LinkPartition | Fault::LinkLoss { .. } | Fault::LinkDelay { .. }
        )
    }

    /// The [`RingFault`] equivalent, when one exists.
    pub fn as_ring_fault(&self) -> Option<RingFault> {
        match *self {
            Fault::DeadRing => Some(RingFault::Dead),
            Fault::StuckRing { period_s } => Some(RingFault::StuckPeriod { period_s }),
            Fault::SlowRing { factor } => Some(RingFault::DelayScale { factor }),
            Fault::CounterBitFlip { bit } => Some(RingFault::CounterBitFlip { bit }),
            Fault::MetastableCapture { captures } => Some(RingFault::Metastable { captures }),
            Fault::SupplyDroop { delta_v } => Some(RingFault::SupplyDroop { delta_v }),
            _ => None,
        }
    }

    /// Injects a unit-level fault into a smart sensor (no-op for
    /// gate-level and deck faults; [`Fault::ThermalRunaway`] is an
    /// environment fault applied by the campaign's field, not the
    /// unit).
    pub fn inject_unit(&self, unit: &mut SmartSensorUnit) {
        if let Some(rf) = self.as_ring_fault() {
            unit.inject_fault(rf);
        }
    }

    /// Injects a gate-level delay fault into a netlist (no-op for other
    /// fault kinds).
    ///
    /// # Errors
    ///
    /// Propagates [`dsim::DsimError::UnknownComponent`] for an
    /// out-of-range component index.
    pub fn inject_netlist(&self, nl: &mut Netlist) -> Result<(), dsim::DsimError> {
        if let Fault::DelayFault { component, factor } = *self {
            if let Some(d) = nl.component_delay(component)? {
                let scaled = ((d as f64) * factor).round().max(1.0) as u64;
                nl.set_component_delay(component, scaled)?;
            }
        }
        Ok(())
    }

    /// Applies a stuck-at fault to a live simulator by forcing the
    /// named stage net (no-op for other fault kinds).
    pub fn apply_stuck_at(&self, sim: &mut Simulator, stage_nets: &[dsim::SignalId]) {
        if let Fault::StuckAt { stage, value } = *self {
            if let Some(&net) = stage_nets.get(stage) {
                sim.force(net, value);
            }
        }
    }

    /// Injects a deck-level supply droop into a SPICE circuit: every DC
    /// voltage source is scaled down by `fraction` (no-op for other
    /// fault kinds).
    pub fn inject_circuit(&self, circuit: &mut Circuit) {
        if let Fault::DeckSupplyDroop { fraction } = *self {
            let targets: Vec<(String, f64)> = circuit
                .devices()
                .iter()
                .filter_map(|d| match d {
                    Device::Vsource {
                        name,
                        stimulus: Stimulus::Dc(v),
                        ..
                    } => Some((name.clone(), *v)),
                    _ => None,
                })
                .collect();
            for (name, v) in targets {
                circuit
                    .set_vsource_value(&name, v * (1.0 - fraction))
                    .expect("name came from the device list");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_display_cover_every_variant() {
        let faults = [
            Fault::StuckAt {
                stage: 2,
                value: Logic::Zero,
            },
            Fault::DelayFault {
                component: 1,
                factor: 4.0,
            },
            Fault::DeadRing,
            Fault::StuckRing { period_s: 1e-9 },
            Fault::SlowRing { factor: 1.5 },
            Fault::CounterBitFlip { bit: 7 },
            Fault::MetastableCapture { captures: 3 },
            Fault::SupplyDroop { delta_v: 0.1 },
            Fault::ThermalRunaway { junction_c: 180.0 },
            Fault::DeckSupplyDroop { fraction: 0.3 },
            Fault::LinkPartition,
            Fault::LinkLoss { drop: 0.25 },
            Fault::LinkDelay { add_ms: 50 },
        ];
        let mut classes: Vec<FaultClass> = faults.iter().map(Fault::class).collect();
        classes.dedup();
        assert_eq!(classes.len(), faults.len(), "one class per variant here");
        for f in &faults {
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn deck_droop_scales_every_dc_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("VDD", a, Circuit::GROUND, Stimulus::Dc(3.3))
            .unwrap();
        Fault::DeckSupplyDroop { fraction: 0.3 }.inject_circuit(&mut ckt);
        match &ckt.devices()[0] {
            Device::Vsource {
                stimulus: Stimulus::Dc(v),
                ..
            } => assert!((v - 2.31).abs() < 1e-12, "sagged to {v}"),
            other => panic!("unexpected device {other:?}"),
        }
    }

    #[test]
    fn network_faults_strike_no_sensor_layer() {
        for f in [
            Fault::LinkPartition,
            Fault::LinkLoss { drop: 1.0 },
            Fault::LinkDelay { add_ms: 200 },
        ] {
            assert!(f.is_network_fault());
            assert!(!f.is_unit_fault());
            assert!(f.as_ring_fault().is_none());
        }
        assert!(!Fault::DeadRing.is_network_fault());
    }

    #[test]
    fn ring_fault_mapping_is_total_for_unit_faults() {
        assert!(Fault::DeadRing.is_unit_fault());
        assert!(Fault::ThermalRunaway { junction_c: 200.0 }.is_unit_fault());
        assert!(!Fault::StuckAt {
            stage: 0,
            value: Logic::One
        }
        .is_unit_fault());
        assert_eq!(
            Fault::SlowRing { factor: 2.0 }.as_ring_fault(),
            Some(RingFault::DelayScale { factor: 2.0 })
        );
    }
}
