//! `faultsim` — deterministic fault-injection campaigns over the
//! smart-sensor stack.
//!
//! Thermal testing only works when the sensors themselves can be
//! trusted; this crate answers *"what happens when they can't?"* by
//! injecting modelled defects at every layer of the reproduction —
//! gate-level netlists ([`dsim`]), the behavioral sensing unit
//! ([`sensor`]), and transistor-level decks ([`spicelite`]) — and
//! classifying how the hardened read path responds.
//!
//! * [`fault`] — the [`Fault`] taxonomy and per-layer injection hooks;
//! * [`campaign`] — the seeded [`run_campaign`] runner, watchdog
//!   budgets, and the [`Outcome`] classification
//!   (detected / benign / silent corruption / hang);
//! * [`schedule`] — seeded [`FaultSchedule`]s of timed fault events,
//!   the chaos source a long-lived monitoring runtime injects mid-run;
//! * [`report`] — text and JSON rendering for the `faultsim` CLI.
//!
//! Campaigns are fully deterministic: the same seed replays the same
//! fault sequence with the same outcomes, so a regression in fault
//! coverage is a reproducible test failure, not a flake.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod report;
pub mod schedule;

pub use campaign::{
    reference_universe, run_campaign, run_fault, CampaignConfig, CampaignResult, FaultRun, Outcome,
};
pub use fault::{Fault, FaultClass};
pub use report::{render_json, render_text};
pub use schedule::{FaultEvent, FaultSchedule};
