//! `faultsim` — seeded fault-injection campaigns over the sensor stack.
//!
//! ```text
//! faultsim [OPTIONS]
//!
//! --seed N       RNG seed for fault sampling (default: 42)
//! --faults N     number of sampled faults; 0 enumerates the whole
//!                universe once (default: 100)
//! --junction T   nominal junction temperature, °C (default: 85)
//! --tolerance T  silent-corruption tolerance, °C (default: 3)
//! --spice        include transistor-level deck faults (slower)
//! --check        fail (exit 1) on any hang/panic/silent corruption or
//!                when fault coverage drops below 90 %
//! --verbose      list every run, not just the alarming ones
//! --json         machine-readable output
//! --help         this text
//! ```
//!
//! Exit status: 0 clean; 1 when `--check` fails; 2 on usage errors.

use std::process::ExitCode;

use faultsim::{render_json, render_text, run_campaign, CampaignConfig};

const USAGE: &str = "usage: faultsim [--seed N] [--faults N] [--junction T] [--tolerance T] \
                     [--spice] [--check] [--verbose] [--json]";

/// The `--check` coverage floor.
const COVERAGE_FLOOR: f64 = 0.9;

struct Options {
    config: CampaignConfig,
    check: bool,
    verbose: bool,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        config: CampaignConfig::default(),
        check: false,
        verbose: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spice" => opts.config.with_spice = true,
            "--check" => opts.check = true,
            "--verbose" => opts.verbose = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.config.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                opts.config.faults = v.parse().map_err(|_| format!("bad fault count `{v}`"))?;
            }
            "--junction" => {
                let v = it.next().ok_or("--junction needs a value")?;
                opts.config.junction_c = v.parse().map_err(|_| format!("bad temperature `{v}`"))?;
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                let t: f64 = v.parse().map_err(|_| format!("bad tolerance `{v}`"))?;
                if t <= 0.0 || t.is_nan() {
                    return Err(format!("tolerance must be positive, got `{v}`"));
                }
                opts.config.tolerance_c = t;
            }
            flag => return Err(format!("unknown argument `{flag}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("faultsim: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = run_campaign(&opts.config);
    if opts.json {
        println!("{}", render_json(&result));
    } else {
        print!("{}", render_text(&result, opts.verbose));
    }
    if opts.check {
        let clean = result.hung() == 0
            && result.panics == 0
            && result.silent() == 0
            && result.coverage() >= COVERAGE_FLOOR;
        if !clean {
            if !opts.json {
                eprintln!(
                    "faultsim: check FAILED (hang {} panic {} silent {} coverage {:.1} % < {:.0} %)",
                    result.hung(),
                    result.panics,
                    result.silent(),
                    result.coverage() * 100.0,
                    COVERAGE_FLOOR * 100.0,
                );
            }
            return ExitCode::from(1);
        }
        if !opts.json {
            println!("check PASSED");
        }
    }
    ExitCode::SUCCESS
}
