//! Cross-crate integration: the degraded scan path driven by a *real*
//! thermal field from the `thermal` RC grid, with a fault injected into
//! one sensing site. The array must quarantine the broken ring and keep
//! reporting the die temperature from the survivors.

use faultsim::Fault;
use sensor::health::HealthPolicy;
use sensor::unit::{SensorConfig, SmartSensorUnit};
use sensor::SensorArray;
use thermal::{DieSpec, Floorplan, ThermalGrid};
use tsense_core::gate::{Gate, GateKind};
use tsense_core::ring::RingOscillator;
use tsense_core::tech::Technology;
use tsense_core::units::{Celsius, TempRange};

fn calibrated_unit() -> SmartSensorUnit {
    let tech = Technology::um350();
    let gate = Gate::with_ratio(GateKind::Inv, 1e-6, 2.0).unwrap();
    let ring = RingOscillator::uniform(gate, 5).unwrap();
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech)).unwrap();
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))
        .unwrap();
    unit
}

#[test]
fn dead_ring_over_a_solved_thermal_grid_is_quarantined() {
    // A 1 cm² die with a mild central hotspot, solved to steady state.
    let mut grid = ThermalGrid::new(DieSpec::default_1cm2(16, 16)).unwrap();
    Floorplan::new()
        .block("core", 0.004, 0.004, 0.002, 0.002, 0.5)
        .apply(&mut grid)
        .unwrap();
    grid.solve_steady(1e-8, 20_000).unwrap();

    // Three sensing sites clustered near the die centre (so the spatial
    // gradient between them stays inside the neighbor tolerance).
    let mut array = SensorArray::new()
        .with_site("s0", 0.0045, 0.005, calibrated_unit())
        .with_site("s1", 0.0050, 0.005, calibrated_unit())
        .with_site("s2", 0.0055, 0.005, calibrated_unit());
    let policy = HealthPolicy::for_unit(&array.sites()[1].unit, TempRange::paper(), 0.25).unwrap();

    // Healthy baseline over the real field.
    let field = |x: f64, y: f64| grid.temp_at(x, y).unwrap();
    let healthy = array.scan_degraded(&field, &policy).unwrap();
    assert!(!healthy.is_degraded());
    let truth = grid.temp_at(0.005, 0.005).unwrap();
    assert!(
        (healthy.value - truth).abs() < 2.0,
        "healthy scan {} vs grid {truth}",
        healthy.value
    );

    // Kill the centre ring; the scan must quarantine it and keep
    // serving the die temperature from the survivors.
    Fault::DeadRing.inject_unit(&mut array.sites_mut()[1].unit);
    let degraded = array.scan_degraded(&field, &policy).unwrap();
    assert!(degraded.is_degraded());
    assert_eq!(degraded.quarantined.len(), 1);
    assert_eq!(degraded.quarantined[0].0, "s1");
    assert!(
        (degraded.value - truth).abs() < 2.0,
        "degraded scan {} vs grid {truth}",
        degraded.value
    );
    assert!(degraded.confidence < 1.0);
}
