//! Property-based tests of the fault-injection campaign: for *any*
//! single fault drawn from the reference universe, at *any* plausible
//! operating point, the hardened stack must neither panic nor return an
//! `Ok` reading that is silently wrong, and every watchdog must hold
//! (no hangs on the reference stack).

use proptest::prelude::*;

use faultsim::{reference_universe, run_fault, CampaignConfig, Fault, Outcome};

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop::sample::select(reference_universe(false))
}

proptest! {
    #[test]
    fn any_single_fault_is_classified_without_panic_or_silence(
        fault in arb_fault(),
        junction_decic in 300i64..1200, // 30.0 °C .. 120.0 °C in 0.1 °C steps
    ) {
        let config = CampaignConfig {
            junction_c: junction_decic as f64 / 10.0,
            ..CampaignConfig::default()
        };
        let (outcome, panicked) = run_fault(&fault, &config);
        prop_assert!(!panicked, "{fault}: panicked");
        prop_assert!(
            !matches!(outcome, Outcome::SilentCorruption { .. }),
            "{fault} at {} °C: silent corruption: {outcome:?}",
            config.junction_c,
        );
        prop_assert!(
            !matches!(outcome, Outcome::Hang { .. }),
            "{fault} at {} °C: hang: {outcome:?}",
            config.junction_c,
        );
        // Benign really means benign: the served error is inside the
        // tolerance the campaign promised.
        if let Outcome::Benign { error_c } = outcome {
            prop_assert!(
                error_c.abs() <= config.tolerance_c,
                "{fault}: benign with {error_c} °C error",
            );
        }
    }

    #[test]
    fn sampled_campaigns_replay_exactly(seed in 0u64..1_000) {
        let config = CampaignConfig {
            seed,
            faults: 5,
            ..CampaignConfig::default()
        };
        let a = faultsim::run_campaign(&config);
        let b = faultsim::run_campaign(&config);
        prop_assert_eq!(a.runs, b.runs);
        prop_assert_eq!(a.panics, 0);
    }
}
