//! The library-characterization flow: simulate every cell's delays over
//! temperature, export a Liberty-flavoured timing library, reload it,
//! and sanity-check the tables against the analytical model.
//!
//! ```text
//! cargo run --release --example characterize_library
//! ```

use tsense::cells::liberty::{from_liberty, to_liberty, TimingLibrary};
use tsense::cells::library::CellLibrary;
use tsense::core::gate::{Gate, GateKind};
use tsense::core::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells = CellLibrary::um350(2.0);
    let temps = [-50.0, 0.0, 50.0, 100.0, 150.0];
    let kinds = [
        GateKind::Inv,
        GateKind::Nand2,
        GateKind::Nand3,
        GateKind::Nor2,
        GateKind::Nor3,
        GateKind::Aoi21,
        GateKind::Oai21,
    ];

    println!(
        "characterizing {} cells at {} temperatures (spicelite) ...\n",
        kinds.len(),
        temps.len()
    );
    let mut lib = TimingLibrary::new(cells.name.clone());
    for kind in kinds {
        lib.insert(cells.characterize_cell(kind, &temps)?);
    }

    // Print the 27 °C corner.
    println!("cell    | tPHL @27°C | tPLH @27°C | tPHL 150/-50 ratio");
    println!("--------+------------+------------+-------------------");
    for table in lib.iter() {
        let d27 = table.lookup(27.0);
        let cold = table.lookup(-50.0);
        let hot = table.lookup(150.0);
        println!(
            "{:7} | {:7.1} ps | {:7.1} ps | {:17.2}",
            table.kind.name(),
            d27.tphl * 1e12,
            d27.tplh * 1e12,
            hot.tphl / cold.tphl
        );
    }

    // Export → reload round trip.
    let text = to_liberty(&lib);
    let reloaded = from_liberty(&text)?;
    println!(
        "\nliberty export: {} bytes, {} cells; reload matches: {}",
        text.len(),
        reloaded.len(),
        reloaded.len() == lib.len()
    );

    // Cross-check one structural ratio against the analytical model.
    let tech = cells.analytical_technology();
    let load = Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?.input_capacitance(&tech);
    let ana_inv =
        Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?.delays(&tech, Celsius::new(27.0), load)?;
    let ana_nand =
        Gate::with_ratio(GateKind::Nand2, 1.0e-6, 2.0)?.delays(&tech, Celsius::new(27.0), load)?;
    let sim_ratio = lib.table(GateKind::Nand2).expect("table").lookup(27.0).tphl
        / lib.table(GateKind::Inv).expect("table").lookup(27.0).tphl;
    println!(
        "NAND2/INV tPHL ratio: simulated {:.2} vs analytical {:.2} (stack penalty visible in both)",
        sim_ratio,
        ana_nand.tphl.get() / ana_inv.tphl.get()
    );
    Ok(())
}
