//! A thermal-management watchdog riding on the smart sensor: the die
//! heats under load, the watchdog trips an over-temperature alarm (with
//! hysteresis), the load is throttled, and the alarm clears as the die
//! cools — all while the oscillator stays duty-cycled and the readings
//! are averaged against period jitter.
//!
//! ```text
//! cargo run --example thermal_watchdog
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::{Celsius, Seconds};
use tsense::heat::{DieSpec, Floorplan, ThermalGrid};
use tsense::smart::alarm::{AlarmEvent, ThermalAlarm, ThermalWatchdog};
use tsense::smart::noise::{measure_averaged, JitterModel};
use tsense::smart::unit::{SensorConfig, SmartSensorUnit};

fn calibrated_unit() -> Result<SmartSensorUnit, Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 5)?;
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech))?;
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))?;
    Ok(unit)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The die: 1 cm², aggressive package, core power controlled by a
    // throttle signal.
    let mut spec = DieSpec::default_1cm2(16, 16);
    spec.theta_ja = 8.0;
    let mut grid = ThermalGrid::new(spec)?;
    let full_power = 9.0;
    let throttled_power = 3.0;

    let alarm = ThermalAlarm::new(Celsius::new(95.0), 5.0);
    let mut watchdog = ThermalWatchdog::new(calibrated_unit()?, alarm, Seconds::new(1e-3));
    let mut noisy_probe = calibrated_unit()?;
    let jitter = JitterModel::typical();
    let mut rng = StdRng::seed_from_u64(42);

    let probe = (0.003, 0.003); // sensor site near the hot core
    let dt = grid.global_time_constant() / 15.0;
    let mut throttled = false;

    println!("trip at 95.0 °C, clear below 90.0 °C; polling every {dt:.3} s of die time\n");
    println!("  step | die °C | watchdog °C | filtered °C | power W | event");
    println!("  -----+--------+-------------+-------------+---------+---------");
    for step in 0..26 {
        // Apply the current power state and advance the die.
        grid.clear_power();
        let p = if throttled {
            throttled_power
        } else {
            full_power
        };
        Floorplan::processor_like(0.01, 0.01, p).apply(&mut grid)?;
        grid.run_transient(dt, 3)?;
        let junction = grid.temp_at(probe.0, probe.1)?;

        // One watchdog poll plus a jitter-filtered reference reading.
        let outcome = watchdog.poll(Celsius::new(junction))?;
        let filtered = measure_averaged(
            &mut noisy_probe,
            Celsius::new(junction),
            &jitter,
            8,
            &mut rng,
        )?;

        let event = match outcome.event {
            AlarmEvent::Tripped => {
                throttled = true;
                "TRIP → throttle"
            }
            AlarmEvent::Cleared => {
                throttled = false;
                "CLEAR → full power"
            }
            AlarmEvent::None => "",
        };
        println!(
            "  {step:4} | {junction:6.1} | {:11.1} | {filtered:11.1} | {p:7.1} | {event}",
            outcome.temperature.get(),
            filtered = filtered.get()
        );
    }
    println!(
        "\noscillator duty cycle across the whole run: {:.2} % (disable feature at work)",
        watchdog
            .poll(Celsius::new(grid.temp_at(probe.0, probe.1)?))?
            .duty
            * 100.0
    );
    Ok(())
}
