//! Will the sensor work on *every* die? Monte-Carlo process variation
//! and the calibration trade-off.
//!
//! Die-to-die threshold/drive shifts and within-die width mismatch are
//! drawn for a population of dies; each die is calibrated two ways and
//! its worst-case temperature error over −50…150 °C is recorded.
//!
//! ```text
//! cargo run --example process_variation
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::TempRange;
use tsense::core::variation::{MonteCarloStudy, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 5)?;
    let spec = VariationSpec::default();
    println!(
        "population: 100 dies, σ(Vth) = {} mV, σ(drive) = {} %, σ(width) = {} %\n",
        spec.sigma_vth * 1e3,
        spec.sigma_kdrive_rel * 100.0,
        spec.sigma_width_rel * 100.0
    );

    let study = MonteCarloStudy::run(&ring, &tech, &spec, TempRange::paper(), 21, 100, 2005)?;

    let (p_mean, p_std) = study.period_stats();
    println!(
        "midpoint period : {:.1} ps ± {:.1} ps ({:.1} % spread)",
        p_mean * 1e12,
        p_std * 1e12,
        100.0 * p_std / p_mean
    );
    let (nl_mean, nl_std) = study.nl_stats();
    println!("non-linearity   : {nl_mean:.3} % ± {nl_std:.3} % of full scale");

    let (two_mean, two_std) = study.two_point_stats();
    let (one_mean, one_std) = study.one_point_stats();
    let two_p95 = study.percentile_95(|t| t.two_point_err_c);
    let one_p95 = study.percentile_95(|t| t.one_point_err_c);
    println!("\nworst-case temperature error over the range, per die:");
    println!("  two-point calibration : mean {two_mean:.2} °C ± {two_std:.2}, p95 {two_p95:.2} °C");
    println!("  one-point calibration : mean {one_mean:.2} °C ± {one_std:.2}, p95 {one_p95:.2} °C");
    println!(
        "\ntwo-point absorbs the die's slope error; one-point leaves it in.\n\
         The tester cost of the second insertion buys {:.1}× accuracy.",
        one_mean / two_mean
    );
    Ok(())
}
