//! The smart unit's counting digitizer as real gates, simulated
//! event-driven — and cross-checked against the behavioural model.
//!
//! The design: a ripple counter divides the ring clock to generate a
//! 64-cycle window; a synchronous counter accumulates the reference
//! clock while the window is open. The count is proportional to the
//! ring period and therefore to junction temperature.
//!
//! ```text
//! cargo run --example gate_level_digitizer
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::{Celsius, Hertz, Seconds};
use tsense::smart::digitizer::GateLevelDigitizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slower 21-stage ring: its period (>1 ns) satisfies the counter's
    // flip-flop toggle-loop constraint without a prescaler.
    let tech = Technology::um350();
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 21)?;
    let ref_clock = Hertz::from_mega(1000.0);
    let window = 64;

    println!("ring: {ring}");
    println!(
        "reference clock: {:.0} MHz, window: {window} ring cycles\n",
        ref_clock.as_mega()
    );
    println!("  T °C | ring period | behavioural | gate-level | events");
    println!("  -----+-------------+-------------+------------+--------");
    for t in [-50.0, 0.0, 50.0, 100.0, 150.0] {
        let period = ring.period(&tech, Celsius::new(t))?;
        let dig = GateLevelDigitizer::new(Seconds::new(period.get()), ref_clock, window)?;
        let result = dig.run()?;
        println!(
            "  {t:4.0} | {:8.1} ps | {:11} | {:10} | {:6}",
            period.as_picos(),
            dig.expected_count(),
            result.count,
            result.events
        );
    }
    println!("\ngate-level and behavioural counts agree within the async ±LSB,");
    println!("and both rise with temperature: the digital word IS the thermometer.");
    Ok(())
}
