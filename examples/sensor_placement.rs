//! Where should the multiplexed ring oscillators sit? Greedy sensor
//! placement against a scenario library, compared with a uniform grid.
//!
//! Four workload scenarios (each powering different blocks of a
//! processor-like die) are solved; sensors are then placed to minimize
//! the gap between the true die peak and the hottest sensed point, and
//! the chosen placement is wired into a real multiplexed
//! [`SensorArray`] and scanned.
//!
//! ```text
//! cargo run --release --example sensor_placement
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::Celsius;
use tsense::heat::placement::{all_cells, greedy_placement, uniform_placement, ScenarioSet};
use tsense::heat::{DieSpec, Floorplan, ThermalGrid};
use tsense::smart::unit::{SensorConfig, SmartSensorUnit};
use tsense::smart::SensorArray;

fn calibrated_unit() -> Result<SmartSensorUnit, Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 5)?;
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech))?;
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))?;
    Ok(unit)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DieSpec::default_1cm2(20, 20);
    // Scenario library: different workloads light up different blocks.
    let scenarios = vec![
        Floorplan::new().block("core0", 0.0005, 0.0005, 0.0035, 0.004, 5.0),
        Floorplan::new().block("core1", 0.006, 0.0005, 0.0035, 0.004, 5.0),
        Floorplan::new().block("gpu", 0.0015, 0.0065, 0.004, 0.003, 4.0),
        Floorplan::processor_like(0.01, 0.01, 5.0),
    ];
    println!("solving {} workload scenarios ...", scenarios.len());
    let set = ScenarioSet::solve(&spec, &scenarios)?;

    for k in [2usize, 4, 6] {
        let greedy = greedy_placement(&set, &all_cells(20, 20), k)?;
        let side = (k as f64).sqrt().ceil() as usize;
        let uniform = uniform_placement(20, 20, side, k.div_ceil(side));
        println!(
            "k = {k}: greedy worst peak gap {:.2} K vs uniform {:.2} K   sites: {:?}",
            set.worst_peak_gap(&greedy),
            set.worst_peak_gap(&uniform),
            greedy.iter().map(|s| (s.ix, s.iy)).collect::<Vec<_>>()
        );
    }

    // Wire the k = 4 placement into a real multiplexed array and scan
    // the worst workload.
    let placement = greedy_placement(&set, &all_cells(20, 20), 4)?;
    let mut grid = ThermalGrid::new(spec.clone())?;
    scenarios[3].apply(&mut grid)?;
    grid.solve_steady(1e-7, 50_000)?;

    let mut array = SensorArray::new();
    for (i, site) in placement.iter().enumerate() {
        let x = (site.ix as f64 + 0.5) * spec.dx();
        let y = (site.iy as f64 + 0.5) * spec.dy();
        array = array.with_site(format!("opt{i}"), x, y, calibrated_unit()?);
    }
    let map = array.scan_grid(&grid)?;
    println!(
        "\nscanned the mixed workload: die peak {:.1} °C, hottest sensed {:.1} °C ({}), \
         sensor accuracy {:.2} °C",
        grid.max_temp(),
        map.hottest().measured_c,
        map.hottest().name,
        map.max_abs_error_c()
    );
    Ok(())
}
