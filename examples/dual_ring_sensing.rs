//! Ratiometric dual-ring sensing: trading signal for supply immunity.
//!
//! A single ring reads ~0.1 °C per millivolt of supply droop. Reading
//! the *ratio* of two co-located rings with different cell mixes cancels
//! the shared supply dependence while keeping a differential temperature
//! signal. This example quantifies both sides of the trade at several
//! supply corners.
//!
//! ```text
//! cargo run --release --example dual_ring_sensing
//! ```

use tsense::core::dualring::DualRingSensor;
use tsense::core::gate::GateKind;
use tsense::core::ring::{CellConfig, RingOscillator};
use tsense::core::supply::SupplySensitivity;
use tsense::core::tech::Technology;
use tsense::core::units::{Celsius, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    // The pair with the best droop rejection found by the Ext-3 sweep.
    let sense =
        RingOscillator::from_config(&CellConfig::uniform(GateKind::Nand2, 5)?, 1.0e-6, 1.5)?;
    let reference =
        RingOscillator::from_config(&CellConfig::uniform(GateKind::Nand3, 5)?, 1.0e-6, 3.0)?;
    let dual = DualRingSensor::new(sense.clone(), reference)?;

    let t = Celsius::new(85.0);
    let single = SupplySensitivity::at(&sense, &tech, t)?;
    println!("operating point: 85 °C, V_DD = {:.2} V\n", tech.vdd.get());
    println!(
        "single ring : {:+.4} °C per mV of droop",
        single.temp_error_per_mv
    );
    println!(
        "dual ring   : {:+.4} °C per mV of droop  ({:.1}× rejection)\n",
        dual.temp_error_per_mv(&tech, t)?,
        dual.supply_rejection(&tech, t)?
    );

    println!("apparent temperature error at supply corners (true junction 85 °C):");
    println!("  ΔV_DD  | single ring | dual ring");
    println!("  -------+-------------+----------");
    for dv_mv in [-50.0, -20.0, -5.0, 5.0, 20.0, 50.0] {
        let dv = Volts::new(dv_mv * 1e-3);
        let single_err = single.temp_error_for(dv);
        let dual_err = dual.temp_error_per_mv(&tech, t)? * dv_mv;
        println!("  {dv_mv:+5.0} mV | {single_err:+10.2} °C | {dual_err:+7.3} °C");
    }

    let fit = dual.ratio_linearity(&tech, tsense::core::units::TempRange::paper(), 21)?;
    println!(
        "\nthe price: a ~10× smaller signal (dlnR/dT = {:.2e}/K) and R² = {:.5}",
        dual.temp_slope(&tech, t)?,
        fit.r_squared
    );
    println!("→ use the dual-ring channel when the sensor rail cannot be regulated.");
    Ok(())
}
