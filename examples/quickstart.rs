//! Quickstart: from a standard-cell ring oscillator to a calibrated
//! on-die temperature reading.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::linearity::{FitKind, NonLinearity};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::{Celsius, TempRange};
use tsense::smart::unit::{SensorConfig, SmartSensorUnit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The sensing element: a 5-stage inverter ring in 0.35 µm CMOS.
    let tech = Technology::um350();
    let gate = Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?;
    let ring = RingOscillator::uniform(gate, 5)?;
    println!("sensing element : {ring}");
    let p27 = ring.period(&tech, Celsius::new(27.0))?;
    println!(
        "at 27 °C        : period {:.1} ps, frequency {:.2} GHz",
        p27.as_picos(),
        ring.frequency(&tech, Celsius::new(27.0))?.get() / 1e9
    );

    // 2. Its transfer curve and non-linearity over the paper's range.
    let curve = ring.period_curve(&tech, TempRange::paper(), 41)?;
    let nl = NonLinearity::of_curve(&curve, FitKind::LeastSquares)?;
    println!("transfer        : {nl}");

    // 3. The smart unit: digitizer + FSM + two-point calibration.
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech))?;
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))?;
    println!(
        "resolution      : {:.3} °C/LSB",
        unit.resolution_at(Celsius::new(50.0))?
    );

    // 4. Measurements across the range.
    println!("\n  true °C | code  | measured °C | error");
    println!("  --------+-------+-------------+-------");
    for t in [-50.0, -10.0, 27.0, 85.0, 125.0, 150.0] {
        let m = unit.measure(Celsius::new(t))?;
        println!(
            "  {t:7.1} | {:5} | {:11.2} | {:+.3}",
            m.code,
            m.temperature.get(),
            m.temperature.get() - t
        );
    }
    println!(
        "\noscillator on-time across all {} conversions: {:.1} µs (disabled in between)",
        unit.measurement_count(),
        unit.total_osc_on_time().get() * 1e6
    );
    Ok(())
}
