//! Driving the transistor-level simulator from a SPICE netlist — the
//! Fig. 1 experiment as a self-contained deck.
//!
//! The standard-cell library exports its model cards and subcircuits as
//! SPICE text; we append a 5-stage ring instance with a `.tran` card,
//! parse it, simulate, and measure the oscillation at two temperatures.
//!
//! ```text
//! cargo run --example spice_netlist
//! ```

use tsense::cells::library::CellLibrary;
use tsense::spice::netlist::parse;
use tsense::spice::transient::run_transient;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::um350(2.0);

    for temp in [27.0, 125.0] {
        let deck_text = format!(
            "{header}VDD vdd 0 DC 3.3
X1 n0 n1 vdd inv
X2 n1 n2 vdd inv
X3 n2 n3 vdd inv
X4 n3 n4 vdd inv
X5 n4 n0 vdd inv
.ic V(n0)=0 V(n1)=3.3 V(n2)=0 V(n3)=3.3 V(n4)=0
.temp {temp}
.tran 2p 1500p UIC
.end
",
            header = lib.library_text()
        );
        let deck = parse(&deck_text)?;
        println!(
            "deck `{}` at {temp} °C: {} devices, {} nodes",
            deck.title,
            deck.circuit.devices().len(),
            deck.circuit.node_count()
        );
        let tran = deck.tran.expect(".tran card present");
        let wave = run_transient(&deck.circuit, &tran.to_options())?;
        let period = wave.period("n0", 1.65, 2)?;
        let (lo, hi) = wave.extrema("n0")?;
        println!(
            "  period {:.1} ps  ({:.2} GHz), swing {lo:.2}..{hi:.2} V, {} time points",
            period * 1e12,
            1e-9 / period,
            wave.len()
        );
    }
    println!("\nhotter junction → longer period: that delta is the sensor signal.");
    Ok(())
}
