//! Thermal mapping of a hot processor die with a multiplexed sensor
//! array — the paper's headline application.
//!
//! A RISC-class die (16 W, two hot cores) is solved on the thermal grid;
//! a 4×4 array of smart sensors is scanned through the multiplexer and
//! the measured map is rendered next to the ground truth.
//!
//! ```text
//! cargo run --example thermal_mapping
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::Celsius;
use tsense::heat::scenario::risc_hotspot;
use tsense::smart::unit::{SensorConfig, SmartSensorUnit};
use tsense::smart::SensorArray;

fn calibrated_unit() -> Result<SmartSensorUnit, Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 5)?;
    let mut unit = SmartSensorUnit::new(SensorConfig::new(ring, tech))?;
    unit.calibrate_two_point(Celsius::new(-50.0), Celsius::new(150.0))?;
    Ok(unit)
}

fn shade(t: f64, lo: f64, hi: f64) -> char {
    const RAMP: [char; 6] = ['.', ':', '-', '=', '#', '@'];
    let f = ((t - lo) / (hi - lo)).clamp(0.0, 1.0);
    RAMP[(f * (RAMP.len() - 1) as f64).round() as usize]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("solving the RISC-class die (16 W, 12 mm × 12 mm, θ_JA = 6 K/W) ...");
    let grid = risc_hotspot()?;
    println!(
        "ground truth: peak {:.1} °C, min {:.1} °C, gradient {:.1} °C\n",
        grid.max_temp(),
        grid.min_temp(),
        grid.max_temp() - grid.min_temp()
    );

    // Place a 4×4 sensor array.
    let n = 4;
    let mut array = SensorArray::new();
    for iy in 0..n {
        for ix in 0..n {
            let x = 0.0015 + 0.009 * ix as f64 / (n - 1) as f64;
            let y = 0.0015 + 0.009 * iy as f64 / (n - 1) as f64;
            array = array.with_site(format!("s{ix}{iy}"), x, y, calibrated_unit()?);
        }
    }
    let map = array.scan_grid(&grid)?;

    let (lo, hi) = (grid.min_temp(), grid.max_temp());
    println!("measured map (°C; rows = die y, bottom row = y = 0):");
    for iy in (0..n).rev() {
        let mut meas = String::new();
        let mut truth = String::new();
        for ix in 0..n {
            let p = &map.points()[iy * n + ix];
            meas.push_str(&format!(
                " {:6.1}{}",
                p.measured_c,
                shade(p.measured_c, lo, hi)
            ));
            truth.push_str(&format!(" {:6.1}{}", p.true_c, shade(p.true_c, lo, hi)));
        }
        println!("  measured:{meas}    truth:{truth}");
    }

    println!(
        "\nhottest site: {} at {:.1} °C (true {:.1} °C)",
        map.hottest().name,
        map.hottest().measured_c,
        map.hottest().true_c
    );
    println!(
        "map accuracy: max |err| {:.2} °C, rms {:.2} °C",
        map.max_abs_error_c(),
        map.rms_error_c()
    );
    println!(
        "sequential mux scan of {} sensors took {:.1} µs of oscillator time",
        map.points().len(),
        map.scan_time.get() * 1e6
    );
    Ok(())
}
