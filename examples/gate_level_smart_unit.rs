//! The entire smart unit as gates — FSM, timers, oscillator gating,
//! digitizer — driven through its start/busy/done handshake, with a
//! VCD waveform dumped for inspection in GTKWave.
//!
//! ```text
//! cargo run --release --example gate_level_smart_unit
//! ```

use tsense::core::gate::{Gate, GateKind};
use tsense::core::ring::RingOscillator;
use tsense::core::tech::Technology;
use tsense::core::units::{Celsius, Hertz, Seconds};
use tsense::smart::gateunit::GateLevelUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    // A 21-stage ring: slow enough for the gate-level divider.
    let ring = RingOscillator::uniform(Gate::with_ratio(GateKind::Inv, 1.0e-6, 2.0)?, 21)?;
    let ref_clock = Hertz::from_mega(1000.0);

    println!("gate-level smart unit: 16-cycle settle, 128-cycle window, 1 GHz reference\n");
    println!("  T °C | ring period | count | expected | conversion | osc cycles");
    println!("  -----+-------------+-------+----------+------------+-----------");
    for t in [-50.0, 0.0, 50.0, 100.0, 150.0] {
        let period = ring.period(&tech, Celsius::new(t))?;
        let mut unit = GateLevelUnit::new(Seconds::new(period.get()), ref_clock, 16, 128)?;
        let r = unit.convert()?;
        println!(
            "  {t:4.0} | {:8.1} ps | {:5} | {:8} | {:7.2} µs | {:10}",
            period.as_picos(),
            r.count,
            unit.expected_count(),
            r.conversion_fs as f64 * 1e-9,
            r.osc_cycles
        );
    }

    // Dump one traced conversion as a VCD for waveform viewers.
    let period = ring.period(&tech, Celsius::new(27.0))?;
    let mut traced = GateLevelUnit::new(Seconds::new(period.get()), ref_clock, 16, 128)?;
    traced.enable_trace();
    let _ = traced.convert()?;
    std::fs::create_dir_all("results")?;
    std::fs::write("results/gate_unit.vcd", traced.vcd("smart_unit"))?;
    println!("\ntraced one conversion at 27 °C into results/gate_unit.vcd (GTKWave-ready)");

    println!("\nthe count rises with temperature because the ring slows down —");
    println!("the digital word IS the thermometer, produced entirely by gates:");
    println!("one-hot FSM (idle→settle→measure→done), window-gated ripple divider,");
    println!("2-flop CDC synchronizers, and an enable-gated synchronous counter.");
    Ok(())
}
