//! Cell-based linearity optimization — the paper's Fig. 3 workflow.
//!
//! A standard-cell designer cannot resize transistors, so the sizing
//! ratio of the library is a given (here a deliberately suboptimal
//! area-optimized 1.5). This example searches the *mix of inverting
//! cells* instead, exactly as Section 3 of the paper proposes, and shows
//! that an adequate set of standard cells recovers the linearity that
//! fixed sizing loses.
//!
//! ```text
//! cargo run --example cell_config_search
//! ```

use tsense::core::gate::GateKind;
use tsense::core::optimize::{exhaustive_config_search, SweepSettings};
use tsense::core::ring::CellConfig;
use tsense::core::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::um350();
    let settings = SweepSettings::default();
    let library_ratio = 1.5;

    println!("library: {} (fixed Wp/Wn = {library_ratio})", tech.name);
    println!("searching every odd 5-stage multiset of INV/NAND2/NAND3/NOR2/NOR3 ...\n");

    let ranked = exhaustive_config_search(
        &tech,
        &GateKind::PAPER_SET,
        5,
        1e-6,
        library_ratio,
        &settings,
    )?;

    println!("rank  max|NL| %FS  max err °C  configuration");
    println!("----  -----------  ----------  -------------");
    for (i, p) in ranked.iter().take(10).enumerate() {
        println!(
            "{:>4}  {:>11.4}  {:>10.3}  {}",
            i + 1,
            p.max_nl_percent,
            p.nonlinearity.max_abs_celsius(),
            p.config
        );
    }

    let pure_config = CellConfig::uniform(GateKind::Inv, 5)?;
    let pure = ranked
        .iter()
        .find(|p| p.config == pure_config)
        .expect("pure inverter ring is in the enumeration");
    let best = &ranked[0];
    println!("\n5×INV baseline : {:.4} %FS", pure.max_nl_percent);
    println!(
        "best cell mix  : {:.4} %FS ({})",
        best.max_nl_percent, best.config
    );
    println!(
        "improvement    : {:.1}× lower worst-case non-linearity, zero custom layout",
        pure.max_nl_percent / best.max_nl_percent
    );
    Ok(())
}
